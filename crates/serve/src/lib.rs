//! `oftec-serve` — a batching, caching cooling-control service.
//!
//! The deployment story of the paper's controller: expose the OFTEC
//! pipeline (steady solves, Algorithm 1 optimization, sweeps) as a
//! long-running std-only TCP service speaking newline-delimited JSON,
//! with the properties a control plane actually needs:
//!
//! - **Typed protocol** ([`protocol`]): every malformed line, unknown
//!   benchmark, or pipeline failure is a machine-readable error response
//!   on the same connection — never a dropped socket, never a panic.
//! - **Micro-batching** ([`queue`], [`engine`]): concurrent solve
//!   requests collected over a short window are dispatched as one batch
//!   on the `oftec-parallel` scoped-thread executor, with per-request
//!   panic isolation.
//! - **Quantized result cache** ([`cache`]): operating points rounded to
//!   a configurable grid, LRU + TTL eviction, hit/miss/eviction counters
//!   on the telemetry registry. Hits replay byte-identical payloads on
//!   the connection thread, bypassing the queue entirely.
//! - **Admission control** ([`server`], [`queue`]): a bounded queue with
//!   explicit `overloaded` rejections, deadline-aware admission (jobs
//!   predicted to miss are shed up front, expired jobs are purged from
//!   the queue instead of occupying capacity), per-request deadlines
//!   enforced at dequeue and at solver-iteration granularity, and
//!   graceful drain on shutdown (stop accepting, answer in-flight, flush
//!   telemetry JSON).
//! - **Sharded connection plane** ([`server`]): a bounded pool of shard
//!   workers multiplexes all connections over nonblocking sockets with
//!   reusable per-connection buffers — thread count is fixed by
//!   configuration, not by client count.
//! - **Binary wire format** ([`wire`]): length-prefixed solve frames
//!   negotiated per message alongside NDJSON, answering with the exact
//!   JSON envelope bytes of the NDJSON path (framed instead of
//!   newline-terminated), so results are byte-identical across wires.
//!
//! The companion binaries live in this crate: `oftec-cli` (with the
//! `serve` subcommand) and `oftec-loadgen` (closed/open-loop load
//! generator reporting latency percentiles into `BENCH_serve.json`).

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod trace;
pub mod wire;

pub use cache::{CacheConfig, CacheKey, QuantizedCache};
pub use engine::{reference_payload, Engine, FaultPlan};
pub use protocol::{error_cause, ErrBody, Request, SolveKind, SolveSpec};
pub use server::{ServeConfig, Server, ServerHandle};
pub use trace::{TraceContext, OUTCOME_NAMES, STAGE_NAMES};
