//! The batch solve engine.
//!
//! A dequeued micro-batch is turned into a list of unique work items
//! (identical cacheable requests are deduplicated and fan the one result
//! out), dispatched onto the `oftec-parallel` scoped-thread executor, and
//! answered over each job's reply channel. Per-item panics are caught by
//! the executor and become typed `panic` errors for the affected request
//! only — the rest of the batch and the server survive.
//!
//! Determinism: cacheable requests are solved at their cache key's
//! *canonical* (de-quantized) coordinates with plain cold-start solves
//! through the reduced-order model, so a batched response is
//! bit-identical to [`reference_payload`] at the same grid point, at any
//! `OFTEC_THREADS`, and whether or not the result came from cache.

use crate::cache::QuantizedCache;
use crate::protocol::{error_cause, ErrBody, SolveKind, SolveSpec};
use crate::queue::Job;
use oftec::faults::{FaultKind, FaultyModel};
use oftec::{
    CoolingSystem, InfeasibleReport, Oftec, OftecError, OftecOutcome, OftecSolution, SweepGrid,
};
use oftec_telemetry::Counter;
use oftec_thermal::{
    CoolingModel, OperatingPoint, PackageConfig, ThermalError, ThermalSolution, TransientOptions,
    TransientTrace,
};
use oftec_units::{AngularVelocity, Current, Temperature};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

pub static SERVE_BATCHES: Counter = Counter::new("serve.batches");
pub static SERVE_BATCH_JOBS: Counter = Counter::new("serve.batch.jobs");
pub static SERVE_BATCH_DEDUPED: Counter = Counter::new("serve.batch.deduped");
pub static SERVE_PANICS: Counter = Counter::new("serve.panics");
pub static SERVE_DEADLINE_EXCEEDED: Counter = Counter::new("serve.deadline_exceeded");

/// Batches smaller than this solve inline on the dispatcher thread
/// instead of fanning out to the scoped executor (whose spawn cost
/// exceeds a handful of reduced-order solves).
const INLINE_BATCH_MAX: usize = 8;

/// Fault-injection plan for the whole server: every `every`-th solve job
/// reaching the executor is wrapped in a [`FaultyModel`] injecting
/// `kind`. Used by the fault-tolerance suite; production servers run
/// with `None`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub kind: FaultKind,
    pub every: usize,
}

/// Lazily built, shared [`CoolingSystem`]s keyed by benchmark and
/// quantized scale; building one costs floorplan + leakage assembly, so
/// every request for the same workload reuses the same instance.
struct SystemRegistry {
    package: PackageConfig,
    scale_grid: f64,
    systems: Mutex<BTreeMap<(oftec_power::Benchmark, i64), Arc<CoolingSystem>>>,
}

impl SystemRegistry {
    fn system(&self, benchmark: oftec_power::Benchmark, scale: f64) -> Arc<CoolingSystem> {
        let q = if self.scale_grid > 0.0 {
            (scale / self.scale_grid).round() as i64
        } else {
            scale.to_bits() as i64
        };
        let mut map = self.systems.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry((benchmark, q)).or_insert_with(|| {
            let base = CoolingSystem::for_benchmark_with_config(benchmark, &self.package);
            // oftec-lint: allow(L004, exact sentinel: 1.0 round-trips the wire untouched, so bit-equality is the identity test)
            Arc::new(if scale == 1.0 {
                base
            } else {
                base.scaled(scale)
            })
        }))
    }
}

/// A [`CoolingModel`] wrapper that fails solves once a wall-clock
/// deadline passes. The SQP phases call the model once per iteration, so
/// this enforces deadlines at iteration granularity without the solver
/// layers knowing about time.
struct DeadlineModel<'a> {
    inner: &'a dyn CoolingModel,
    deadline: Instant,
    expired: AtomicBool,
}

impl<'a> DeadlineModel<'a> {
    fn new(inner: &'a dyn CoolingModel, deadline: Instant) -> Self {
        Self {
            inner,
            deadline,
            expired: AtomicBool::new(false),
        }
    }

    // oftec-lint: hot
    fn check(&self) -> Result<(), ThermalError> {
        if Instant::now() >= self.deadline {
            self.expired.store(true, Ordering::Relaxed);
            Err(ThermalError::Config(
                "request deadline exceeded mid-solve".into(),
            ))
        } else {
            Ok(())
        }
    }

    fn fired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }
}

impl CoolingModel for DeadlineModel<'_> {
    fn config(&self) -> &PackageConfig {
        self.inner.config()
    }

    fn has_tec(&self) -> bool {
        self.inner.has_tec()
    }

    fn validate_operating_point(&self, op: OperatingPoint) -> Result<(), ThermalError> {
        self.inner.validate_operating_point(op)
    }

    fn solve(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError> {
        self.check()?;
        self.inner.solve(op)
    }

    fn solve_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        self.check()?;
        self.inner.solve_from(op, initial)
    }

    fn simulate_transient_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError> {
        self.check()?;
        self.inner.simulate_transient_from(op, initial, steps, opts)
    }
}

/// One executor work unit: a canonicalized spec plus the loosest
/// deadline of the jobs sharing it.
struct WorkItem {
    spec: SolveSpec,
    deadline: Option<Instant>,
    /// This item draws an injected fault (see [`FaultPlan`]).
    inject: bool,
}

/// Solve-path attribution for one work item, read off the thermal
/// crate's per-thread probe as before/after deltas around the solve.
struct SolveMeta {
    /// Wall time spent inside the solve call, in microseconds.
    solve_us: u64,
    /// `"reduced"`, `"fallback"`, or `"full"` — which path answered.
    path: &'static str,
    /// Certified residual ratio of the last reduced solve, if any.
    residual: Option<f64>,
}

/// Steady-state result payload.
#[derive(serde::Serialize)]
struct SteadyPayload {
    benchmark: String,
    scale: f64,
    rpm: f64,
    amps: f64,
    max_temp_c: f64,
    power_w: f64,
    leakage_w: f64,
    tec_w: f64,
    fan_w: f64,
    solver_iterations: usize,
}

/// Algorithm 1 result payload. Optional fields cover the two verdicts:
/// `feasible: true` fills the starred optimum, `false` the best-effort
/// report. Wall-clock runtime is deliberately absent — payloads must be
/// deterministic so cache hits replay byte-identical results.
#[derive(serde::Serialize)]
struct OptimizePayload {
    benchmark: String,
    scale: f64,
    feasible: bool,
    rpm: Option<f64>,
    amps: Option<f64>,
    power_w: Option<f64>,
    max_temp_c: f64,
    used_phase1: Option<bool>,
    thermal_solves: Option<usize>,
    solver_error: Option<String>,
}

/// Sweep result payload.
#[derive(serde::Serialize)]
struct SweepPayload {
    benchmark: String,
    scale: f64,
    omega_points: usize,
    current_points: usize,
    runaway_fraction: f64,
    samples: Vec<oftec::SweepSample>,
}

fn finite(v: f64, what: &str) -> Result<f64, ErrBody> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ErrBody::new("non_finite", format!("non-finite {what}")))
    }
}

fn internal(e: impl std::fmt::Display) -> ErrBody {
    ErrBody::new("internal", format!("response serialization failed: {e}"))
}

/// The shared solve engine.
pub struct Engine {
    registry: SystemRegistry,
    cache: Arc<QuantizedCache>,
    oftec: Oftec,
    threads: usize,
    fault: Option<FaultPlan>,
    fault_seq: AtomicUsize,
}

impl Engine {
    pub fn new(
        package: PackageConfig,
        cache: Arc<QuantizedCache>,
        threads: usize,
        fault: Option<FaultPlan>,
    ) -> Self {
        let scale_grid = cache.config().scale_grid;
        Self {
            registry: SystemRegistry {
                package,
                scale_grid,
                systems: Mutex::new(BTreeMap::new()),
            },
            cache,
            oftec: Oftec::default(),
            threads,
            fault,
            fault_seq: AtomicUsize::new(0),
        }
    }

    /// Executes one micro-batch: dedup, dispatch, fan-out, cache-fill.
    /// Every job receives exactly one reply; a dropped receiver (client
    /// gone) is ignored.
    pub fn execute(&self, batch: Vec<Job>) {
        SERVE_BATCHES.add(1);
        SERVE_BATCH_JOBS.add(batch.len() as u64);
        let now = Instant::now();

        // Group jobs into unique work items. `no_cache` jobs always get
        // their own item (they demand a fresh solve); cacheable jobs
        // dedup on the quantized key and re-check the cache, which a
        // previous batch may have filled after this job's admission.
        let mut items: Vec<WorkItem> = Vec::with_capacity(batch.len());
        let mut groups: Vec<Vec<Job>> = Vec::with_capacity(batch.len());
        let mut by_key: BTreeMap<crate::cache::CacheKey, usize> = BTreeMap::new();
        for mut job in batch {
            // Close the queue stage: everything between admission on the
            // connection thread and this dequeue.
            job.trace.stage("queue");
            if job.deadline.is_some_and(|d| now >= d) {
                SERVE_DEADLINE_EXCEEDED.add(1);
                job.trace.set_outcome("deadline");
                let err = ErrBody::new("deadline_exceeded", "deadline expired while queued");
                let trace = job.trace.clone();
                let _ = job.reply.send((Err(err), trace));
                continue;
            }
            if job.spec.no_cache {
                items.push(WorkItem {
                    spec: job.spec.clone(),
                    deadline: job.deadline,
                    inject: self.draw_fault(),
                });
                groups.push(vec![job]);
                continue;
            }
            let key = self.cache.key_for(&job.spec);
            if let Some(payload) = self.cache.peek(&key) {
                // A previous batch filled the cache after this job's
                // admission — a hit on the dispatcher thread.
                job.trace.stage("cache");
                job.trace.set_outcome("cache_hit");
                let trace = job.trace.clone();
                let _ = job.reply.send((Ok(payload), trace));
                continue;
            }
            match by_key.get(&key) {
                Some(&gi) => {
                    SERVE_BATCH_DEDUPED.add(1);
                    job.trace.mark_deduped();
                    // Keep the loosest deadline so the shared solve is
                    // not cut short for the job with the most budget.
                    items[gi].deadline = match (items[gi].deadline, job.deadline) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                    groups[gi].push(job);
                }
                None => {
                    let cfg = self.cache.config();
                    let mut spec = job.spec.clone();
                    spec.scale = key.canonical_scale(cfg);
                    spec.rpm = key.canonical_rpm(cfg);
                    spec.amps = key.canonical_amps(cfg);
                    by_key.insert(key, items.len());
                    items.push(WorkItem {
                        spec,
                        deadline: job.deadline,
                        inject: self.draw_fault(),
                    });
                    groups.push(vec![job]);
                }
            }
        }

        if items.is_empty() {
            return;
        }
        // Small batches run inline on the dispatcher thread: with the
        // reduced-order solve path an item costs microseconds, so the
        // scoped-spawn setup of the executor would dominate the batch.
        // Results are identical either way (the executor preserves item
        // order and items are independent).
        let threads = if items.len() < INLINE_BATCH_MAX {
            1
        } else {
            self.threads
        };
        let results = oftec_parallel::par_try_map_indexed_with(threads, &items, |_, item| {
            self.solve_item(item)
        });

        let done = Instant::now();
        for ((item, group), result) in items.iter().zip(groups).zip(results) {
            let (outcome, meta): (Result<String, ErrBody>, SolveMeta) = match result {
                Ok(inner) => inner,
                Err(panic) => {
                    SERVE_PANICS.add(1);
                    (
                        Err(ErrBody::new(
                            "panic",
                            format!("solve panicked: {}", panic.message),
                        )),
                        SolveMeta {
                            solve_us: 0,
                            path: "full",
                            residual: None,
                        },
                    )
                }
            };
            if let Ok(payload) = &outcome {
                if !item.spec.no_cache {
                    self.cache
                        .insert(self.cache.key_for(&item.spec), payload.clone());
                }
            }
            for mut job in group {
                // Split the wall interval since dequeue into batch
                // overhead (dispatch + waiting on sibling items) and the
                // solve proper; deduped jobs share the item's solve time.
                let spent = job.trace.since_mark_us(done);
                job.trace
                    .stage_us("batch", spent.saturating_sub(meta.solve_us));
                job.trace.stage_us("solve", meta.solve_us);
                if let Some(r) = meta.residual {
                    job.trace.set_residual(r);
                }
                let reply = if job.deadline.is_some_and(|d| done >= d) {
                    SERVE_DEADLINE_EXCEEDED.add(1);
                    job.trace.set_outcome("deadline");
                    Err(ErrBody::new(
                        "deadline_exceeded",
                        "deadline expired during solve",
                    ))
                } else {
                    match &outcome {
                        Ok(_) => job.trace.set_outcome(meta.path),
                        Err(err) => job.trace.set_outcome(error_cause(err.kind)),
                    }
                    outcome.clone()
                };
                let trace = job.trace.clone();
                let _ = job.reply.send((reply, trace));
            }
        }
    }

    fn draw_fault(&self) -> bool {
        match self.fault {
            None => false,
            Some(plan) if plan.every == 0 => false,
            Some(plan) => {
                (self.fault_seq.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(plan.every)
            }
        }
    }

    /// Builds the shared system — and its reduced-order model — for
    /// `benchmark` at scale 1.0 before traffic arrives, so the first
    /// uncached request pays neither the floorplan assembly nor the
    /// snapshot-solve basis construction.
    pub fn prewarm(&self, benchmark: oftec_power::Benchmark) {
        let system = self.registry.system(benchmark, 1.0);
        let _ = system.reduced_tec_model();
    }

    /// Solves one work item, composing the deadline and fault wrappers
    /// around the shared system model as the item requires, and
    /// attributes the solve path (reduced/fallback/full, certified
    /// residual, wall time) via the thermal probe's before/after deltas —
    /// the probe is per-thread and each item runs on exactly one worker,
    /// so deltas never mix items.
    ///
    /// Solves go through the system's reduced-order model: certified
    /// microsecond evaluations, with automatic fallback to the full CG
    /// path whenever the residual check fails — so payloads stay
    /// bit-identical to `reference_payload` at the same spec.
    fn solve_item(&self, item: &WorkItem) -> (Result<String, ErrBody>, SolveMeta) {
        let before = oftec_thermal::probe::snapshot();
        let t0 = Instant::now();
        let out = self.solve_item_inner(item);
        let solve_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        let delta = oftec_thermal::probe::snapshot().since(&before);
        let path = if delta.fallbacks > 0 {
            "fallback"
        } else if delta.reduced > 0 {
            "reduced"
        } else {
            "full"
        };
        let residual = (delta.residual_events > 0).then_some(delta.last_residual);
        (
            out,
            SolveMeta {
                solve_us,
                path,
                residual,
            },
        )
    }

    fn solve_item_inner(&self, item: &WorkItem) -> Result<String, ErrBody> {
        let system = self.registry.system(item.spec.benchmark, item.spec.scale);
        let reduced = system.reduced_tec_model();
        let base: &dyn CoolingModel = &reduced;
        let fault_kind = self.fault.filter(|_| item.inject).map(|plan| plan.kind);
        match (fault_kind, item.deadline) {
            (None, None) => self.run_spec(&base, &system, &item.spec),
            (None, Some(d)) => {
                let dm = DeadlineModel::new(base, d);
                let out = self.run_spec(&dm, &system, &item.spec);
                if dm.fired() {
                    SERVE_DEADLINE_EXCEEDED.add(1);
                    return Err(ErrBody::new(
                        "deadline_exceeded",
                        "deadline expired mid-solve",
                    ));
                }
                out
            }
            (Some(kind), None) => {
                let fm = FaultyModel::new(&base, kind, 0);
                self.run_spec(&fm, &system, &item.spec)
            }
            (Some(kind), Some(d)) => {
                let fm = FaultyModel::new(&base, kind, 0);
                let dm = DeadlineModel::new(&fm, d);
                let out = self.run_spec(&dm, &system, &item.spec);
                if dm.fired() {
                    SERVE_DEADLINE_EXCEEDED.add(1);
                    return Err(ErrBody::new(
                        "deadline_exceeded",
                        "deadline expired mid-solve",
                    ));
                }
                out
            }
        }
    }

    fn run_spec<M: CoolingModel>(
        &self,
        model: &M,
        system: &CoolingSystem,
        spec: &SolveSpec,
    ) -> Result<String, ErrBody> {
        match spec.kind {
            SolveKind::Steady => steady_payload(model, spec),
            SolveKind::Optimize => {
                let outcome = self
                    .oftec
                    .run_on_model(model, system.t_max())
                    .map_err(|e| ErrBody::from_oftec(&e))?;
                optimize_payload(&outcome, spec)
            }
            SolveKind::Sweep => {
                let grid = SweepGrid {
                    omega_points: spec.omega_points,
                    current_points: spec.current_points,
                };
                // One thread: the batch itself is the parallel axis, and
                // the single-thread sweep is bit-identical to any other
                // thread count anyway.
                let result = grid.run_threaded(model, 1);
                let payload = SweepPayload {
                    benchmark: spec.benchmark.name().to_string(),
                    scale: spec.scale,
                    omega_points: result.omega_points,
                    current_points: result.current_points,
                    runaway_fraction: result.runaway_fraction(),
                    samples: result.samples,
                };
                serde_json::to_string(&payload).map_err(internal)
            }
        }
    }
}

fn steady_payload<M: CoolingModel>(model: &M, spec: &SolveSpec) -> Result<String, ErrBody> {
    let op = OperatingPoint::new(
        AngularVelocity::from_rpm(spec.rpm),
        Current::from_amperes(spec.amps),
    );
    let to_err =
        |e: ThermalError| ErrBody::from_oftec(&OftecError::from(e).with_operating_point(op));
    model.validate_operating_point(op).map_err(to_err)?;
    let sol = model.solve(op).map_err(to_err)?;
    let breakdown = sol.breakdown();
    let payload = SteadyPayload {
        benchmark: spec.benchmark.name().to_string(),
        scale: spec.scale,
        rpm: spec.rpm,
        amps: spec.amps,
        max_temp_c: finite(sol.max_chip_temperature().celsius(), "max temperature")?,
        power_w: finite(breakdown.objective().watts(), "objective power")?,
        leakage_w: finite(breakdown.leakage.watts(), "leakage power")?,
        tec_w: finite(breakdown.tec.watts(), "TEC power")?,
        fan_w: finite(breakdown.fan.watts(), "fan power")?,
        solver_iterations: sol.solver_iterations(),
    };
    serde_json::to_string(&payload).map_err(internal)
}

fn optimize_payload(outcome: &OftecOutcome, spec: &SolveSpec) -> Result<String, ErrBody> {
    let payload = match outcome {
        OftecOutcome::Optimized(sol) => {
            let OftecSolution {
                operating_point,
                cooling_power,
                max_temperature,
                used_phase1,
                thermal_solves,
                ..
            } = sol;
            OptimizePayload {
                benchmark: spec.benchmark.name().to_string(),
                scale: spec.scale,
                feasible: true,
                rpm: Some(finite(operating_point.fan_speed.rpm(), "fan speed")?),
                amps: Some(finite(
                    operating_point.tec_current.amperes(),
                    "TEC current",
                )?),
                power_w: Some(finite(cooling_power.watts(), "cooling power")?),
                max_temp_c: finite(max_temperature.celsius(), "max temperature")?,
                used_phase1: Some(*used_phase1),
                thermal_solves: Some(*thermal_solves),
                solver_error: None,
            }
        }
        OftecOutcome::Infeasible(report) => {
            let InfeasibleReport {
                operating_point,
                best_temperature,
                solver_error,
                ..
            } = report;
            OptimizePayload {
                benchmark: spec.benchmark.name().to_string(),
                scale: spec.scale,
                feasible: false,
                rpm: Some(finite(operating_point.fan_speed.rpm(), "fan speed")?),
                amps: Some(finite(
                    operating_point.tec_current.amperes(),
                    "TEC current",
                )?),
                power_w: None,
                max_temp_c: finite(best_temperature.celsius(), "best temperature")?,
                used_phase1: None,
                thermal_solves: None,
                solver_error: solver_error.clone(),
            }
        }
    };
    serde_json::to_string(&payload).map_err(internal)
}

/// Direct (unbatched, uncached) solve of a spec against a package
/// configuration — the reference the integration tests compare batched
/// responses against, and the engine the CLI's one-shot commands could
/// share. Returns the payload JSON exactly as the server would.
pub fn reference_payload(
    package: &PackageConfig,
    spec: &SolveSpec,
    t_max_override: Option<Temperature>,
) -> Result<String, ErrBody> {
    let base = CoolingSystem::for_benchmark_with_config(spec.benchmark, package);
    // oftec-lint: allow(L004, exact sentinel: must mirror the registry's bit-equality test so both paths build the same system)
    let system = if spec.scale == 1.0 {
        base
    } else {
        base.scaled(spec.scale)
    };
    let reduced = system.reduced_tec_model();
    let model: &dyn CoolingModel = &reduced;
    match spec.kind {
        SolveKind::Steady => steady_payload(&model, spec),
        SolveKind::Optimize => {
            let t_max = t_max_override.unwrap_or_else(|| system.t_max());
            let outcome = Oftec::default()
                .run_on_model(&model, t_max)
                .map_err(|e| ErrBody::from_oftec(&e))?;
            optimize_payload(&outcome, spec)
        }
        SolveKind::Sweep => {
            let grid = SweepGrid {
                omega_points: spec.omega_points,
                current_points: spec.current_points,
            };
            let result = grid.run_threaded(&model, 1);
            let payload = SweepPayload {
                benchmark: spec.benchmark.name().to_string(),
                scale: spec.scale,
                omega_points: result.omega_points,
                current_points: result.current_points,
                runaway_fraction: result.runaway_fraction(),
                samples: result.samples,
            };
            serde_json::to_string(&payload).map_err(internal)
        }
    }
}
