//! The TCP serve loop: accept, frame, admit, dispatch, drain.
//!
//! One thread per connection reads newline-delimited requests. `health`,
//! `metrics`, and cache hits are answered inline on the connection
//! thread (the sub-millisecond path); solve misses are admitted into the
//! bounded [`JobQueue`] and batched onto the executor by a single
//! dispatcher thread. Shutdown — via the `shutdown` command or a
//! [`ServerHandle`] — is graceful: the listener stops accepting, the
//! queue closes but drains, every in-flight request is answered, and the
//! final telemetry snapshot is flushed to JSON.

use crate::cache::{CacheConfig, QuantizedCache};
use crate::engine::{Engine, FaultPlan, SERVE_PANICS};
use crate::protocol::{self, error_cause, ErrBody, Request, SolveSpec};
use crate::queue::{Job, JobQueue, PushError};
use crate::trace::TraceContext;
use oftec_telemetry as telemetry;
use oftec_telemetry::{Counter, FlightRecorder, SloMonitor, SloStatus};
use oftec_thermal::PackageConfig;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
pub static SERVE_RESPONSES_OK: Counter = Counter::new("serve.responses_ok");
pub static SERVE_RESPONSES_ERR: Counter = Counter::new("serve.responses_err");
pub static SERVE_CONNECTIONS: Counter = Counter::new("serve.connections");
pub static SERVE_PROBES: Counter = Counter::new("serve.probes");
pub static SERVE_OVERLOADED: Counter = Counter::new("serve.overloaded");

// Typed per-cause error counters: `serve.responses_err` equals their sum,
// so a bench report never contains an opaque `failed` bucket.
pub static SERVE_ERR_PARSE: Counter = Counter::new("serve.errors.parse");
pub static SERVE_ERR_OVERLOAD: Counter = Counter::new("serve.errors.overload");
pub static SERVE_ERR_DEADLINE: Counter = Counter::new("serve.errors.deadline");
pub static SERVE_ERR_SOLVER: Counter = Counter::new("serve.errors.solver");
pub static SERVE_ERR_PANIC: Counter = Counter::new("serve.errors.panic");
pub static SERVE_ERR_INTERNAL: Counter = Counter::new("serve.errors.internal");

/// Request latency histogram bounds (microseconds).
static LATENCY_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// Serving configuration. `Default` is tuned for tests and local runs;
/// the CLI maps its flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7464` (port 0 = ephemeral).
    pub addr: String,
    /// Executor threads per batch (0 = `OFTEC_THREADS`/auto).
    pub threads: usize,
    /// Result-cache quantization and eviction settings.
    pub cache: CacheConfig,
    /// How long the dispatcher holds a batch open for stragglers.
    pub batch_window: Duration,
    /// Maximum jobs per batch.
    pub batch_max: usize,
    /// Admission-queue capacity; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
    /// Maximum request-line length in bytes; longer lines get
    /// `line_too_long` and are discarded to the next newline.
    pub max_line_bytes: usize,
    /// Poll interval for reads (bounds shutdown latency).
    pub read_timeout: Duration,
    /// Use the coarse DAC'14 package (fast solves; tests and smoke).
    pub coarse: bool,
    /// Fault-injection plan (tests only).
    pub fault: Option<FaultPlan>,
    /// Where to write the final telemetry snapshot on shutdown.
    pub telemetry_json: Option<String>,
    /// Where to write the bound port (for scripts using port 0).
    pub port_file: Option<String>,
    /// Benchmarks whose systems (and reduced-order models) are built
    /// before the accept loop starts, so first requests skip the build.
    pub prewarm: Vec<oftec_power::Benchmark>,
    /// Flight-recorder capacity for recently completed traces.
    pub flight_recent: usize,
    /// Flight-recorder capacity for retained non-OK traces.
    pub flight_errors: usize,
    /// Where to dump the flight recorder (JSONL) when the solver-error
    /// SLO monitor breaches; `None` disables the automatic dump.
    pub flight_dump: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache: CacheConfig::default(),
            // Zero window: `pop_batch` still drains everything already
            // queued into one batch, but a lone request is dispatched
            // immediately — with microsecond reduced-order solves,
            // holding the batch open costs more than it amortizes.
            batch_window: Duration::ZERO,
            batch_max: 32,
            queue_capacity: 256,
            max_line_bytes: 64 * 1024,
            read_timeout: Duration::from_millis(25),
            coarse: false,
            fault: None,
            telemetry_json: None,
            port_file: None,
            prewarm: Vec::new(),
            flight_recent: 256,
            flight_errors: 256,
            flight_dump: None,
        }
    }
}

/// Rolling window length of every SLO monitor, in observations.
const SLO_WINDOW: usize = 256;
/// Observations a monitor needs before it may breach.
const SLO_MIN_COUNT: usize = 8;

/// The serving SLO monitors, all observed on connection threads as each
/// workload response is finalized — never from executor workers, so
/// breach edges do not depend on `OFTEC_THREADS`.
struct Monitors {
    /// Fraction of responses shed by admission control (`overload`).
    shed: SloMonitor,
    /// Fraction of responses failing inside the solve path
    /// (`solver`/`panic`/`internal`); its breach edge also triggers the
    /// flight-recorder dump.
    solver_errors: SloMonitor,
    /// Fraction of solves that failed reduced-order certification.
    fallbacks: SloMonitor,
    /// Mean certified residual ratio of reduced solves (drift detector).
    residual: SloMonitor,
}

impl Monitors {
    fn new() -> Self {
        Self {
            shed: SloMonitor::new(
                "serve.slo.shed_rate",
                "slo.breaches.shed_rate",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                0.2,
            ),
            solver_errors: SloMonitor::new(
                "serve.slo.solver_error_rate",
                "slo.breaches.solver_error_rate",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                0.5,
            ),
            fallbacks: SloMonitor::new(
                "serve.slo.fallback_rate",
                "slo.breaches.fallback_rate",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                0.5,
            ),
            residual: SloMonitor::new(
                "serve.slo.residual_drift",
                "slo.breaches.residual_drift",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                5e-5,
            ),
        }
    }

    fn statuses(&self) -> [SloStatus; 4] {
        [
            self.shed.status(),
            self.solver_errors.status(),
            self.fallbacks.status(),
            self.residual.status(),
        ]
    }
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Requests graceful shutdown: drain, answer in-flight, flush, exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

struct Shared {
    engine: Engine,
    cache: Arc<QuantizedCache>,
    queue: JobQueue,
    stop: Arc<AtomicBool>,
    connections: AtomicUsize,
    started: Instant,
    read_timeout: Duration,
    max_line_bytes: usize,
    recorder: FlightRecorder,
    monitors: Monitors,
    /// Connection numbering for deterministic trace ids (1-based).
    conn_seq: AtomicU64,
    flight_dump: Option<String>,
}

/// A bound, not-yet-running cooling-control server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServeConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the engine (but serves nothing
    /// until [`Server::run`]).
    ///
    /// # Errors
    ///
    /// I/O errors from binding `config.addr`.
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let package = if config.coarse {
            PackageConfig::dac14_coarse()
        } else {
            PackageConfig::dac14()
        };
        let threads = if config.threads == 0 {
            oftec_parallel::thread_count()
        } else {
            config.threads
        };
        let cache = Arc::new(QuantizedCache::new(config.cache.clone()));
        let shared = Arc::new(Shared {
            engine: Engine::new(package, Arc::clone(&cache), threads, config.fault),
            cache,
            queue: JobQueue::new(config.queue_capacity, config.batch_max, config.batch_window),
            stop: Arc::new(AtomicBool::new(false)),
            connections: AtomicUsize::new(0),
            started: Instant::now(),
            read_timeout: config.read_timeout,
            max_line_bytes: config.max_line_bytes,
            recorder: FlightRecorder::new(config.flight_recent, config.flight_errors),
            monitors: Monitors::new(),
            conn_seq: AtomicU64::new(0),
            flight_dump: config.flight_dump.clone(),
        });
        Ok(Self {
            listener,
            local_addr,
            config,
            shared,
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.shared.stop),
        }
    }

    /// Serves until shutdown, then drains and returns. Blocks the
    /// calling thread.
    ///
    /// # Errors
    ///
    /// I/O errors writing the port file; accept errors are retried.
    #[must_use = "the serve loop's exit status reports drain/flush failures"]
    pub fn run(self) -> std::io::Result<()> {
        telemetry::set_collecting(true);
        for &benchmark in &self.config.prewarm {
            self.shared.engine.prewarm(benchmark);
        }
        if let Some(path) = &self.config.port_file {
            std::fs::write(path, format!("{}\n", self.local_addr.port()))?;
        }

        // The dispatcher owns the queue's consumer side for the whole
        // server lifetime; it exits once the queue is closed and drained.
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || {
                    telemetry::set_collecting(true);
                    while let Some(batch) = shared.queue.pop_batch() {
                        shared.engine.execute(batch);
                        telemetry::flush();
                    }
                    telemetry::flush();
                })?
        };

        let mut conn_threads = Vec::new();
        while !self.shared.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // `serve.connections` is counted lazily on the first
                    // workload request (see `serve_connection`), so
                    // probe-only connections never reach it; this gauge
                    // tracks live connections for the health payload.
                    self.shared.connections.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&self.shared);
                    let t = std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || {
                            telemetry::set_collecting(true);
                            serve_connection(&shared, stream);
                            telemetry::flush();
                            shared.connections.fetch_sub(1, Ordering::SeqCst);
                        })?;
                    conn_threads.push(t);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
            conn_threads.retain(|t| !t.is_finished());
        }

        // Drain: no new admissions, but everything admitted is answered.
        self.shared.queue.close();
        let _ = dispatcher.join();
        for t in conn_threads {
            let _ = t.join();
        }

        telemetry::flush();
        if let Some(path) = &self.config.telemetry_json {
            let snap = authoritative_snapshot();
            std::fs::write(path, snap.to_json())?;
        }
        Ok(())
    }
}

/// Global snapshot with the serve counters overwritten by their exact
/// atomic values — thread-local flush timing never understates them.
fn authoritative_snapshot() -> telemetry::Snapshot {
    let mut snap = telemetry::snapshot();
    for c in [
        &SERVE_REQUESTS,
        &SERVE_RESPONSES_OK,
        &SERVE_RESPONSES_ERR,
        &SERVE_CONNECTIONS,
        &SERVE_PROBES,
        &SERVE_OVERLOADED,
        &SERVE_ERR_PARSE,
        &SERVE_ERR_OVERLOAD,
        &SERVE_ERR_DEADLINE,
        &SERVE_ERR_SOLVER,
        &SERVE_ERR_PANIC,
        &SERVE_ERR_INTERNAL,
        &SERVE_PANICS,
        &crate::engine::SERVE_BATCHES,
        &crate::engine::SERVE_BATCH_JOBS,
        &crate::engine::SERVE_BATCH_DEDUPED,
        &crate::engine::SERVE_DEADLINE_EXCEEDED,
        &crate::cache::CACHE_HITS,
        &crate::cache::CACHE_MISSES,
        &crate::cache::CACHE_EVICTIONS,
        &crate::cache::CACHE_EXPIRED,
    ] {
        snap.counters.insert(c.name(), c.get());
    }
    snap
}

/// Reads lines with a poll timeout so the shutdown flag is honored
/// mid-read. Returns `None` on EOF/error/shutdown-drain.
struct LineReader {
    buf: Vec<u8>,
    chunk: [u8; 4096],
    /// Set once a line exceeded the cap; the rest of it is discarded.
    discarding: bool,
}

enum ReadOutcome {
    Line(String),
    TooLong,
    Closed,
}

impl LineReader {
    fn new() -> Self {
        Self {
            buf: Vec::new(),
            chunk: [0; 4096],
            discarding: false,
        }
    }

    fn next_line(&mut self, stream: &mut TcpStream, shared: &Shared) -> ReadOutcome {
        loop {
            // A full line may already be buffered from a previous read.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                if self.discarding {
                    self.discarding = false;
                    return ReadOutcome::TooLong;
                }
                // A complete line can arrive in one chunk and still be
                // over the cap; check at extraction too.
                if line.len().saturating_sub(1) > shared.max_line_bytes {
                    return ReadOutcome::TooLong;
                }
                let text = String::from_utf8_lossy(&line).trim().to_string();
                if text.is_empty() {
                    continue; // blank lines are keep-alive no-ops
                }
                return ReadOutcome::Line(text);
            }
            if self.buf.len() > shared.max_line_bytes {
                // Discard until the newline arrives, then report once.
                self.buf.clear();
                self.discarding = true;
            }
            match stream.read(&mut self.chunk) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => {
                    if !self.discarding {
                        self.buf.extend_from_slice(&self.chunk[..n]);
                    } else if let Some(pos) = self.chunk[..n].iter().position(|&b| b == b'\n') {
                        self.buf.extend_from_slice(&self.chunk[pos..n]);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shared.stop.load(Ordering::SeqCst) {
                        return ReadOutcome::Closed;
                    }
                }
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let mut reader = LineReader::new();
    // Connection number for trace ids: 1-based, assigned in accept order.
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed) + 1;
    // Workload request sequence on this connection (probes excluded, so
    // the same workload script yields the same trace ids regardless of
    // how often a side channel polls `health`/`metrics`).
    let mut workload_seq: u64 = 0;
    // `serve.connections` counts connections that carried workload: it is
    // bumped on the first non-probe request, so a load generator's
    // health/metrics side channel never inflates it.
    let mut counted = false;
    let count_workload = |counted: &mut bool| {
        SERVE_REQUESTS.add(1);
        if !*counted {
            *counted = true;
            SERVE_CONNECTIONS.add(1);
        }
    };
    loop {
        let line = match reader.next_line(&mut stream, shared) {
            ReadOutcome::Closed => return,
            ReadOutcome::TooLong => {
                workload_seq += 1;
                count_workload(&mut counted);
                let mut trace = TraceContext::new(conn_id, workload_seq);
                trace.stage("parse");
                let err = ErrBody::new(
                    "line_too_long",
                    format!("request line exceeds {} bytes", shared.max_line_bytes),
                );
                trace.set_outcome(error_cause(err.kind));
                finish_workload(shared, &trace);
                let resp = protocol::err_line_traced(None, &trace.envelope_json(false), &err);
                telemetry::flush();
                if !write_line(&mut stream, &resp) {
                    return;
                }
                continue;
            }
            ReadOutcome::Line(l) => l,
        };
        // The context opens before the parse so the `parse` stage covers
        // it; probes discard the context without consuming a sequence
        // number.
        let mut trace = TraceContext::new(conn_id, workload_seq + 1);
        let parsed = protocol::parse_line(&line);
        trace.stage("parse");
        // Probes (`health`/`metrics`/`trace`/`slo`/`shutdown`) are
        // control-plane traffic: counted under `serve.probes` only, and
        // kept out of the response counters and latency histograms so
        // the workload numbers stay exact.
        let is_probe = matches!(
            &parsed,
            Ok((
                _,
                Request::Health
                    | Request::Metrics { .. }
                    | Request::Trace { .. }
                    | Request::Slo
                    | Request::Shutdown
            ))
        );
        // `shutdown` must be detected before `parsed` is consumed but
        // acted on only after its response is written, so the requester
        // sees the acknowledgment before the drain starts.
        let is_shutdown = matches!(&parsed, Ok((_, Request::Shutdown)));
        let response = match parsed {
            Ok((id, request)) if is_probe => {
                SERVE_PROBES.add(1);
                handle_probe(shared, id, &request)
            }
            Ok((id, request)) => {
                workload_seq += 1;
                count_workload(&mut counted);
                match request {
                    Request::Optimize { spec }
                    | Request::Steady { spec }
                    | Request::Sweep { spec } => handle_solve(shared, id, spec, trace),
                    // Probe variants are filtered by `is_probe` above.
                    _ => {
                        trace.set_outcome("internal");
                        finish_workload(shared, &trace);
                        let err = ErrBody::new("internal", "probe routed to workload path");
                        protocol::err_line_traced(id, &trace.envelope_json(false), &err)
                    }
                }
            }
            Err((id, err)) => {
                workload_seq += 1;
                count_workload(&mut counted);
                trace.set_outcome(error_cause(err.kind));
                finish_workload(shared, &trace);
                protocol::err_line_traced(id, &trace.envelope_json(false), &err)
            }
        };
        let keep_going = write_line(&mut stream, &response);
        telemetry::flush();
        if !keep_going {
            return;
        }
        if is_shutdown {
            shared.stop.store(true, Ordering::SeqCst);
        }
    }
}

/// Answers a control-plane request inline. Probes touch neither the
/// response counters nor the latency histograms — `serve.responses_ok`
/// stays an exact workload count.
fn handle_probe(shared: &Shared, id: Option<u64>, request: &Request) -> String {
    match request {
        Request::Health => {
            let up = shared.started.elapsed().as_millis();
            let payload = format!(
                "{{\"status\":\"ok\",\"uptime_ms\":{},\"queue_depth\":{},\"connections\":{},\"cache_entries\":{}}}",
                up,
                shared.queue.depth(),
                shared.connections.load(Ordering::SeqCst),
                shared.cache.len()
            );
            protocol::ok_line(id, false, &payload)
        }
        Request::Metrics { prometheus: false } => {
            protocol::ok_line(id, false, &authoritative_snapshot().to_json())
        }
        Request::Metrics { prometheus: true } => {
            let text = telemetry::to_prometheus(&authoritative_snapshot());
            protocol::ok_line(id, false, &protocol::escape_json(&text))
        }
        Request::Trace { limit, redact } => {
            let entries = shared.recorder.snapshot();
            let start = entries.len().saturating_sub(*limit);
            let items: Vec<String> = entries[start..]
                .iter()
                .map(|r| crate::trace::record_json(r, *redact))
                .collect();
            let payload = format!(
                "{{\"recorded\":{},\"entries\":[{}]}}",
                shared.recorder.recorded(),
                items.join(",")
            );
            protocol::ok_line(id, false, &payload)
        }
        Request::Slo => {
            let items: Vec<String> = shared
                .monitors
                .statuses()
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":\"{}\",\"threshold\":{},\"window\":{},\"min_count\":{},\"count\":{},\"mean\":{},\"breached\":{},\"breaches\":{}}}",
                        s.name,
                        s.threshold,
                        s.window,
                        s.min_count,
                        s.count,
                        s.mean,
                        s.breached,
                        s.breaches
                    )
                })
                .collect();
            protocol::ok_line(
                id,
                false,
                &format!("{{\"monitors\":[{}]}}", items.join(",")),
            )
        }
        Request::Shutdown => protocol::ok_line(id, false, "{\"status\":\"draining\"}"),
        // Solve requests never reach this function (see `is_probe`).
        _ => protocol::err_line(
            id,
            &ErrBody::new("internal", "workload routed to probe path"),
        ),
    }
}

/// Admits a solve request and waits for its traced reply.
fn handle_solve(
    shared: &Shared,
    id: Option<u64>,
    spec: SolveSpec,
    mut trace: TraceContext,
) -> String {
    // Fast path: answer cache hits on the connection thread. A miss
    // still stamps the `cache` stage — the lookup is part of the
    // request's latency story either way.
    if !spec.no_cache {
        let key = shared.cache.key_for(&spec);
        if let Some(payload) = shared.cache.get(&key) {
            trace.stage("cache");
            trace.set_outcome("cache_hit");
            finish_workload(shared, &trace);
            return protocol::ok_line_traced(id, true, &trace.envelope_json(false), &payload);
        }
        trace.stage("cache");
    }
    let deadline = spec
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    // The trace moves into the job; keep its identity for the
    // reconstruction path where the pipeline drops the reply channel.
    let (conn, seq) = (trace.conn(), trace.seq());
    let (tx, rx) = mpsc::channel();
    let job = Job {
        spec,
        deadline,
        enqueued: Instant::now(),
        trace,
        reply: tx,
    };
    match shared.queue.try_push(job) {
        Err((PushError::Full, mut job)) => {
            SERVE_OVERLOADED.add(1);
            job.trace.set_outcome("overload");
            finish_workload(shared, &job.trace);
            let err = ErrBody::new("overloaded", "request queue is full; retry later");
            protocol::err_line_traced(id, &job.trace.envelope_json(false), &err)
        }
        Err((PushError::Closed, mut job)) => {
            job.trace.set_outcome("overload");
            finish_workload(shared, &job.trace);
            let err = ErrBody::new("shutting_down", "server is draining");
            protocol::err_line_traced(id, &job.trace.envelope_json(false), &err)
        }
        Ok(()) => match rx.recv() {
            Ok((Ok(payload), trace)) => {
                finish_workload(shared, &trace);
                protocol::ok_line_traced(id, false, &trace.envelope_json(false), &payload)
            }
            Ok((Err(err), trace)) => {
                finish_workload(shared, &trace);
                protocol::err_line_traced(id, &trace.envelope_json(false), &err)
            }
            Err(_) => {
                // Dispatcher dropped the sender without a reply — only
                // possible on hard teardown. The trace went down with the
                // job; rebuild its identity so the record still lands in
                // the flight recorder under the right id.
                let mut trace = TraceContext::new(conn, seq);
                trace.set_outcome("internal");
                finish_workload(shared, &trace);
                let err = ErrBody::new("internal", "solve pipeline dropped the request");
                protocol::err_line_traced(id, &trace.envelope_json(false), &err)
            }
        },
    }
}

/// Finalizes one workload response: response + typed-cause counters,
/// latency and per-stage histograms, SLO observations, and the flight-
/// recorder entry. Runs on the connection thread for every workload
/// request exactly once.
fn finish_workload(shared: &Shared, trace: &TraceContext) {
    let outcome = trace.outcome();
    if trace.is_err() {
        SERVE_RESPONSES_ERR.add(1);
        match outcome {
            "parse" => SERVE_ERR_PARSE.add(1),
            "overload" => SERVE_ERR_OVERLOAD.add(1),
            "deadline" => SERVE_ERR_DEADLINE.add(1),
            "panic" => SERVE_ERR_PANIC.add(1),
            "internal" => SERVE_ERR_INTERNAL.add(1),
            _ => SERVE_ERR_SOLVER.add(1),
        }
    } else {
        SERVE_RESPONSES_OK.add(1);
    }
    telemetry::histogram_record("serve.latency_us", LATENCY_BOUNDS, trace.total_us());
    for (stage, hist) in [
        ("parse", "serve.stage.parse_us"),
        ("queue", "serve.stage.queue_us"),
        ("batch", "serve.stage.batch_us"),
        ("cache", "serve.stage.cache_us"),
        ("solve", "serve.stage.solve_us"),
    ] {
        if let Some(us) = trace.stage_micros(stage) {
            telemetry::histogram_record(hist, LATENCY_BOUNDS, us);
        }
    }
    let failed = matches!(outcome, "solver" | "panic" | "internal");
    shared
        .monitors
        .shed
        .observe(f64::from(outcome == "overload"));
    let spike = shared.monitors.solver_errors.observe(f64::from(failed));
    shared
        .monitors
        .fallbacks
        .observe(f64::from(outcome == "fallback"));
    if let Some(r) = trace.residual() {
        shared.monitors.residual.observe(r);
    }
    shared.recorder.record(&trace.to_record());
    // Error-rate spike: dump the flight recorder so the burst stays
    // diagnosable even if the process dies before anyone asks `trace`.
    if spike {
        if let Some(path) = &shared.flight_dump {
            let mut out = String::new();
            for rec in shared.recorder.snapshot() {
                out.push_str(&crate::trace::record_json(&rec, false));
                out.push('\n');
            }
            let _ = std::fs::write(path, out);
        }
    }
}
