//! The TCP serve loop: accept, frame, admit, dispatch, drain.
//!
//! Connections are multiplexed over a **bounded pool of shard workers**:
//! the accept loop assigns each connection (round-robin) to a worker,
//! and each worker drives its connections with nonblocking reads/writes
//! and reusable per-connection buffers — thread count is fixed by
//! [`ServeConfig::conn_workers`], not by client count. Messages are
//! framed per the sniffed wire format (NDJSON lines or [`crate::wire`]
//! binary frames, interleaving freely on one connection); `health`,
//! `metrics`, and cache hits are answered inline on the worker (the
//! sub-millisecond path); solve misses are admitted into the bounded
//! deadline-aware [`JobQueue`] and batched onto the executor by a single
//! dispatcher thread, their replies pumped back in request order as they
//! resolve (responses pipeline up to [`ServeConfig::max_inflight`] per
//! connection).
//!
//! A panicking connection is contained: the worker catches the unwind,
//! counts it in `serve.panics`, and drops only that connection — its
//! `connections` gauge entry is restored by a drop guard. Worker and
//! dispatcher panics are observed at join. Shutdown — via the `shutdown`
//! command or a [`ServerHandle`] — is graceful: the listener stops
//! accepting, the queue closes but drains, every in-flight request is
//! answered and flushed, and the final telemetry snapshot is written.

use crate::cache::{CacheConfig, QuantizedCache};
use crate::engine::{Engine, FaultPlan, SERVE_DEADLINE_EXCEEDED, SERVE_PANICS};
use crate::protocol::{self, error_cause, ErrBody, Request, SolveSpec};
use crate::queue::{Job, JobQueue, PushError};
use crate::trace::TraceContext;
use crate::wire;
use oftec_telemetry as telemetry;
use oftec_telemetry::{Counter, Field, FlightRecorder, Severity, SloMonitor, SloStatus};
use oftec_thermal::PackageConfig;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
pub static SERVE_RESPONSES_OK: Counter = Counter::new("serve.responses_ok");
pub static SERVE_RESPONSES_ERR: Counter = Counter::new("serve.responses_err");
pub static SERVE_CONNECTIONS: Counter = Counter::new("serve.connections");
pub static SERVE_PROBES: Counter = Counter::new("serve.probes");
pub static SERVE_OVERLOADED: Counter = Counter::new("serve.overloaded");
pub static SERVE_SPAWN_FAILURES: Counter = Counter::new("serve.worker_spawn_failures");

// Per-wire message counters: which format each request arrived in.
pub static SERVE_WIRE_NDJSON: Counter = Counter::new("serve.wire.ndjson");
pub static SERVE_WIRE_BINARY: Counter = Counter::new("serve.wire.binary");

// Typed per-cause error counters: `serve.responses_err` equals their sum,
// so a bench report never contains an opaque `failed` bucket.
pub static SERVE_ERR_PARSE: Counter = Counter::new("serve.errors.parse");
pub static SERVE_ERR_OVERLOAD: Counter = Counter::new("serve.errors.overload");
pub static SERVE_ERR_DEADLINE: Counter = Counter::new("serve.errors.deadline");
pub static SERVE_ERR_SOLVER: Counter = Counter::new("serve.errors.solver");
pub static SERVE_ERR_PANIC: Counter = Counter::new("serve.errors.panic");
pub static SERVE_ERR_INTERNAL: Counter = Counter::new("serve.errors.internal");

/// Request latency histogram bounds (microseconds).
static LATENCY_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// Serving configuration. `Default` is tuned for tests and local runs;
/// the CLI maps its flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7464` (port 0 = ephemeral).
    pub addr: String,
    /// Executor threads per batch (0 = `OFTEC_THREADS`/auto).
    pub threads: usize,
    /// Result-cache quantization and eviction settings.
    pub cache: CacheConfig,
    /// How long the dispatcher holds a batch open for stragglers.
    pub batch_window: Duration,
    /// Maximum jobs per batch.
    pub batch_max: usize,
    /// Admission-queue capacity; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
    /// Maximum request-line length in bytes; longer lines get
    /// `line_too_long` and are discarded to the next newline. Also bounds
    /// binary frame bodies (`frame_too_long`).
    pub max_line_bytes: usize,
    /// Legacy poll interval from the blocking-read servers; the
    /// nonblocking shard workers pace themselves with an adaptive idle
    /// backoff instead, so this now only caps that backoff.
    pub read_timeout: Duration,
    /// Use the coarse DAC'14 package (fast solves; tests and smoke).
    pub coarse: bool,
    /// Fault-injection plan (tests only).
    pub fault: Option<FaultPlan>,
    /// Where to write the final telemetry snapshot on shutdown.
    pub telemetry_json: Option<String>,
    /// Where to write the bound port (for scripts using port 0).
    pub port_file: Option<String>,
    /// Benchmarks whose systems (and reduced-order models) are built
    /// before the accept loop starts, so first requests skip the build.
    pub prewarm: Vec<oftec_power::Benchmark>,
    /// Flight-recorder capacity for recently completed traces.
    pub flight_recent: usize,
    /// Flight-recorder capacity for retained non-OK traces.
    pub flight_errors: usize,
    /// Where to dump the flight recorder (JSONL) when the solver-error
    /// SLO monitor breaches; `None` disables the automatic dump.
    pub flight_dump: Option<String>,
    /// Shard workers multiplexing the connections (0 = auto: up to 4,
    /// bounded by the machine's parallelism).
    pub conn_workers: usize,
    /// Maximum pipelined workload requests awaiting a reply per
    /// connection; beyond it the worker stops reading that connection
    /// (TCP backpressure) until replies drain.
    pub max_inflight: usize,
    /// Test hook: an NDJSON request line equal to this token panics the
    /// connection handler, exercising panic containment in the worker.
    pub panic_token: Option<String>,
    /// Test hook: pretend the first N worker spawns failed, exercising
    /// spawn-failure resilience.
    pub fail_worker_spawns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache: CacheConfig::default(),
            // Zero window: `pop_batch` still drains everything already
            // queued into one batch, but a lone request is dispatched
            // immediately — with microsecond reduced-order solves,
            // holding the batch open costs more than it amortizes.
            batch_window: Duration::ZERO,
            batch_max: 32,
            queue_capacity: 256,
            max_line_bytes: 64 * 1024,
            read_timeout: Duration::from_millis(25),
            coarse: false,
            fault: None,
            telemetry_json: None,
            port_file: None,
            prewarm: Vec::new(),
            flight_recent: 256,
            flight_errors: 256,
            flight_dump: None,
            conn_workers: 0,
            max_inflight: 64,
            panic_token: None,
            fail_worker_spawns: 0,
        }
    }
}

/// How long a shard worker naps after a sweep that found work, so the
/// next sweep harvests a batch of arrivals instead of polling one
/// message at a time (see the note in [`worker_loop`]).
const COALESCE_NAP: Duration = Duration::from_micros(100);

/// Rolling window length of every SLO monitor, in observations.
const SLO_WINDOW: usize = 256;
/// Observations a monitor needs before it may breach.
const SLO_MIN_COUNT: usize = 8;

/// The serving SLO monitors, all observed on the shard workers as each
/// workload response is finalized — never from executor workers, so
/// breach edges do not depend on `OFTEC_THREADS`.
struct Monitors {
    /// Fraction of responses shed by admission control (`overload`).
    shed: SloMonitor,
    /// Fraction of responses failing inside the solve path
    /// (`solver`/`panic`/`internal`); its breach edge also triggers the
    /// flight-recorder dump.
    solver_errors: SloMonitor,
    /// Fraction of solves that failed reduced-order certification.
    fallbacks: SloMonitor,
    /// Mean certified residual ratio of reduced solves (drift detector).
    residual: SloMonitor,
}

impl Monitors {
    fn new() -> Self {
        Self {
            shed: SloMonitor::new(
                "serve.slo.shed_rate",
                "slo.breaches.shed_rate",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                0.2,
            ),
            solver_errors: SloMonitor::new(
                "serve.slo.solver_error_rate",
                "slo.breaches.solver_error_rate",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                0.5,
            ),
            fallbacks: SloMonitor::new(
                "serve.slo.fallback_rate",
                "slo.breaches.fallback_rate",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                0.5,
            ),
            residual: SloMonitor::new(
                "serve.slo.residual_drift",
                "slo.breaches.residual_drift",
                SLO_WINDOW,
                SLO_MIN_COUNT,
                5e-5,
            ),
        }
    }

    fn statuses(&self) -> [SloStatus; 4] {
        [
            self.shed.status(),
            self.solver_errors.status(),
            self.fallbacks.status(),
            self.residual.status(),
        ]
    }
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Requests graceful shutdown: drain, answer in-flight, flush, exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

struct Shared {
    engine: Engine,
    cache: Arc<QuantizedCache>,
    queue: JobQueue,
    stop: Arc<AtomicBool>,
    connections: AtomicUsize,
    /// Live shard workers (for the health payload).
    workers: AtomicUsize,
    started: Instant,
    read_timeout: Duration,
    max_line_bytes: usize,
    max_inflight: usize,
    recorder: FlightRecorder,
    monitors: Monitors,
    /// Connection numbering for deterministic trace ids (1-based,
    /// assigned in accept order).
    conn_seq: AtomicU64,
    flight_dump: Option<String>,
    panic_token: Option<String>,
}

/// A bound, not-yet-running cooling-control server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServeConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the engine (but serves nothing
    /// until [`Server::run`]).
    ///
    /// # Errors
    ///
    /// I/O errors from binding `config.addr`.
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let package = if config.coarse {
            PackageConfig::dac14_coarse()
        } else {
            PackageConfig::dac14()
        };
        let threads = if config.threads == 0 {
            oftec_parallel::thread_count()
        } else {
            config.threads
        };
        let cache = Arc::new(QuantizedCache::new(config.cache.clone()));
        let shared = Arc::new(Shared {
            engine: Engine::new(package, Arc::clone(&cache), threads, config.fault),
            cache,
            queue: JobQueue::new(config.queue_capacity, config.batch_max, config.batch_window),
            stop: Arc::new(AtomicBool::new(false)),
            connections: AtomicUsize::new(0),
            workers: AtomicUsize::new(0),
            started: Instant::now(),
            read_timeout: config.read_timeout,
            max_line_bytes: config.max_line_bytes,
            max_inflight: config.max_inflight.max(1),
            recorder: FlightRecorder::new(config.flight_recent, config.flight_errors),
            monitors: Monitors::new(),
            conn_seq: AtomicU64::new(0),
            flight_dump: config.flight_dump.clone(),
            panic_token: config.panic_token.clone(),
        });
        Ok(Self {
            listener,
            local_addr,
            config,
            shared,
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.shared.stop),
        }
    }

    /// How many shard workers a configuration yields.
    fn worker_count(&self) -> usize {
        if self.config.conn_workers > 0 {
            return self.config.conn_workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    }

    /// Serves until shutdown, then drains and returns. Blocks the
    /// calling thread.
    ///
    /// # Errors
    ///
    /// I/O errors writing the port file, or total worker-pool spawn
    /// failure. Accept errors and individual spawn failures are
    /// contained: the server keeps serving on the workers it has.
    #[must_use = "the serve loop's exit status reports drain/flush failures"]
    pub fn run(self) -> std::io::Result<()> {
        telemetry::set_collecting(true);
        for &benchmark in &self.config.prewarm {
            self.shared.engine.prewarm(benchmark);
        }
        if let Some(path) = &self.config.port_file {
            std::fs::write(path, format!("{}\n", self.local_addr.port()))?;
        }

        // The dispatcher owns the queue's consumer side for the whole
        // server lifetime; it exits once the queue is closed and drained.
        // Each batch feeds the queue's admission EWMA with its per-job
        // service time.
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || {
                    telemetry::set_collecting(true);
                    while let Some(batch) = shared.queue.pop_batch() {
                        let jobs = batch.len() as u64;
                        let t0 = Instant::now();
                        shared.engine.execute(batch);
                        let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        shared.queue.record_service(spent / jobs.max(1));
                        telemetry::flush();
                    }
                    telemetry::flush();
                })?
        };

        // The shard worker pool. A failed spawn loses one worker, not the
        // server; only a pool with zero workers is fatal (and even then
        // the queue is drained and the snapshot written on the way out).
        let mut senders: Vec<mpsc::Sender<NewConn>> = Vec::new();
        let mut workers = Vec::new();
        for i in 0..self.worker_count() {
            let (tx, rx) = mpsc::channel::<NewConn>();
            let shared = Arc::clone(&self.shared);
            let spawned = if i < self.config.fail_worker_spawns {
                Err(std::io::Error::other("injected worker spawn failure"))
            } else {
                std::thread::Builder::new()
                    .name(format!("serve-shard-{i}"))
                    .spawn(move || {
                        telemetry::set_collecting(true);
                        worker_loop(&shared, &rx);
                        telemetry::flush();
                    })
            };
            match spawned {
                Ok(handle) => {
                    self.shared.workers.fetch_add(1, Ordering::SeqCst);
                    senders.push(tx);
                    workers.push(handle);
                }
                Err(e) => {
                    SERVE_SPAWN_FAILURES.add(1);
                    telemetry::event(
                        Severity::Warn,
                        "serve.worker_spawn_failed",
                        &[
                            ("worker", Field::U64(i as u64)),
                            ("error", Field::Str(&e.to_string())),
                        ],
                    );
                }
            }
        }
        let pool_empty = workers.is_empty();

        let mut rr = 0usize;
        while !pool_empty && !self.shared.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // `serve.connections` is counted lazily on the first
                    // workload request, so probe-only connections never
                    // reach it; the gauge guard tracks live connections
                    // for the health payload — and restores the count
                    // even when the connection's handler panics.
                    let gauge = ConnGauge::new(Arc::clone(&self.shared));
                    let conn_id = self.shared.conn_seq.fetch_add(1, Ordering::Relaxed) + 1;
                    let mut conn = Some((stream, conn_id, gauge));
                    // Hand the connection to the next live worker; a dead
                    // worker's channel hands it back, and we rotate on.
                    while let Some(c) = conn.take() {
                        if senders.is_empty() {
                            break; // every worker died: drop the connection
                        }
                        rr = (rr + 1) % senders.len();
                        if let Err(mpsc::SendError(c)) = senders[rr].send(c) {
                            senders.remove(rr);
                            rr = 0;
                            conn = Some(c);
                        }
                    }
                    if senders.is_empty() {
                        break; // no workers left; drain and report below
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }

        // Drain: no new admissions, but everything admitted is answered.
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let dispatcher_panicked = dispatcher.join().is_err();
        if dispatcher_panicked {
            SERVE_PANICS.add(1);
            telemetry::event(Severity::Warn, "serve.dispatcher_panicked", &[]);
        }
        drop(senders);
        for (i, w) in workers.into_iter().enumerate() {
            // Joining (instead of detaching) is what surfaces worker
            // panics; a panicking worker is counted, not silently lost.
            if w.join().is_err() {
                SERVE_PANICS.add(1);
                telemetry::event(
                    Severity::Warn,
                    "serve.worker_panicked",
                    &[("worker", Field::U64(i as u64))],
                );
            }
            self.shared.workers.fetch_sub(1, Ordering::SeqCst);
        }

        telemetry::flush();
        if let Some(path) = &self.config.telemetry_json {
            let snap = authoritative_snapshot();
            std::fs::write(path, snap.to_json())?;
        }
        if pool_empty {
            return Err(std::io::Error::other(
                "no shard workers could be spawned; served nothing",
            ));
        }
        Ok(())
    }
}

/// Global snapshot with the serve counters overwritten by their exact
/// atomic values — thread-local flush timing never understates them.
fn authoritative_snapshot() -> telemetry::Snapshot {
    let mut snap = telemetry::snapshot();
    for c in [
        &SERVE_REQUESTS,
        &SERVE_RESPONSES_OK,
        &SERVE_RESPONSES_ERR,
        &SERVE_CONNECTIONS,
        &SERVE_PROBES,
        &SERVE_OVERLOADED,
        &SERVE_SPAWN_FAILURES,
        &SERVE_WIRE_NDJSON,
        &SERVE_WIRE_BINARY,
        &SERVE_ERR_PARSE,
        &SERVE_ERR_OVERLOAD,
        &SERVE_ERR_DEADLINE,
        &SERVE_ERR_SOLVER,
        &SERVE_ERR_PANIC,
        &SERVE_ERR_INTERNAL,
        &SERVE_PANICS,
        &crate::engine::SERVE_BATCHES,
        &crate::engine::SERVE_BATCH_JOBS,
        &crate::engine::SERVE_BATCH_DEDUPED,
        &crate::engine::SERVE_DEADLINE_EXCEEDED,
        &crate::queue::QUEUE_EXPIRED,
        &crate::queue::QUEUE_EVICTED,
        &crate::cache::CACHE_HITS,
        &crate::cache::CACHE_MISSES,
        &crate::cache::CACHE_EVICTIONS,
        &crate::cache::CACHE_EXPIRED,
    ] {
        snap.counters.insert(c.name(), c.get());
    }
    snap
}

/// Restores the live-connection gauge when a connection ends **for any
/// reason** — clean close, I/O error, or a panic unwinding through the
/// handler (the bug the old per-connection `fetch_sub` had).
struct ConnGauge {
    shared: Arc<Shared>,
}

impl ConnGauge {
    fn new(shared: Arc<Shared>) -> Self {
        shared.connections.fetch_add(1, Ordering::SeqCst);
        Self { shared }
    }
}

impl Drop for ConnGauge {
    fn drop(&mut self) {
        self.shared.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What the accept loop hands a shard worker.
type NewConn = (TcpStream, u64, ConnGauge);

/// Which wire format a message arrived in (and its response leaves in).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Wire {
    Ndjson,
    Binary,
}

/// A response waiting to leave a connection, in request order.
enum Outgoing {
    /// Fully encoded bytes (newline-terminated line or binary frame).
    Ready(Vec<u8>),
    /// A queued solve whose reply has not resolved yet.
    Pending {
        rx: mpsc::Receiver<crate::queue::JobReply>,
        id: Option<u64>,
        conn: u64,
        seq: u64,
        wire: Wire,
    },
}

/// Read-side resynchronization state after an oversized message.
enum Discard {
    None,
    /// Dropping until the next newline; report `line_too_long` there.
    Line,
    /// Dropping this many more bytes of an oversized frame body.
    Frame(usize),
}

/// One message extracted from a connection's read buffer.
enum Msg {
    Line(String),
    TooLongLine,
    Frame(Vec<u8>),
    /// Announced body length exceeded the cap; body bytes are discarded.
    TooLongFrame(usize),
    /// Unsupported frame version: unrecoverable (the announced length
    /// cannot be trusted, so the stream cannot be resynchronized).
    BadVersion(ErrBody),
}

/// Per-connection state owned by exactly one shard worker.
struct ConnState {
    stream: TcpStream,
    conn_id: u64,
    _gauge: ConnGauge,
    /// Unparsed request bytes (reused across messages).
    rbuf: Vec<u8>,
    /// Encoded response bytes not yet written (reused across responses).
    wbuf: Vec<u8>,
    /// How much of `wbuf` has been written.
    wpos: usize,
    /// Responses in request order, pumped front-first.
    out: VecDeque<Outgoing>,
    discard: Discard,
    /// Workload request sequence (probes excluded, so the same workload
    /// script yields the same trace ids regardless of side-channel
    /// polling).
    workload_seq: u64,
    /// Whether this connection has been counted in `serve.connections`.
    counted: bool,
    /// Read side finished (EOF or unrecoverable framing); flush and drop.
    eof: bool,
    /// Hard I/O error; drop immediately.
    dead: bool,
    /// A `shutdown` ack is queued: set the stop flag once it is flushed.
    stop_after_flush: bool,
}

impl ConnState {
    fn new(stream: TcpStream, conn_id: u64, gauge: ConnGauge) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            conn_id,
            _gauge: gauge,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            out: VecDeque::new(),
            discard: Discard::None,
            workload_seq: 0,
            counted: false,
            eof: false,
            dead: false,
            stop_after_flush: false,
        })
    }

    fn flushed(&self) -> bool {
        self.out.is_empty() && self.wpos >= self.wbuf.len()
    }

    fn alive(&self) -> bool {
        !self.dead && (!self.eof || !self.flushed())
    }

    fn count_workload(&mut self) {
        SERVE_REQUESTS.add(1);
        // `serve.connections` counts connections that carried workload:
        // bumped on the first non-probe request, so a load generator's
        // health/metrics side channel never inflates it.
        if !self.counted {
            self.counted = true;
            SERVE_CONNECTIONS.add(1);
        }
    }

    /// Appends an encoded response envelope for `wire` to the out queue.
    fn push_ready(&mut self, wire: Wire, envelope: &str) {
        let mut bytes = Vec::with_capacity(envelope.len() + wire::FRAME_HEADER_LEN + 1);
        match wire {
            Wire::Ndjson => {
                bytes.extend_from_slice(envelope.as_bytes());
                bytes.push(b'\n');
            }
            Wire::Binary => wire::encode_frame_into(&mut bytes, envelope.as_bytes()),
        }
        self.out.push_back(Outgoing::Ready(bytes));
    }
}

/// Encodes one resolved reply into response bytes.
fn encode_reply(wire: Wire, envelope: &str, wbuf: &mut Vec<u8>) {
    match wire {
        Wire::Ndjson => {
            wbuf.extend_from_slice(envelope.as_bytes());
            wbuf.push(b'\n');
        }
        Wire::Binary => wire::encode_frame_into(wbuf, envelope.as_bytes()),
    }
}

/// Extracts the next complete message from `buf`, advancing the discard
/// state. Returns the bytes consumed and the message, if one completed.
fn extract_message(buf: &[u8], discard: &mut Discard, max: usize) -> (usize, Option<Msg>) {
    let mut used = 0;
    loop {
        let b = &buf[used..];
        match *discard {
            Discard::Line => match b.iter().position(|&c| c == b'\n') {
                Some(pos) => {
                    used += pos + 1;
                    *discard = Discard::None;
                    return (used, Some(Msg::TooLongLine));
                }
                None => return (used + b.len(), None),
            },
            Discard::Frame(rem) => {
                let take = rem.min(b.len());
                used += take;
                if take < rem {
                    *discard = Discard::Frame(rem - take);
                    return (used, None);
                }
                *discard = Discard::None;
                continue;
            }
            Discard::None => {}
        }
        if b.is_empty() {
            return (used, None);
        }
        if b[0] == wire::FRAME_MAGIC {
            if b.len() < wire::FRAME_HEADER_LEN {
                return (used, None);
            }
            match wire::decode_header(&b[..wire::FRAME_HEADER_LEN]) {
                // The rest of the stream cannot be framed; consume it all
                // (the connection closes after the error is flushed).
                Err(e) => return (used + b.len(), Some(Msg::BadVersion(e))),
                Ok(len) => {
                    if len > max {
                        used += wire::FRAME_HEADER_LEN;
                        *discard = Discard::Frame(len);
                        return (used, Some(Msg::TooLongFrame(len)));
                    }
                    if b.len() < wire::FRAME_HEADER_LEN + len {
                        return (used, None);
                    }
                    let body = b[wire::FRAME_HEADER_LEN..wire::FRAME_HEADER_LEN + len].to_vec();
                    used += wire::FRAME_HEADER_LEN + len;
                    return (used, Some(Msg::Frame(body)));
                }
            }
        }
        match b.iter().position(|&c| c == b'\n') {
            Some(pos) => {
                used += pos + 1;
                // A complete line can arrive in one chunk and still be
                // over the cap; check at extraction too.
                if pos > max {
                    return (used, Some(Msg::TooLongLine));
                }
                let text = String::from_utf8_lossy(&b[..pos]).trim().to_string();
                if text.is_empty() {
                    continue; // blank lines are keep-alive no-ops
                }
                return (used, Some(Msg::Line(text)));
            }
            None => {
                if b.len() > max {
                    // Discard until the newline arrives, then report once.
                    *discard = Discard::Line;
                    return (used + b.len(), None);
                }
                return (used, None);
            }
        }
    }
}

/// One shard worker: drains newly assigned connections from `rx`, then
/// sweeps its connections — read, extract, handle, pump — with an
/// adaptive idle backoff. A panic inside one connection's handler is
/// caught here: counted, logged, and that connection alone is dropped.
fn worker_loop(shared: &Arc<Shared>, rx: &mpsc::Receiver<NewConn>) {
    let mut conns: Vec<ConnState> = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut idle: u32 = 0;
    let mut drain_started: Option<Instant> = None;
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        while let Ok((stream, conn_id, gauge)) = rx.try_recv() {
            if stopping {
                continue; // dropped: gauge guard restores the count
            }
            match ConnState::new(stream, conn_id, gauge) {
                Ok(c) => conns.push(c),
                Err(_) => continue,
            }
        }
        let mut active = false;
        let mut handled = 0usize;
        conns.retain_mut(|conn| {
            match catch_unwind(AssertUnwindSafe(|| {
                step_conn(shared, conn, &mut chunk, stopping)
            })) {
                Ok((step_active, step_msgs)) => {
                    active |= step_active;
                    handled += step_msgs;
                    conn.alive()
                }
                Err(_) => {
                    // Satellite fix: the panic is observed and the gauge
                    // guard inside ConnState restores `connections`.
                    SERVE_PANICS.add(1);
                    telemetry::event(
                        Severity::Warn,
                        "serve.connection_panicked",
                        &[("conn", Field::U64(conn.conn_id))],
                    );
                    active = true;
                    false
                }
            }
        });
        if active {
            telemetry::flush();
            idle = 0;
            // Coalesce arrivals when the shard is actually hot. Once a
            // sweep batches two or more messages the arrival rate has
            // outrun the sweep cost, and re-sweeping immediately burns
            // the core on empty nonblocking reads (32 conns ≈ 30 wasted
            // syscalls per message). A short nap lets several arrivals
            // accumulate per sweep; the added latency is bounded by the
            // nap and is far below the tail cost of a saturated core. A
            // sweep that found at most one message skips the nap so a
            // lone low-rate client keeps the sub-millisecond path.
            if !stopping && handled >= 2 {
                std::thread::sleep(COALESCE_NAP);
            }
        }
        if stopping {
            // Keep pumping until every admitted reply is flushed, with a
            // hard cap so a wedged peer cannot hold shutdown hostage.
            let t0 = *drain_started.get_or_insert_with(Instant::now);
            if conns.iter().all(ConnState::flushed) || t0.elapsed() > Duration::from_secs(5) {
                return;
            }
        }
        if !active {
            idle = idle.saturating_add(1);
            if idle <= 3 {
                std::thread::yield_now();
            } else {
                // Escalating nap, capped: long enough to cede the core to
                // clients on a shared box, short enough to stay off the
                // tail latency.
                let cap = shared.read_timeout.min(Duration::from_micros(200));
                let nap = Duration::from_micros(u64::from(idle.min(10)) * 20).min(cap);
                std::thread::sleep(nap);
            }
        }
    }
}

/// One sweep of one connection: read once, extract and handle every
/// complete message, pump resolved replies out. Returns whether anything
/// happened (for the worker's idle backoff) and how many messages were
/// handled (for the worker's coalescing decision).
fn step_conn(
    shared: &Arc<Shared>,
    conn: &mut ConnState,
    chunk: &mut [u8],
    stopping: bool,
) -> (bool, usize) {
    let mut active = false;
    let mut handled = 0usize;
    // Read: skipped once stopping (drain only), at EOF, or while the
    // pipeline cap is reached (TCP backpressure until replies drain).
    if !stopping && !conn.eof && !conn.dead && conn.out.len() < shared.max_inflight {
        match conn.stream.read(chunk) {
            Ok(0) => conn.eof = true,
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                active = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => conn.dead = true,
        }
    }
    // Extract and handle every complete message buffered so far.
    let mut consumed = 0;
    while conn.out.len() < shared.max_inflight {
        let (n, msg) = extract_message(
            &conn.rbuf[consumed..],
            &mut conn.discard,
            shared.max_line_bytes,
        );
        consumed += n;
        match msg {
            None => break,
            Some(m) => {
                active = true;
                handled += 1;
                handle_message(shared, conn, m);
            }
        }
    }
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
    // Pump: encode every resolved reply at the queue front, then write.
    active |= pump_out(shared, conn);
    if conn.stop_after_flush && conn.flushed() {
        conn.stop_after_flush = false;
        shared.stop.store(true, Ordering::SeqCst);
    }
    (active, handled)
}

/// Moves resolved front-of-queue replies into the write buffer and
/// writes as much as the socket accepts. Returns whether bytes moved.
fn pump_out(shared: &Arc<Shared>, conn: &mut ConnState) -> bool {
    let mut active = false;
    loop {
        match conn.out.front() {
            None => break,
            Some(Outgoing::Ready(_)) => {
                if let Some(Outgoing::Ready(bytes)) = conn.out.pop_front() {
                    conn.wbuf.extend_from_slice(&bytes);
                    active = true;
                }
            }
            Some(Outgoing::Pending { rx, .. }) => match rx.try_recv() {
                Err(mpsc::TryRecvError::Empty) => break,
                Ok((result, trace)) => {
                    if let Some(Outgoing::Pending { id, wire, .. }) = conn.out.pop_front() {
                        finish_workload(shared, &trace);
                        let envelope = match result {
                            Ok(payload) => protocol::ok_line_traced(
                                id,
                                false,
                                &trace.envelope_json(false),
                                &payload,
                            ),
                            Err(err) => {
                                protocol::err_line_traced(id, &trace.envelope_json(false), &err)
                            }
                        };
                        encode_reply(wire, &envelope, &mut conn.wbuf);
                        active = true;
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    if let Some(Outgoing::Pending {
                        id,
                        conn: c,
                        seq,
                        wire,
                        ..
                    }) = conn.out.pop_front()
                    {
                        // Dispatcher dropped the sender without a reply —
                        // only possible on hard teardown. The trace went
                        // down with the job; rebuild its identity so the
                        // record still lands in the flight recorder under
                        // the right id.
                        let mut trace = TraceContext::new(c, seq);
                        trace.set_outcome("internal");
                        finish_workload(shared, &trace);
                        let err = ErrBody::new("internal", "solve pipeline dropped the request");
                        let envelope =
                            protocol::err_line_traced(id, &trace.envelope_json(false), &err);
                        encode_reply(wire, &envelope, &mut conn.wbuf);
                        active = true;
                    }
                }
            },
        }
    }
    while conn.wpos < conn.wbuf.len() && !conn.dead {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
            }
            Ok(n) => {
                conn.wpos += n;
                active = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => conn.dead = true,
        }
    }
    if conn.wpos >= conn.wbuf.len() && !conn.wbuf.is_empty() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    active
}

/// Handles one extracted message, appending its response(s) to the
/// connection's out queue.
fn handle_message(shared: &Arc<Shared>, conn: &mut ConnState, msg: Msg) {
    match msg {
        Msg::TooLongLine => {
            SERVE_WIRE_NDJSON.add(1);
            let err = ErrBody::new(
                "line_too_long",
                format!("request line exceeds {} bytes", shared.max_line_bytes),
            );
            oversized(shared, conn, Wire::Ndjson, err);
        }
        Msg::TooLongFrame(len) => {
            SERVE_WIRE_BINARY.add(1);
            let err = ErrBody::new(
                "frame_too_long",
                format!(
                    "frame body of {len} bytes exceeds {} bytes",
                    shared.max_line_bytes
                ),
            );
            oversized(shared, conn, Wire::Binary, err);
        }
        Msg::BadVersion(err) => {
            SERVE_WIRE_BINARY.add(1);
            oversized(shared, conn, Wire::Binary, err);
            // The announced length cannot be trusted, so the stream
            // cannot be resynchronized: answer, flush, close.
            conn.eof = true;
        }
        Msg::Line(text) => {
            SERVE_WIRE_NDJSON.add(1);
            if shared.panic_token.as_deref() == Some(text.as_str()) {
                // oftec-lint: allow(L006, test hook: deliberate panic to exercise worker containment and the gauge drop guard)
                panic!("panic token received on connection {}", conn.conn_id);
            }
            let parsed = protocol::parse_line(&text);
            dispatch_parsed(shared, conn, Wire::Ndjson, parsed);
        }
        Msg::Frame(body) => {
            SERVE_WIRE_BINARY.add(1);
            let parsed = wire::decode_body(&body);
            dispatch_parsed(shared, conn, Wire::Binary, parsed);
        }
    }
}

/// Answers an oversized/unframeable message as a typed workload error.
fn oversized(shared: &Arc<Shared>, conn: &mut ConnState, wire: Wire, err: ErrBody) {
    conn.workload_seq += 1;
    conn.count_workload();
    let mut trace = TraceContext::new(conn.conn_id, conn.workload_seq);
    trace.stage("parse");
    trace.set_outcome(error_cause(err.kind));
    finish_workload(shared, &trace);
    let envelope = protocol::err_line_traced(None, &trace.envelope_json(false), &err);
    conn.push_ready(wire, &envelope);
}

/// Routes a parsed (or unparsable) request, mirroring the old
/// per-connection loop: probes are answered inline and counted under
/// `serve.probes` only; workload requests consume a sequence number and
/// flow through the trace/counter machinery.
type Parsed = Result<(Option<u64>, Request), (Option<u64>, ErrBody)>;

fn dispatch_parsed(shared: &Arc<Shared>, conn: &mut ConnState, wire: Wire, parsed: Parsed) {
    // The context opens before the parse result is inspected so the
    // `parse` stage covers it; probes discard the context without
    // consuming a sequence number.
    let mut trace = TraceContext::new(conn.conn_id, conn.workload_seq + 1);
    trace.stage("parse");
    // Probes (`health`/`metrics`/`trace`/`slo`/`shutdown`) are
    // control-plane traffic: counted under `serve.probes` only, and kept
    // out of the response counters and latency histograms so the
    // workload numbers stay exact.
    let is_probe = matches!(
        &parsed,
        Ok((
            _,
            Request::Health
                | Request::Metrics { .. }
                | Request::Trace { .. }
                | Request::Slo
                | Request::Shutdown
        ))
    );
    let is_shutdown = matches!(&parsed, Ok((_, Request::Shutdown)));
    match parsed {
        Ok((id, request)) if is_probe => {
            SERVE_PROBES.add(1);
            let envelope = handle_probe(shared, id, &request);
            conn.push_ready(wire, &envelope);
            if is_shutdown {
                // The ack must reach the requester before the drain
                // starts; the stop flag is set once it is flushed.
                conn.stop_after_flush = true;
            }
        }
        Ok((id, request)) => {
            conn.workload_seq += 1;
            conn.count_workload();
            match request {
                Request::Optimize { spec } | Request::Steady { spec } | Request::Sweep { spec } => {
                    handle_solve(shared, conn, wire, id, spec, trace);
                }
                // Probe variants are filtered by `is_probe` above.
                _ => {
                    trace.set_outcome("internal");
                    finish_workload(shared, &trace);
                    let err = ErrBody::new("internal", "probe routed to workload path");
                    let envelope = protocol::err_line_traced(id, &trace.envelope_json(false), &err);
                    conn.push_ready(wire, &envelope);
                }
            }
        }
        Err((id, err)) => {
            conn.workload_seq += 1;
            conn.count_workload();
            trace.set_outcome(error_cause(err.kind));
            finish_workload(shared, &trace);
            let envelope = protocol::err_line_traced(id, &trace.envelope_json(false), &err);
            conn.push_ready(wire, &envelope);
        }
    }
}

/// Answers a control-plane request inline. Probes touch neither the
/// response counters nor the latency histograms — `serve.responses_ok`
/// stays an exact workload count.
fn handle_probe(shared: &Shared, id: Option<u64>, request: &Request) -> String {
    match request {
        Request::Health => {
            let up = shared.started.elapsed().as_millis();
            let payload = format!(
                "{{\"status\":\"ok\",\"uptime_ms\":{},\"queue_depth\":{},\"connections\":{},\"workers\":{},\"cache_entries\":{}}}",
                up,
                shared.queue.depth(),
                shared.connections.load(Ordering::SeqCst),
                shared.workers.load(Ordering::SeqCst),
                shared.cache.len()
            );
            protocol::ok_line(id, false, &payload)
        }
        Request::Metrics { prometheus: false } => {
            telemetry::flush();
            protocol::ok_line(id, false, &authoritative_snapshot().to_json())
        }
        Request::Metrics { prometheus: true } => {
            telemetry::flush();
            let text = telemetry::to_prometheus(&authoritative_snapshot());
            protocol::ok_line(id, false, &protocol::escape_json(&text))
        }
        Request::Trace { limit, redact } => {
            let entries = shared.recorder.snapshot();
            let start = entries.len().saturating_sub(*limit);
            let items: Vec<String> = entries[start..]
                .iter()
                .map(|r| crate::trace::record_json(r, *redact))
                .collect();
            let payload = format!(
                "{{\"recorded\":{},\"entries\":[{}]}}",
                shared.recorder.recorded(),
                items.join(",")
            );
            protocol::ok_line(id, false, &payload)
        }
        Request::Slo => {
            let items: Vec<String> = shared
                .monitors
                .statuses()
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":\"{}\",\"threshold\":{},\"window\":{},\"min_count\":{},\"count\":{},\"mean\":{},\"breached\":{},\"breaches\":{}}}",
                        s.name,
                        s.threshold,
                        s.window,
                        s.min_count,
                        s.count,
                        s.mean,
                        s.breached,
                        s.breaches
                    )
                })
                .collect();
            protocol::ok_line(
                id,
                false,
                &format!("{{\"monitors\":[{}]}}", items.join(",")),
            )
        }
        Request::Shutdown => protocol::ok_line(id, false, "{\"status\":\"draining\"}"),
        // Solve requests never reach this function (see `is_probe`).
        _ => protocol::err_line(
            id,
            &ErrBody::new("internal", "workload routed to probe path"),
        ),
    }
}

/// Admits a solve request. A cache hit (or typed rejection) is answered
/// immediately; an admitted job parks as a [`Outgoing::Pending`] entry
/// that [`pump_out`] resolves when the dispatcher replies.
fn handle_solve(
    shared: &Arc<Shared>,
    conn: &mut ConnState,
    wire: Wire,
    id: Option<u64>,
    spec: SolveSpec,
    mut trace: TraceContext,
) {
    // Fast path: answer cache hits on the worker. A miss still stamps
    // the `cache` stage — the lookup is part of the request's latency
    // story either way.
    if !spec.no_cache {
        let key = shared.cache.key_for(&spec);
        if let Some(payload) = shared.cache.get(&key) {
            trace.stage("cache");
            trace.set_outcome("cache_hit");
            finish_workload(shared, &trace);
            let envelope =
                protocol::ok_line_traced(id, true, &trace.envelope_json(false), &payload);
            conn.push_ready(wire, &envelope);
            return;
        }
        trace.stage("cache");
    }
    let deadline = spec
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let (conn_no, seq) = (trace.conn(), trace.seq());
    let (tx, rx) = mpsc::channel();
    let job = Job {
        spec,
        deadline,
        enqueued: Instant::now(),
        trace,
        reply: tx,
    };
    match shared.queue.try_push(job) {
        Err((PushError::WouldMiss, mut job)) => {
            // Deadline-aware admission: the queue predicts this job
            // cannot finish in time, so it is shed as a deadline error —
            // not as overload — without occupying a slot.
            SERVE_DEADLINE_EXCEEDED.add(1);
            job.trace.stage("queue");
            job.trace.set_outcome("deadline");
            finish_workload(shared, &job.trace);
            let err = ErrBody::new(
                "deadline_exceeded",
                "deadline cannot be met; shed at admission",
            );
            let envelope = protocol::err_line_traced(id, &job.trace.envelope_json(false), &err);
            conn.push_ready(wire, &envelope);
        }
        Err((PushError::Full, mut job)) => {
            SERVE_OVERLOADED.add(1);
            job.trace.set_outcome("overload");
            finish_workload(shared, &job.trace);
            let err = ErrBody::new("overloaded", "request queue is full; retry later");
            let envelope = protocol::err_line_traced(id, &job.trace.envelope_json(false), &err);
            conn.push_ready(wire, &envelope);
        }
        Err((PushError::Closed, mut job)) => {
            job.trace.set_outcome("overload");
            finish_workload(shared, &job.trace);
            let err = ErrBody::new("shutting_down", "server is draining");
            let envelope = protocol::err_line_traced(id, &job.trace.envelope_json(false), &err);
            conn.push_ready(wire, &envelope);
        }
        Ok(()) => {
            conn.out.push_back(Outgoing::Pending {
                rx,
                id,
                conn: conn_no,
                seq,
                wire,
            });
        }
    }
}

/// Finalizes one workload response: response + typed-cause counters,
/// latency and per-stage histograms, SLO observations, and the flight-
/// recorder entry. Runs on the shard worker for every workload request
/// exactly once.
fn finish_workload(shared: &Shared, trace: &TraceContext) {
    let outcome = trace.outcome();
    if trace.is_err() {
        SERVE_RESPONSES_ERR.add(1);
        match outcome {
            "parse" => SERVE_ERR_PARSE.add(1),
            "overload" => SERVE_ERR_OVERLOAD.add(1),
            "deadline" => SERVE_ERR_DEADLINE.add(1),
            "panic" => SERVE_ERR_PANIC.add(1),
            "internal" => SERVE_ERR_INTERNAL.add(1),
            _ => SERVE_ERR_SOLVER.add(1),
        }
    } else {
        SERVE_RESPONSES_OK.add(1);
    }
    telemetry::histogram_record("serve.latency_us", LATENCY_BOUNDS, trace.total_us());
    for (stage, hist) in [
        ("parse", "serve.stage.parse_us"),
        ("queue", "serve.stage.queue_us"),
        ("batch", "serve.stage.batch_us"),
        ("cache", "serve.stage.cache_us"),
        ("solve", "serve.stage.solve_us"),
    ] {
        if let Some(us) = trace.stage_micros(stage) {
            telemetry::histogram_record(hist, LATENCY_BOUNDS, us);
        }
    }
    let failed = matches!(outcome, "solver" | "panic" | "internal");
    shared
        .monitors
        .shed
        .observe(f64::from(outcome == "overload"));
    let spike = shared.monitors.solver_errors.observe(f64::from(failed));
    shared
        .monitors
        .fallbacks
        .observe(f64::from(outcome == "fallback"));
    if let Some(r) = trace.residual() {
        shared.monitors.residual.observe(r);
    }
    shared.recorder.record(&trace.to_record());
    // Error-rate spike: dump the flight recorder so the burst stays
    // diagnosable even if the process dies before anyone asks `trace`.
    if spike {
        if let Some(path) = &shared.flight_dump {
            let mut out = String::new();
            for rec in shared.recorder.snapshot() {
                out.push_str(&crate::trace::record_json(&rec, false));
                out.push('\n');
            }
            let _ = std::fs::write(path, out);
        }
    }
}
