//! Request-scoped tracing for the serve pipeline.
//!
//! Every workload request carries a [`TraceContext`] from the moment its
//! line is read until its response is written: the connection thread
//! stamps the `parse` and `cache` stages, the dispatcher stamps `queue`,
//! and the engine stamps `batch`/`solve` plus the solve-path outcome
//! (reduced/fallback/full and the certified residual, read off the
//! thermal crate's per-thread probe). The finished context renders into
//! the NDJSON response as a compact `trace` object and into the flight
//! recorder as a fully numeric [`TraceRecord`].
//!
//! Trace ids are **deterministic**: a bit-mix of `(connection, sequence)`
//! with no wall-clock input, so the same request script produces the same
//! ids at any `OFTEC_THREADS` — what lets the determinism suite compare
//! flight-recorder contents bit-for-bit once durations are redacted.

use oftec_telemetry::TraceRecord;
use std::fmt::Write;
use std::time::Instant;

/// Pipeline stages in order; a stage's index is its flight-recorder code.
pub const STAGE_NAMES: [&str; 5] = ["parse", "queue", "batch", "cache", "solve"];

/// Request outcomes; an outcome's index is its flight-recorder code.
/// Indices `>= FIRST_ERROR_OUTCOME` are error causes, matching the
/// strings of [`crate::protocol::error_cause`].
pub const OUTCOME_NAMES: [&str; 11] = [
    "pending",
    "cache_hit",
    "reduced",
    "fallback",
    "full",
    "parse",
    "overload",
    "deadline",
    "solver",
    "panic",
    "internal",
];

/// First index in [`OUTCOME_NAMES`] that represents an error cause.
pub const FIRST_ERROR_OUTCOME: usize = 5;

/// SplitMix64 finalizer: a cheap, high-quality bit mix turning the
/// structured `(connection, sequence)` pair into an opaque-looking but
/// fully reproducible trace id.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-request trace state, carried with the job through the pipeline.
#[derive(Debug, Clone)]
pub struct TraceContext {
    conn: u64,
    seq: u64,
    started: Instant,
    /// Start of the stage currently in progress; [`TraceContext::stage`]
    /// closes it and opens the next.
    mark: Instant,
    stages: Vec<(&'static str, u64)>,
    outcome: &'static str,
    deduped: bool,
    residual: Option<f64>,
}

impl TraceContext {
    /// A fresh context for request `seq` (1-based) on connection `conn`
    /// (1-based); the clock for the first stage starts now.
    pub fn new(conn: u64, seq: u64) -> Self {
        let now = Instant::now();
        Self {
            conn,
            seq,
            started: now,
            mark: now,
            stages: Vec::with_capacity(4),
            outcome: OUTCOME_NAMES[0],
            deduped: false,
            residual: None,
        }
    }

    /// The deterministic 64-bit trace id.
    pub fn id(&self) -> u64 {
        splitmix64((self.conn << 32) ^ self.seq)
    }

    /// The connection number this request arrived on.
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// The request's 1-based sequence number on its connection.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Closes the stage running since the last mark under `name` and
    /// starts timing the next one.
    pub fn stage(&mut self, name: &'static str) {
        let now = Instant::now();
        let us = u64::try_from(now.duration_since(self.mark).as_micros()).unwrap_or(u64::MAX);
        self.stages.push((name, us));
        self.mark = now;
    }

    /// Records a stage with an externally measured duration (used by the
    /// engine to split one wall interval into batch overhead + solve).
    pub fn stage_us(&mut self, name: &'static str, us: u64) {
        self.stages.push((name, us));
    }

    /// Microseconds elapsed between the last mark and `now`.
    pub fn since_mark_us(&self, now: Instant) -> u64 {
        u64::try_from(now.duration_since(self.mark).as_micros()).unwrap_or(u64::MAX)
    }

    /// Sets the final outcome. Must be one of [`OUTCOME_NAMES`]; unknown
    /// names degrade to code 0 (`pending`) in the flight recorder.
    pub fn set_outcome(&mut self, outcome: &'static str) {
        self.outcome = outcome;
    }

    /// The outcome recorded so far (`pending` until set).
    pub fn outcome(&self) -> &'static str {
        self.outcome
    }

    /// `true` once the outcome is an error cause.
    pub fn is_err(&self) -> bool {
        OUTCOME_NAMES
            .iter()
            .position(|&n| n == self.outcome)
            .is_some_and(|i| i >= FIRST_ERROR_OUTCOME)
    }

    /// Marks this request as answered by a batch-deduplicated solve.
    pub fn mark_deduped(&mut self) {
        self.deduped = true;
    }

    /// Records the certified reduced-solve residual ratio, when one was
    /// produced for this request.
    pub fn set_residual(&mut self, residual: f64) {
        self.residual = Some(residual);
    }

    /// The certified residual ratio, if the reduced path produced one.
    pub fn residual(&self) -> Option<f64> {
        self.residual
    }

    /// Duration of the named stage, if stamped.
    pub fn stage_micros(&self, name: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, us)| us)
    }

    /// Total microseconds since the context was created.
    pub fn total_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The compact `trace` object spliced into the response envelope.
    /// With `redact` set, every duration renders as 0 — the form the
    /// determinism tests compare across thread counts.
    pub fn envelope_json(&self, redact: bool) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"id\":\"{:016x}\",\"outcome\":\"{}\",\"deduped\":{}",
            self.id(),
            self.outcome,
            self.deduped
        );
        out.push_str(",\"stages\":{");
        for (i, &(name, us)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}_us\":{}", name, if redact { 0 } else { us });
        }
        out.push('}');
        let _ = write!(
            out,
            ",\"total_us\":{}}}",
            if redact { 0 } else { self.total_us() }
        );
        out
    }

    /// The numeric flight-recorder form (stage/outcome names → codes).
    pub fn to_record(&self) -> TraceRecord {
        let code = OUTCOME_NAMES
            .iter()
            .position(|&n| n == self.outcome)
            .unwrap_or(0) as u16;
        let stages = self
            .stages
            .iter()
            .map(|&(name, us)| {
                let stage_code = STAGE_NAMES.iter().position(|&n| n == name).unwrap_or(0) as u16;
                (stage_code, us)
            })
            .collect();
        TraceRecord {
            seq: 0,
            id: self.id(),
            ok: !self.is_err(),
            code,
            stages,
        }
    }
}

/// Renders a flight-recorder entry as one JSON object (codes → names),
/// the form the `trace` introspection endpoint returns.
pub fn record_json(record: &TraceRecord, redact: bool) -> String {
    let outcome = OUTCOME_NAMES
        .get(usize::from(record.code))
        .copied()
        .unwrap_or("pending");
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"seq\":{},\"id\":\"{:016x}\",\"ok\":{},\"outcome\":\"{}\",\"stages\":{{",
        record.seq, record.id, record.ok, outcome
    );
    for (i, &(code, us)) in record.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = STAGE_NAMES.get(usize::from(code)).copied().unwrap_or("?");
        let _ = write!(out, "\"{}_us\":{}", name, if redact { 0 } else { us });
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = TraceContext::new(1, 1);
        let b = TraceContext::new(1, 1);
        let c = TraceContext::new(1, 2);
        let d = TraceContext::new(2, 1);
        assert_eq!(a.id(), b.id(), "same (conn, seq) -> same id");
        assert_ne!(a.id(), c.id());
        assert_ne!(a.id(), d.id());
        assert_ne!(c.id(), d.id());
    }

    #[test]
    fn outcome_tables_agree_with_error_causes() {
        // Every error-cause string the protocol can produce must be an
        // error outcome, or the recorder would misfile it as OK.
        for kind in [
            "bad_request",
            "unknown_benchmark",
            "line_too_long",
            "bad_frame",
            "frame_too_long",
            "overloaded",
            "shutting_down",
            "deadline_exceeded",
            "thermal",
            "non_finite",
            "panic",
            "internal",
        ] {
            let cause = crate::protocol::error_cause(kind);
            let idx = OUTCOME_NAMES
                .iter()
                .position(|&n| n == cause)
                .unwrap_or_else(|| panic!("cause '{cause}' missing from OUTCOME_NAMES"));
            assert!(idx >= FIRST_ERROR_OUTCOME, "'{cause}' must be an error");
        }
    }

    #[test]
    fn envelope_json_redacts_durations_but_keeps_structure() {
        let mut t = TraceContext::new(3, 9);
        t.stage("parse");
        t.stage_us("solve", 1234);
        t.set_outcome("reduced");
        t.mark_deduped();
        let redacted = t.envelope_json(true);
        assert!(redacted.contains("\"solve_us\":0"));
        assert!(redacted.contains("\"outcome\":\"reduced\""));
        assert!(redacted.contains("\"deduped\":true"));
        assert!(redacted.contains("\"total_us\":0"));
        let live = t.envelope_json(false);
        assert!(live.contains("\"solve_us\":1234"));
        // Both forms parse as JSON objects.
        for s in [&redacted, &live] {
            let v: serde::Value = serde_json::from_str(s).unwrap();
            assert!(v.as_map().is_some());
        }
    }

    #[test]
    fn record_round_trip_preserves_stage_and_outcome_names() {
        let mut t = TraceContext::new(5, 2);
        t.stage_us("queue", 10);
        t.stage_us("solve", 20);
        t.set_outcome("deadline");
        let rec = t.to_record();
        assert!(!rec.ok);
        assert_eq!(rec.id, t.id());
        let json = record_json(&rec, false);
        assert!(json.contains("\"outcome\":\"deadline\""));
        assert!(json.contains("\"queue_us\":10"));
        assert!(json.contains("\"solve_us\":20"));
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(v.as_map().is_some());
    }
}
