//! `oftec-cli` — command-line front end to the OFTEC library.
//!
//! ```text
//! cargo run --release -p oftec-serve --bin oftec-cli -- <command> [args]
//!
//! Commands:
//!   list                       list bundled benchmarks
//!   optimize <benchmark>       run Algorithm 1 (Optimization 2 → 1)
//!   cool <benchmark>           run Optimization 2 to convergence (min 𝒯)
//!   baseline <benchmark>       evaluate the two fan-only baselines
//!   sweep <benchmark> [file]   dump the Figure 6(a)(b) surface as CSV
//!   margin <benchmark> <rpm> <amps>
//!                              spectral runaway margin at one point
//!   serve                      run the cooling-control TCP service
//!
//! Options:
//!   --telemetry-json <path>    force telemetry collection on and write a
//!                              full registry snapshot (counters, gauges,
//!                              histograms, traces, span tree) as JSON
//!   --scale <s>                scale the workload's dynamic power by `s`
//!                              (e.g. 1.3 makes the start point infeasible
//!                              so Algorithm 1 exercises Optimization 2)
//!
//! Serve options (after `serve`):
//!   --addr <host:port>         listen address (default 127.0.0.1:7464)
//!   --threads <n>              executor threads (default: OFTEC_THREADS)
//!   --cache-capacity <n>       result-cache entries (default 1024)
//!   --cache-ttl-ms <ms>        result-cache TTL (default: none)
//!   --cache-shards <n>         result-cache lock shards (default 8,
//!                              rounded up to a power of two)
//!   --conn-workers <n>         shard workers multiplexing connections
//!                              (default 0: auto, up to 4)
//!   --max-inflight <n>         pipelined requests per connection before
//!                              the worker stops reading it (default 64)
//!   --batch-window-ms <ms>     micro-batch window (default 0: dispatch
//!                              immediately, still draining queued jobs)
//!   --batch-max <n>            max jobs per batch (default 32)
//!   --queue-capacity <n>       admission queue bound (default 256)
//!   --coarse                   coarse DAC'14 package (fast solves)
//!   --prewarm <benchmark>      build the benchmark's system and reduced
//!                              model before accepting (repeatable)
//!   --port-file <path>         write the bound port (for port 0)
//!   --telemetry-json <path>    write the final snapshot on shutdown
//!   --fault-kind <k>           inject faults: nan|err|panic (smoke/CI)
//!   --fault-every <n>          every n-th solve draws the fault (0: off)
//!   --flight-dump <path>       dump the flight recorder (JSONL) when the
//!                              solver-error SLO monitor breaches
//! ```
//!
//! `OFTEC_LOG=summary|trace` additionally enables JSONL event logging on
//! stderr (see the telemetry crate).

use oftec::baselines::{fixed_speed_fan, variable_speed_fan};
use oftec::{CoolingSystem, Oftec, OftecOutcome, SweepGrid};
use oftec_power::Benchmark;
use oftec_serve::{ServeConfig, Server};
use oftec_thermal::OperatingPoint;
use oftec_units::{AngularVelocity, Current};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: oftec-cli <list|optimize|cool|baseline|sweep|margin|serve> [benchmark] [args] \
         [--telemetry-json <path>]\n\
         run with `list` to see the bundled benchmarks"
    );
    ExitCode::FAILURE
}

/// Option flags stripped from the argument list before positional parsing.
#[derive(Default)]
struct Options {
    telemetry_path: Option<String>,
    scale: Option<f64>,
}

/// Strips `--telemetry-json <path>` and `--scale <s>` from the argument
/// list before positional parsing.
fn split_flags(args: Vec<String>) -> Result<(Vec<String>, Options), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        match flag.as_str() {
            "--telemetry-json" => {
                opts.telemetry_path = Some(match inline {
                    Some(v) => v,
                    None => it
                        .next()
                        .ok_or("--telemetry-json requires a file path".to_string())?,
                });
            }
            "--scale" => {
                let raw = match inline {
                    Some(v) => v,
                    None => it.next().ok_or("--scale requires a number".to_string())?,
                };
                let s: f64 = raw
                    .parse()
                    .map_err(|_| format!("--scale: `{raw}` is not a number"))?;
                if !(s.is_finite() && s > 0.0) {
                    return Err(format!("--scale must be a positive number, got {raw}"));
                }
                opts.scale = Some(s);
            }
            _ => match inline {
                Some(v) => rest.push(format!("{flag}={v}")),
                None => rest.push(flag),
            },
        }
    }
    Ok((rest, opts))
}

/// Writes the global registry snapshot to `path` as JSON.
fn write_snapshot(path: &str) -> ExitCode {
    oftec_telemetry::flush();
    let json = oftec_telemetry::snapshot().to_json();
    match std::fs::write(path, json) {
        Ok(()) => {
            eprintln!("telemetry snapshot written to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write telemetry snapshot {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the `serve` subcommand's flags into a [`ServeConfig`].
fn parse_serve_config(
    args: &[String],
    telemetry_path: Option<String>,
) -> Result<ServeConfig, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7464".into(),
        telemetry_json: telemetry_path,
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it.next().cloned().ok_or(format!("{name} requires a value")),
            }
        };
        let parse_num = |name: &str, raw: String| -> Result<u64, String> {
            raw.parse()
                .map_err(|_| format!("{name}: `{raw}` is not a non-negative integer"))
        };
        match flag {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = parse_num("--threads", value("--threads")?)? as usize;
            }
            "--cache-capacity" => {
                config.cache.capacity =
                    parse_num("--cache-capacity", value("--cache-capacity")?)? as usize;
            }
            "--cache-ttl-ms" => {
                let ms = parse_num("--cache-ttl-ms", value("--cache-ttl-ms")?)?;
                config.cache.ttl = Some(Duration::from_millis(ms));
            }
            "--cache-shards" => {
                config.cache.shards =
                    (parse_num("--cache-shards", value("--cache-shards")?)? as usize).max(1);
            }
            "--conn-workers" => {
                config.conn_workers =
                    parse_num("--conn-workers", value("--conn-workers")?)? as usize;
            }
            "--max-inflight" => {
                config.max_inflight =
                    (parse_num("--max-inflight", value("--max-inflight")?)? as usize).max(1);
            }
            "--batch-window-ms" => {
                let ms = parse_num("--batch-window-ms", value("--batch-window-ms")?)?;
                config.batch_window = Duration::from_millis(ms);
            }
            "--batch-max" => {
                config.batch_max =
                    (parse_num("--batch-max", value("--batch-max")?)? as usize).max(1);
            }
            "--queue-capacity" => {
                config.queue_capacity =
                    (parse_num("--queue-capacity", value("--queue-capacity")?)? as usize).max(1);
            }
            "--coarse" => config.coarse = true,
            "--prewarm" => {
                let name = value("--prewarm")?;
                let benchmark = Benchmark::from_name(&name)
                    .ok_or(format!("--prewarm: unknown benchmark `{name}`"))?;
                config.prewarm.push(benchmark);
            }
            "--port-file" => config.port_file = Some(value("--port-file")?),
            "--fault-kind" => {
                let kind = match value("--fault-kind")?.as_str() {
                    "nan" => oftec::faults::FaultKind::NonFinite,
                    "err" => oftec::faults::FaultKind::Error,
                    "panic" => oftec::faults::FaultKind::Panic,
                    other => {
                        return Err(format!(
                            "--fault-kind: `{other}` is not one of nan|err|panic"
                        ))
                    }
                };
                let every = config.fault.map_or(1, |p| p.every);
                config.fault = Some(oftec_serve::FaultPlan { kind, every });
            }
            "--fault-every" => {
                let every = parse_num("--fault-every", value("--fault-every")?)? as usize;
                let kind = config
                    .fault
                    .map_or(oftec::faults::FaultKind::Error, |p| p.kind);
                config.fault = Some(oftec_serve::FaultPlan { kind, every });
            }
            "--flight-dump" => config.flight_dump = Some(value("--flight-dump")?),
            other => return Err(format!("serve: unknown flag `{other}`")),
        }
    }
    Ok(config)
}

fn serve(args: &[String], telemetry_path: Option<String>) -> ExitCode {
    let config = match parse_serve_config(args, telemetry_path) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("oftec-serve listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, opts) = match split_flags(raw) {
        Ok(split) => split,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    oftec_telemetry::init_from_env();
    if opts.telemetry_path.is_some() {
        oftec_telemetry::set_collecting(true);
    }
    if args.first().map(String::as_str) == Some("serve") {
        // The server owns its telemetry snapshot (written during graceful
        // drain with authoritative counters); skip the generic one.
        return serve(&args[1..], opts.telemetry_path);
    }
    let code = run(&args, opts.scale);
    match opts.telemetry_path {
        Some(path) => {
            let snap_code = write_snapshot(&path);
            if code == ExitCode::SUCCESS {
                snap_code
            } else {
                code
            }
        }
        None => code,
    }
}

fn run(args: &[String], scale: Option<f64>) -> ExitCode {
    let Some(command) = args.first() else {
        return usage();
    };

    if command == "list" {
        println!("bundled MiBench benchmarks (paper Table 2):");
        for b in Benchmark::ALL {
            let system = CoolingSystem::for_benchmark(b);
            println!(
                "  {:<14} {:>6.1} W max dynamic power{}",
                b.name(),
                system.total_dynamic_power().watts(),
                if b.is_cool() { "  (cool)" } else { "  (hot)" }
            );
        }
        return ExitCode::SUCCESS;
    }

    let Some(bench_name) = args.get(1) else {
        return usage();
    };
    let Some(benchmark) = Benchmark::from_name(bench_name) else {
        eprintln!("unknown benchmark `{bench_name}`; try `oftec-cli list`");
        return ExitCode::FAILURE;
    };
    let system = CoolingSystem::for_benchmark(benchmark);
    let system = match scale {
        Some(s) => system.scaled(s),
        None => system,
    };

    match command.as_str() {
        "optimize" => match Oftec::default().run(&system) {
            Err(e) => {
                eprintln!("{}: solver error — {e}", system.name());
                ExitCode::FAILURE
            }
            Ok(OftecOutcome::Optimized(sol)) => {
                println!(
                    "{}: ω* = {:.0} RPM, I* = {:.2} A",
                    system.name(),
                    sol.operating_point.fan_speed.rpm(),
                    sol.operating_point.tec_current.amperes()
                );
                let b = sol.solution.breakdown();
                println!(
                    "𝒫 = {:.2} W (leakage {:.2} + TEC {:.2} + fan {:.2}), \
                     T_max = {:.2} °C, {} ms",
                    b.objective().watts(),
                    b.leakage.watts(),
                    b.tec.watts(),
                    b.fan.watts(),
                    sol.max_temperature.celsius(),
                    sol.runtime.as_millis()
                );
                ExitCode::SUCCESS
            }
            Ok(OftecOutcome::Infeasible(report)) => {
                println!(
                    "{}: INFEASIBLE — best achievable {:.2} °C",
                    system.name(),
                    report.best_temperature.celsius()
                );
                ExitCode::FAILURE
            }
        },
        "cool" => match Oftec::default()
            .minimize_temperature(&system.reduced_tec_model(), system.t_max())
        {
            Some(sol) => {
                println!(
                    "{}: coolest {:.2} °C at ω = {:.0} RPM, I = {:.2} A \
                         (costs {:.2} W)",
                    system.name(),
                    sol.max_temperature.celsius(),
                    sol.operating_point.fan_speed.rpm(),
                    sol.operating_point.tec_current.amperes(),
                    sol.cooling_power.watts()
                );
                ExitCode::SUCCESS
            }
            None => {
                println!(
                    "{}: every probed point is in thermal runaway",
                    system.name()
                );
                ExitCode::FAILURE
            }
        },
        "baseline" => {
            let var = variable_speed_fan(&system, true);
            let fixed = fixed_speed_fan(&system, oftec::fixed_baseline_speed());
            let show = |name: &str, o: &oftec::baselines::BaselineOutcome| match (
                o.is_feasible(),
                o.max_temperature(),
                o.cooling_power(),
            ) {
                (true, Some(t), Some(p)) => println!(
                    "  {name:<12} ok    T = {:.2} °C, 𝒫 = {:.2} W",
                    t.celsius(),
                    p.watts()
                ),
                (false, Some(t), _) => {
                    println!("  {name:<12} FAIL  best {:.2} °C > T_max", t.celsius())
                }
                _ => println!("  {name:<12} FAIL  thermal runaway"),
            };
            println!("{} without TECs:", system.name());
            show("variable-ω", &var);
            show("fixed 2000", &fixed);
            ExitCode::SUCCESS
        }
        "sweep" => {
            let sweep = SweepGrid::default().run(&system.reduced_tec_model());
            let csv = sweep.to_csv();
            match args.get(2) {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, csv) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("surface written to {path}");
                }
                None => print!("{csv}"),
            }
            ExitCode::SUCCESS
        }
        "margin" => {
            let (Some(rpm), Some(amps)) = (
                args.get(2).and_then(|s| s.parse::<f64>().ok()),
                args.get(3).and_then(|s| s.parse::<f64>().ok()),
            ) else {
                eprintln!("usage: oftec-cli margin <benchmark> <rpm> <amps>");
                return ExitCode::FAILURE;
            };
            let op =
                OperatingPoint::new(AngularVelocity::from_rpm(rpm), Current::from_amperes(amps));
            match system.tec_model().runaway_margin(op) {
                Some(m) => {
                    println!(
                        "{} at ({rpm:.0} RPM, {amps:.2} A): stability margin {m:.5} W/K",
                        system.name()
                    );
                    ExitCode::SUCCESS
                }
                None => {
                    println!(
                        "{} at ({rpm:.0} RPM, {amps:.2} A): thermal runaway (no margin)",
                        system.name()
                    );
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
