//! `oftec-loadgen` — load generator and latency benchmark for
//! `oftec-serve`.
//!
//! ```text
//! cargo run --release -p oftec-serve --bin oftec-loadgen -- \
//!     --addr 127.0.0.1:7464 [options]
//!
//! Options:
//!   --addr <host:port>    server address (required)
//!   --connections <n>     concurrent connections (default 32)
//!   --requests <n>        sustained requests per connection (default 50)
//!   --rps <n>             closed-loop pacing per connection; 0 = as fast
//!                         as replies arrive (default 0)
//!   --open-rps <n>        open-loop arrival rate per connection: requests
//!                         are injected on a fixed schedule regardless of
//!                         replies, and latency is measured from the
//!                         *scheduled* send time (no coordinated
//!                         omission). 0 = closed loop (default 0)
//!   --burst-requests <n>  extra per-connection requests appended after
//!                         the sustained phase at `open-rps × burst-mult`
//!                         (open loop only; default 0)
//!   --burst-mult <f>      burst rate multiplier (default 4.0)
//!   --drivers <n>         driver threads multiplexing the open-loop
//!                         connections (default 4, capped at connections)
//!   --wire <ndjson|binary>
//!                         request encoding (default ndjson); responses
//!                         carry identical envelope bytes either way
//!   --deadline-ms <ms>    attach a per-request deadline budget (0: none)
//!   --key-reuse <f>       fraction of requests drawn from the hot-key set
//!                         (default 0.5 — at least half the traffic should
//!                         hit the quantized cache)
//!   --hot-keys <n>        size of the hot-key set (default 8)
//!   --benchmark <name>    workload (default qsort)
//!   --mix <steady|mixed>  mixed sprinkles malformed and unknown-benchmark
//!                         requests between valid ones (default mixed)
//!   --seed <n>            RNG seed (default 1)
//!   --out <path>          report file (default BENCH_serve.json)
//!   --shutdown            send a shutdown command once done
//! ```
//!
//! The report records throughput, p50/p95/p99/p99.9 latency (overall,
//! cache-hit, and miss paths separately), error counts split into `shed`
//! (deliberate backpressure: overloaded/shutting_down),
//! `deadline_exceeded`, `rejected` (the generator's own injected
//! malformed/unknown requests, correctly refused by the server), and
//! `failed` (everything else — should be zero), a per-kind `error_causes`
//! map, per-phase `sustained`/`burst` blocks (offered vs achieved rate,
//! shed rate, phase latency), a per-stage latency breakdown aggregated
//! from the response `trace` metadata, a mid-run Prometheus `metrics`
//! scrape summary, and the server's own final counters, as
//! `BENCH_serve.json`.

use oftec_power::Benchmark;
use oftec_serve::wire;
use oftec_serve::{SolveKind, SolveSpec};
use serde::Value;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Deterministic xorshift64* RNG — no external crates in the hot loop.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WireFmt {
    Ndjson,
    Binary,
}

impl WireFmt {
    fn name(self) -> &'static str {
        match self {
            WireFmt::Ndjson => "ndjson",
            WireFmt::Binary => "binary",
        }
    }
}

#[derive(Clone)]
struct Config {
    addr: String,
    connections: usize,
    requests: usize,
    rps: f64,
    open_rps: f64,
    burst_requests: usize,
    burst_mult: f64,
    drivers: usize,
    wire: WireFmt,
    deadline_ms: u64,
    key_reuse: f64,
    hot_keys: usize,
    benchmark: String,
    bench: Benchmark,
    mixed: bool,
    seed: u64,
    out: String,
    shutdown: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 32,
            requests: 50,
            rps: 0.0,
            open_rps: 0.0,
            burst_requests: 0,
            burst_mult: 4.0,
            drivers: 4,
            wire: WireFmt::Ndjson,
            deadline_ms: 0,
            key_reuse: 0.5,
            hot_keys: 8,
            benchmark: "qsort".into(),
            bench: Benchmark::Quicksort,
            mixed: true,
            seed: 1,
            out: "BENCH_serve.json".into(),
            shutdown: false,
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config::default();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it.next().cloned().ok_or(format!("{name} requires a value")),
            }
        };
        match flag {
            "--addr" => config.addr = value("--addr")?,
            "--connections" => {
                config.connections = num(&value("--connections")?)?.max(1) as usize;
            }
            "--requests" => config.requests = num(&value("--requests")?)?.max(1) as usize,
            "--rps" => {
                config.rps = value("--rps")?
                    .parse()
                    .map_err(|_| "--rps: not a number".to_string())?;
            }
            "--open-rps" => {
                config.open_rps = value("--open-rps")?
                    .parse()
                    .map_err(|_| "--open-rps: not a number".to_string())?;
                if config.open_rps < 0.0 {
                    return Err("--open-rps must be non-negative".into());
                }
            }
            "--burst-requests" => {
                config.burst_requests = num(&value("--burst-requests")?)? as usize;
            }
            "--burst-mult" => {
                config.burst_mult = value("--burst-mult")?
                    .parse()
                    .map_err(|_| "--burst-mult: not a number".to_string())?;
                if config.burst_mult <= 0.0 || config.burst_mult.is_nan() {
                    return Err("--burst-mult must be positive".into());
                }
            }
            "--drivers" => config.drivers = num(&value("--drivers")?)?.max(1) as usize,
            "--wire" => {
                config.wire = match value("--wire")?.as_str() {
                    "ndjson" => WireFmt::Ndjson,
                    "binary" => WireFmt::Binary,
                    other => return Err(format!("--wire: `{other}` is not ndjson|binary")),
                };
            }
            "--deadline-ms" => config.deadline_ms = num(&value("--deadline-ms")?)?,
            "--key-reuse" => {
                config.key_reuse = value("--key-reuse")?
                    .parse()
                    .map_err(|_| "--key-reuse: not a number".to_string())?;
                if !(0.0..=1.0).contains(&config.key_reuse) {
                    return Err("--key-reuse must be in [0, 1]".into());
                }
            }
            "--hot-keys" => config.hot_keys = num(&value("--hot-keys")?)?.max(1) as usize,
            "--benchmark" => config.benchmark = value("--benchmark")?,
            "--mix" => {
                config.mixed = match value("--mix")?.as_str() {
                    "steady" => false,
                    "mixed" => true,
                    other => return Err(format!("--mix: `{other}` is not steady|mixed")),
                };
            }
            "--seed" => config.seed = num(&value("--seed")?)?,
            "--out" => config.out = value("--out")?,
            "--shutdown" => config.shutdown = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.addr.is_empty() {
        return Err("--addr <host:port> is required".into());
    }
    config.bench = Benchmark::from_name(&config.benchmark)
        .ok_or(format!("--benchmark: unknown `{}`", config.benchmark))?;
    Ok(config)
}

fn num(raw: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|_| format!("`{raw}` is not a non-negative integer"))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Sustained,
    Burst,
}

/// One recorded request outcome.
struct Sample {
    micros: u64,
    ok: bool,
    cached: bool,
    /// The typed error kind for failed requests (`None` when `ok`).
    err_kind: Option<String>,
    /// Per-stage durations parsed from the response `trace` metadata
    /// (sampled in open-loop mode; every response in closed loop).
    stages: Vec<(String, u64)>,
    phase: Phase,
    /// Scheduled injection time, µs since the run started.
    sched_us: u64,
    /// Response completion time, µs since the run started.
    done_us: u64,
}

/// Error-accounting buckets: backpressure the server applied on purpose
/// (`shed`), per-request budgets that ran out (`deadline_exceeded`),
/// requests the server correctly refused as malformed (`rejected` — the
/// mixed traffic mode injects these deliberately), and everything else
/// (`failed` — solver errors, panics, internal faults).
fn classify(err_kind: Option<&str>) -> ErrClass {
    match err_kind {
        None => ErrClass::Ok,
        Some("overloaded" | "shutting_down") => ErrClass::Shed,
        Some("deadline_exceeded") => ErrClass::DeadlineExceeded,
        Some(
            "bad_request" | "unknown_benchmark" | "line_too_long" | "bad_frame" | "frame_too_long",
        ) => ErrClass::Rejected,
        Some(_) => ErrClass::Failed,
    }
}

#[derive(PartialEq, Eq)]
enum ErrClass {
    Ok,
    Shed,
    DeadlineExceeded,
    Rejected,
    Failed,
}

/// What one generated request is, independent of wire encoding.
enum ReqShape {
    /// A valid steady solve at this operating point.
    Point { rpm: f64, amps: f64 },
    /// Deliberately unparseable (NDJSON: broken JSON; binary: corrupt
    /// reserved byte → `bad_frame`).
    Malformed,
    /// Valid framing, unknown workload (`unknown_benchmark`).
    Unknown,
}

/// The hot-key operating points: a deterministic fan of plausible
/// (rpm, amps) settings each worker reuses. One decimal of rpm
/// resolution keeps the NDJSON and binary encodings cache-compatible.
fn shape_for(config: &Config, rng: &mut Rng, i: usize) -> ReqShape {
    if config.mixed && i % 13 == 5 {
        return ReqShape::Malformed;
    }
    if config.mixed && i % 13 == 9 {
        return ReqShape::Unknown;
    }
    if rng.next_f64() < config.key_reuse {
        let k = rng.below(config.hot_keys as u64) as usize;
        ReqShape::Point {
            rpm: 2200.0 + 300.0 * (k % 8) as f64,
            amps: 0.6 + 0.2 * ((k / 2) % 6) as f64,
        }
    } else {
        ReqShape::Point {
            rpm: (10.0 * (1800.0 + 2800.0 * rng.next_f64())).round() / 10.0,
            amps: (100.0 * 3.0 * rng.next_f64()).round() / 100.0,
        }
    }
}

/// Encodes one request for the configured wire, ready to write.
fn encode_request(config: &Config, shape: &ReqShape) -> Vec<u8> {
    match config.wire {
        WireFmt::Ndjson => {
            let mut line = match shape {
                ReqShape::Malformed => "{not json at all".to_string(),
                ReqShape::Unknown => {
                    r#"{"cmd":"steady","benchmark":"no-such-workload"}"#.to_string()
                }
                ReqShape::Point { rpm, amps } => {
                    let b = &config.benchmark;
                    if config.deadline_ms > 0 {
                        format!(
                            r#"{{"cmd":"steady","benchmark":"{b}","rpm":{rpm},"amps":{amps},"deadline_ms":{}}}"#,
                            config.deadline_ms
                        )
                    } else {
                        format!(r#"{{"cmd":"steady","benchmark":"{b}","rpm":{rpm},"amps":{amps}}}"#)
                    }
                }
            };
            line.push('\n');
            line.into_bytes()
        }
        WireFmt::Binary => {
            let spec = |rpm: f64, amps: f64| SolveSpec {
                kind: SolveKind::Steady,
                benchmark: config.bench,
                scale: 1.0,
                rpm,
                amps,
                omega_points: 0,
                current_points: 0,
                no_cache: false,
                deadline_ms: (config.deadline_ms > 0).then_some(config.deadline_ms),
            };
            match shape {
                ReqShape::Point { rpm, amps } => wire::encode_solve_frame(None, &spec(*rpm, *amps)),
                ReqShape::Malformed => {
                    let mut frame = wire::encode_solve_frame(None, &spec(3000.0, 1.0));
                    frame[wire::FRAME_HEADER_LEN + 3] = 0x5A; // reserved byte: bad_frame
                    frame
                }
                ReqShape::Unknown => {
                    let mut frame = wire::encode_solve_frame(None, &spec(3000.0, 1.0));
                    frame[wire::FRAME_HEADER_LEN + 2] = 255; // benchmark index: unknown
                    frame
                }
            }
        }
    }
}

/// Fast-path response classification by substring — full JSON parsing of
/// every response would cost more CPU than the server spends solving.
/// Returns (ok, cached, err_kind).
fn classify_body(body: &str) -> (bool, bool, Option<String>) {
    let ok = body.contains("\"ok\":true");
    let cached = body.contains("\"cached\":true");
    let err_kind = if ok {
        None
    } else {
        body.find("\"kind\":\"").and_then(|at| {
            let rest = &body[at + 8..];
            rest.find('"').map(|end| rest[..end].to_string())
        })
    };
    (ok, cached, err_kind)
}

/// Full-parse path: the per-stage trace durations (validates the body as
/// JSON as a side effect).
fn parse_stages(body: &str) -> Vec<(String, u64)> {
    let Ok(envelope) = serde_json::from_str::<Value>(body.trim()) else {
        return Vec::new();
    };
    envelope
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "trace"))
        .and_then(|(_, v)| v.as_map())
        .and_then(|m| m.iter().find(|(k, _)| k == "stages"))
        .and_then(|(_, v)| v.as_map())
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| {
                    let name = k.strip_suffix("_us")?.to_string();
                    Some((name, v.as_f64()? as u64))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Closed-loop worker: send, wait for the reply, repeat. Full-parses
/// every response (this is the correctness-focused mode CI uses).
fn worker(config: &Config, conn_id: usize, run_start: Instant) -> Result<Vec<Sample>, String> {
    let stream =
        TcpStream::connect(&config.addr).map_err(|e| format!("connect {}: {e}", config.addr))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut rng = Rng::new(
        config
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(conn_id as u64),
    );
    let mut samples = Vec::with_capacity(config.requests);
    let pace = if config.rps > 0.0 {
        Some(Duration::from_secs_f64(1.0 / config.rps))
    } else {
        None
    };
    for i in 0..config.requests {
        let shape = shape_for(config, &mut rng, i);
        let bytes = encode_request(config, &shape);
        let started = Instant::now();
        writer
            .write_all(&bytes)
            .map_err(|e| format!("write: {e}"))?;
        let body = match config.wire {
            WireFmt::Ndjson => {
                let mut response = String::new();
                let n = reader
                    .read_line(&mut response)
                    .map_err(|e| format!("read: {e}"))?;
                if n == 0 {
                    return Err("server closed the connection mid-run".into());
                }
                response
            }
            WireFmt::Binary => read_frame(&mut reader)?,
        };
        let done = Instant::now();
        let micros = u64::try_from(done.duration_since(started).as_micros()).unwrap_or(u64::MAX);
        let (ok, cached, err_kind) = classify_body(&body);
        samples.push(Sample {
            micros,
            ok,
            cached,
            err_kind,
            stages: parse_stages(&body),
            phase: Phase::Sustained,
            sched_us: rel_us(run_start, started),
            done_us: rel_us(run_start, done),
        });
        if let Some(gap) = pace {
            let elapsed = started.elapsed();
            if elapsed < gap {
                std::thread::sleep(gap - elapsed);
            }
        }
    }
    Ok(samples)
}

fn rel_us(base: Instant, t: Instant) -> u64 {
    u64::try_from(t.duration_since(base).as_micros()).unwrap_or(u64::MAX)
}

/// Blocking read of one binary response frame's JSON body.
fn read_frame<R: Read>(reader: &mut R) -> Result<String, String> {
    let mut header = [0u8; wire::FRAME_HEADER_LEN];
    reader
        .read_exact(&mut header)
        .map_err(|e| format!("frame header: {e}"))?;
    if header[0] != wire::FRAME_MAGIC || header[1] != wire::FRAME_VERSION {
        return Err("bad response frame header".into());
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("frame body: {e}"))?;
    String::from_utf8(body).map_err(|_| "frame body is not UTF-8".into())
}

/// One open-loop connection: a nonblocking socket with its own injection
/// schedule, reused buffers, and a FIFO of scheduled send times matched
/// against in-order responses.
struct OpenConn {
    stream: TcpStream,
    rng: Rng,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Scheduled injection offset of every in-flight request, with its
    /// phase, in send order.
    pending: VecDeque<(u64, Phase)>,
    sent: usize,
    recvd: usize,
    /// Per-connection schedule stagger so 32 connections don't inject in
    /// lockstep.
    offset: Duration,
    /// Full-parse sampling: every 16th response also validates JSON and
    /// harvests trace stages.
    parse_tick: u32,
    done: bool,
    error: Option<String>,
}

impl OpenConn {
    fn connect(config: &Config, conn_id: usize) -> Result<Self, String> {
        let stream = TcpStream::connect(&config.addr)
            .map_err(|e| format!("connect {}: {e}", config.addr))?;
        stream.set_nodelay(true).ok();
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;
        let gap = 1.0 / config.open_rps.max(1e-9);
        Ok(Self {
            stream,
            rng: Rng::new(
                config
                    .seed
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(conn_id as u64),
            ),
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            sent: 0,
            recvd: 0,
            offset: Duration::from_secs_f64(gap * conn_id as f64 / config.connections as f64),
            parse_tick: 0,
            done: false,
            error: None,
        })
    }

    /// Scheduled injection time of request `i`, relative to the run
    /// start: the sustained phase at `open-rps`, then the burst tail at
    /// `open-rps × burst-mult`.
    fn due(&self, config: &Config, i: usize) -> Duration {
        let gap = 1.0 / config.open_rps.max(1e-9);
        let d = if i < config.requests {
            gap * i as f64
        } else {
            gap * config.requests as f64 + (gap / config.burst_mult) * (i - config.requests) as f64
        };
        self.offset + Duration::from_secs_f64(d)
    }

    fn fail(&mut self, msg: String) {
        self.error = Some(msg);
        self.done = true;
    }

    /// One sweep: inject every due request, flush, read, resolve
    /// responses. Returns whether anything moved.
    fn step(
        &mut self,
        config: &Config,
        run_start: Instant,
        chunk: &mut [u8],
        samples: &mut Vec<Sample>,
    ) -> bool {
        let total = config.requests + config.burst_requests;
        let mut active = false;
        // Inject: open loop means the schedule, not the replies, drives
        // sends — a slow server accrues queueing delay, not a lighter load.
        let now = Instant::now();
        while self.sent < total {
            let due = self.due(config, self.sent);
            if run_start + due > now {
                break;
            }
            let shape = shape_for(config, &mut self.rng, self.sent);
            self.wbuf.extend_from_slice(&encode_request(config, &shape));
            let phase = if self.sent < config.requests {
                Phase::Sustained
            } else {
                Phase::Burst
            };
            self.pending
                .push_back((u64::try_from(due.as_micros()).unwrap_or(u64::MAX), phase));
            self.sent += 1;
            active = true;
        }
        // Flush.
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.fail("server closed the connection mid-run".into());
                    return true;
                }
                Ok(n) => {
                    self.wpos += n;
                    active = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.fail(format!("write: {e}"));
                    return true;
                }
            }
        }
        if self.wpos >= self.wbuf.len() && !self.wbuf.is_empty() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        // Read — only when a reply can actually be outstanding; an empty
        // pending FIFO with no bytes buffered means a read(2) would just
        // burn a syscall on EWOULDBLOCK.
        if self.recvd < total && !self.pending.is_empty() {
            loop {
                match self.stream.read(chunk) {
                    Ok(0) => {
                        self.fail("server closed the connection mid-run".into());
                        return true;
                    }
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                        active = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.fail(format!("read: {e}"));
                        return true;
                    }
                }
            }
        }
        // Resolve complete responses against the pending FIFO.
        let mut consumed = 0;
        while let Some(body_range) = next_response(&self.rbuf[consumed..], config.wire) {
            let (skip, len) = body_range;
            let body = String::from_utf8_lossy(&self.rbuf[consumed + skip..consumed + skip + len])
                .into_owned();
            consumed += skip + len;
            let Some((sched_us, phase)) = self.pending.pop_front() else {
                self.fail("response without a matching request".into());
                return true;
            };
            let done_us = rel_us(run_start, Instant::now());
            let (ok, cached, err_kind) = classify_body(&body);
            self.parse_tick = self.parse_tick.wrapping_add(1);
            // Full JSON parses are ~10× the cost of the substring
            // classifier and stall the whole driver sweep, so sample the
            // stage breakdown sparsely; thousands of samples remain at
            // bench request counts.
            let stages = if self.parse_tick.is_multiple_of(64) {
                parse_stages(&body)
            } else {
                Vec::new()
            };
            samples.push(Sample {
                micros: done_us.saturating_sub(sched_us),
                ok,
                cached,
                err_kind,
                stages,
                phase,
                sched_us,
                done_us,
            });
            self.recvd += 1;
            active = true;
        }
        if consumed > 0 {
            self.rbuf.drain(..consumed);
        }
        if self.recvd >= total {
            self.done = true;
        }
        active
    }
}

/// Locates the next complete response in `buf`: returns
/// `(header_skip, body_len)` — the body is `buf[skip..skip+len]`.
fn next_response(buf: &[u8], wire_fmt: WireFmt) -> Option<(usize, usize)> {
    match wire_fmt {
        WireFmt::Ndjson => buf.iter().position(|&b| b == b'\n').map(|pos| (0, pos + 1)),
        WireFmt::Binary => {
            if buf.len() < wire::FRAME_HEADER_LEN {
                return None;
            }
            let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
            (buf.len() >= wire::FRAME_HEADER_LEN + len).then_some((wire::FRAME_HEADER_LEN, len))
        }
    }
}

/// Open-loop driver thread: multiplexes a slice of the connections so
/// the generator itself stays lightweight enough to offer 50k+ rps from
/// a handful of threads.
fn drive(config: &Config, conn_ids: &[usize], run_start: Instant) -> (Vec<Sample>, usize) {
    let mut conns = Vec::with_capacity(conn_ids.len());
    let mut failed_conns = 0usize;
    for &id in conn_ids {
        match OpenConn::connect(config, id) {
            Ok(c) => conns.push(c),
            Err(msg) => {
                eprintln!("oftec-loadgen: connection {id}: {msg}");
                failed_conns += 1;
            }
        }
    }
    let gap = 1.0 / config.open_rps.max(1e-9);
    let expected =
        gap * config.requests as f64 + (gap / config.burst_mult) * config.burst_requests as f64;
    let deadline = run_start + Duration::from_secs_f64(expected * 3.0 + 10.0);
    let mut samples = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        let mut active = false;
        let mut all_done = true;
        for c in &mut conns {
            if !c.done {
                active |= c.step(config, run_start, &mut chunk, &mut samples);
                all_done &= c.done;
            }
        }
        if all_done {
            break;
        }
        if Instant::now() > deadline {
            for c in &conns {
                if !c.done {
                    failed_conns += 1;
                    eprintln!(
                        "oftec-loadgen: timed out with {} of {} responses",
                        c.recvd,
                        config.requests + config.burst_requests
                    );
                }
            }
            break;
        }
        if !active {
            std::thread::sleep(Duration::from_micros(50));
        } else {
            // Coalescing nap even while busy: at 50k+ rps a hot pass
            // finds at most a couple of new events per connection, so
            // looping flat-out spends the core on empty nonblocking
            // reads and starves the server when it shares the host. A
            // short nap batches several arrivals per pass; the pacing
            // error it adds is charged to us, not hidden, because
            // latency is measured from the schedule time.
            std::thread::sleep(Duration::from_micros(40));
        }
    }
    for c in &conns {
        if let Some(msg) = &c.error {
            eprintln!("oftec-loadgen: connection failed: {msg}");
            failed_conns += 1;
        }
    }
    (samples, failed_conns)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn latency_block(mut micros: Vec<u64>) -> String {
    micros.sort_unstable();
    format!(
        r#"{{"count":{},"p50_us":{},"p95_us":{},"p99_us":{},"p999_us":{},"max_us":{}}}"#,
        micros.len(),
        percentile(&micros, 0.50),
        percentile(&micros, 0.95),
        percentile(&micros, 0.99),
        percentile(&micros, 0.999),
        micros.last().copied().unwrap_or(0)
    )
}

/// Per-phase accounting: offered vs achieved rate, shed rate, latency.
fn phase_block(samples: &[Sample], phase: Phase, offered_rps: f64) -> String {
    let sel: Vec<&Sample> = samples.iter().filter(|s| s.phase == phase).collect();
    if sel.is_empty() {
        return r#"{"requests":0}"#.to_string();
    }
    let requests = sel.len();
    let ok = sel.iter().filter(|s| s.ok).count();
    let shed = sel
        .iter()
        .filter(|s| classify(s.err_kind.as_deref()) == ErrClass::Shed)
        .count();
    let first = sel.iter().map(|s| s.sched_us).min().unwrap_or(0);
    let last = sel.iter().map(|s| s.done_us).max().unwrap_or(0);
    let wall = (last.saturating_sub(first)) as f64 / 1e6;
    format!(
        r#"{{"requests":{},"ok":{},"shed":{},"shed_rate":{:.4},"offered_rps":{:.1},"achieved_rps":{:.1},"latency":{}}}"#,
        requests,
        ok,
        shed,
        shed as f64 / requests as f64,
        offered_rps,
        requests as f64 / wall.max(1e-9),
        latency_block(sel.iter().map(|s| s.micros).collect())
    )
}

/// Polls the server's Prometheus `metrics` exposition over its own
/// connection while the workers run, proving the introspection plane is
/// usable mid-burst. Returns `(successful scrapes, last serve_requests
/// value seen)`.
fn scrape_live(addr: &str, stop: &AtomicBool) -> (u64, u64) {
    let mut scrapes = 0u64;
    let mut last_requests = 0u64;
    let Ok(stream) = TcpStream::connect(addr) else {
        return (0, 0);
    };
    stream.set_nodelay(true).ok();
    let Ok(mut writer) = stream.try_clone() else {
        return (0, 0);
    };
    let mut reader = BufReader::new(stream);
    while !stop.load(Ordering::Relaxed) {
        if writer
            .write_all(b"{\"cmd\":\"metrics\",\"format\":\"prometheus\"}\n")
            .is_err()
        {
            break;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let text = serde_json::from_str::<Value>(line.trim())
            .ok()
            .and_then(|v| {
                v.as_map()
                    .and_then(|m| m.iter().find(|(k, _)| k == "result"))
                    .and_then(|(_, r)| r.as_str().map(str::to_string))
            });
        if let Some(text) = text {
            scrapes += 1;
            for l in text.lines() {
                if let Some(v) = l.strip_prefix("serve_requests ") {
                    last_requests = v.trim().parse().unwrap_or(last_requests);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    (scrapes, last_requests)
}

/// Fetches the server's `metrics` counters over a fresh connection and
/// renders them as a JSON object string. Optionally sends `shutdown`.
fn fetch_metrics(config: &Config) -> Result<String, String> {
    let stream =
        TcpStream::connect(&config.addr).map_err(|e| format!("connect for metrics: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"cmd\":\"metrics\"}\n")
        .map_err(|e| format!("write metrics: {e}"))?;
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("read metrics: {e}"))?;
    let envelope: Value =
        serde_json::from_str(response.trim()).map_err(|e| format!("metrics response: {e}"))?;
    let counters = envelope
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "result"))
        .and_then(|(_, v)| v.as_map())
        .and_then(|m| m.iter().find(|(k, _)| k == "counters"))
        .map(|(_, v)| v.clone())
        .ok_or("metrics response has no counters")?;
    let json = serde_json::to_string(&counters).map_err(|e| format!("counters: {e}"))?;
    if config.shutdown {
        writer
            .write_all(b"{\"cmd\":\"shutdown\"}\n")
            .map_err(|e| format!("write shutdown: {e}"))?;
        let mut ack = String::new();
        reader
            .read_line(&mut ack)
            .map_err(|e| format!("read shutdown ack: {e}"))?;
    }
    Ok(json)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("oftec-loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let started = Instant::now();
    let scrape_stop = AtomicBool::new(false);
    let mut samples: Vec<Sample> = Vec::new();
    let mut failed_conns = 0usize;
    let live_scrapes: (u64, u64) = if config.open_rps > 0.0 {
        // Open-loop: a few driver threads multiplex all connections.
        let drivers = config.drivers.min(config.connections).max(1);
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); drivers];
        for id in 0..config.connections {
            assignment[id % drivers].push(id);
        }
        let (mut per_driver, scrapes) = std::thread::scope(|scope| {
            let scraper = {
                let (addr, stop) = (&config.addr, &scrape_stop);
                scope.spawn(move || scrape_live(addr, stop))
            };
            let run_start = Instant::now();
            let handles: Vec<_> = assignment
                .iter()
                .map(|ids| {
                    let config = &config;
                    scope.spawn(move || drive(config, ids, run_start))
                })
                .collect();
            let results: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().unwrap_or((Vec::new(), 1)))
                .collect();
            scrape_stop.store(true, Ordering::Relaxed);
            let scrapes = scraper.join().unwrap_or((0, 0));
            (results, scrapes)
        });
        for (mut s, failed) in per_driver.drain(..) {
            samples.append(&mut s);
            failed_conns += failed;
        }
        scrapes
    } else {
        type RunOutput = (Vec<Result<Vec<Sample>, String>>, (u64, u64));
        let (results, scrapes): RunOutput = std::thread::scope(|scope| {
            let scraper = {
                let (addr, stop) = (&config.addr, &scrape_stop);
                scope.spawn(move || scrape_live(addr, stop))
            };
            let run_start = Instant::now();
            let handles: Vec<_> = (0..config.connections)
                .map(|conn_id| {
                    let config = &config;
                    scope.spawn(move || worker(config, conn_id, run_start))
                })
                .collect();
            let results = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("worker panicked".to_string()))
                })
                .collect();
            scrape_stop.store(true, Ordering::Relaxed);
            let scrapes = scraper.join().unwrap_or((0, 0));
            (results, scrapes)
        });
        for r in results {
            match r {
                Ok(mut s) => samples.append(&mut s),
                Err(msg) => {
                    eprintln!("oftec-loadgen: connection failed: {msg}");
                    failed_conns += 1;
                }
            }
        }
        scrapes
    };
    let wall = started.elapsed();

    if samples.is_empty() {
        eprintln!("oftec-loadgen: no samples collected");
        return ExitCode::FAILURE;
    }

    let metrics = match fetch_metrics(&config) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("oftec-loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let total = samples.len();
    let ok: Vec<&Sample> = samples.iter().filter(|s| s.ok).collect();
    let errors = total - ok.len();
    let class_count = |class: ErrClass| {
        samples
            .iter()
            .filter(|s| classify(s.err_kind.as_deref()) == class)
            .count()
    };
    let shed = class_count(ErrClass::Shed);
    let deadline_exceeded = class_count(ErrClass::DeadlineExceeded);
    let rejected = class_count(ErrClass::Rejected);
    let failed = class_count(ErrClass::Failed);
    let mut error_causes: BTreeMap<&str, usize> = BTreeMap::new();
    for s in &samples {
        if let Some(kind) = s.err_kind.as_deref() {
            *error_causes.entry(kind).or_insert(0) += 1;
        }
    }
    let error_causes_json = format!(
        "{{{}}}",
        error_causes
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let stage_block = |name: &str| {
        latency_block(
            samples
                .iter()
                .filter_map(|s| s.stages.iter().find(|(n, _)| n == name).map(|&(_, us)| us))
                .collect(),
        )
    };
    let cached: Vec<u64> = ok.iter().filter(|s| s.cached).map(|s| s.micros).collect();
    let uncached: Vec<u64> = ok.iter().filter(|s| !s.cached).map(|s| s.micros).collect();
    let hit_rate = if ok.is_empty() {
        0.0
    } else {
        cached.len() as f64 / ok.len() as f64
    };
    let throughput = total as f64 / wall.as_secs_f64().max(1e-9);
    let offered_sustained = config.open_rps * config.connections as f64;
    let offered_burst = offered_sustained * config.burst_mult;

    let report = format!(
        "{{\n  \"config\": {{\"addr\":\"{}\",\"connections\":{},\"requests_per_connection\":{},\
         \"rps\":{},\"open_rps\":{},\"burst_requests\":{},\"burst_mult\":{},\"wire\":\"{}\",\
         \"deadline_ms\":{},\"key_reuse\":{},\"hot_keys\":{},\"benchmark\":\"{}\",\"mix\":\"{}\",\
         \"seed\":{}}},\n  \"wall_seconds\": {:.3},\n  \"throughput_rps\": {:.1},\n  \
         \"requests\": {},\n  \"ok\": {},\n  \"errors\": {},\n  \"shed\": {},\n  \
         \"deadline_exceeded\": {},\n  \"rejected\": {},\n  \"failed\": {},\n  \
         \"failed_connections\": {},\n  \"error_causes\": {},\n  \
         \"client_cache_hit_rate\": {:.4},\n  \"sustained\": {},\n  \"burst\": {},\n  \
         \"latency\": {{\n    \"overall\": {},\n    \
         \"cached\": {},\n    \"uncached\": {}\n  }},\n  \"stages\": {{\n    \"parse\": {},\n    \
         \"queue\": {},\n    \"batch\": {},\n    \"cache\": {},\n    \"solve\": {}\n  }},\n  \
         \"live_scrapes\": {{\"scrapes\":{},\"last_serve_requests\":{}}},\n  \"server\": {}\n}}\n",
        config.addr,
        config.connections,
        config.requests,
        config.rps,
        config.open_rps,
        config.burst_requests,
        config.burst_mult,
        config.wire.name(),
        config.deadline_ms,
        config.key_reuse,
        config.hot_keys,
        config.benchmark,
        if config.mixed { "mixed" } else { "steady" },
        config.seed,
        wall.as_secs_f64(),
        throughput,
        total,
        ok.len(),
        errors,
        shed,
        deadline_exceeded,
        rejected,
        failed,
        failed_conns,
        error_causes_json,
        hit_rate,
        phase_block(&samples, Phase::Sustained, offered_sustained),
        phase_block(&samples, Phase::Burst, offered_burst),
        latency_block(samples.iter().map(|s| s.micros).collect()),
        latency_block(cached),
        latency_block(uncached),
        stage_block("parse"),
        stage_block("queue"),
        stage_block("batch"),
        stage_block("cache"),
        stage_block("solve"),
        live_scrapes.0,
        live_scrapes.1,
        metrics
    );
    if let Err(e) = std::fs::write(&config.out, &report) {
        eprintln!("oftec-loadgen: cannot write {}: {e}", config.out);
        return ExitCode::FAILURE;
    }
    println!("{report}");
    eprintln!("report written to {}", config.out);
    ExitCode::SUCCESS
}
