//! `oftec-loadgen` — load generator and latency benchmark for
//! `oftec-serve`.
//!
//! ```text
//! cargo run --release -p oftec-serve --bin oftec-loadgen -- \
//!     --addr 127.0.0.1:7464 [options]
//!
//! Options:
//!   --addr <host:port>    server address (required)
//!   --connections <n>     concurrent connections (default 32)
//!   --requests <n>        requests per connection (default 50)
//!   --rps <n>             open-loop rate per connection; 0 = closed loop
//!                         (default 0: next request right after the reply)
//!   --key-reuse <f>       fraction of requests drawn from the hot-key set
//!                         (default 0.5 — at least half the traffic should
//!                         hit the quantized cache)
//!   --hot-keys <n>        size of the hot-key set (default 8)
//!   --benchmark <name>    workload (default qsort)
//!   --mix <steady|mixed>  mixed sprinkles malformed JSON and unknown
//!                         benchmarks between valid requests (default mixed)
//!   --seed <n>            RNG seed (default 1)
//!   --out <path>          report file (default BENCH_serve.json)
//!   --shutdown            send a shutdown command once done
//! ```
//!
//! The report records throughput, p50/p95/p99 latency (overall, cache-hit,
//! and miss paths separately), error counts split into `shed` (deliberate
//! backpressure: overloaded/shutting_down), `deadline_exceeded`,
//! `rejected` (the generator's own injected malformed/unknown requests,
//! correctly refused by the server), and `failed` (everything else —
//! should be zero), a per-kind `error_causes` map, a per-stage latency
//! breakdown aggregated from the response `trace` metadata, a mid-run
//! Prometheus `metrics` scrape summary, and the server's own final
//! counters, as `BENCH_serve.json`.

use serde::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Deterministic xorshift64* RNG — no external crates in the hot loop.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[derive(Clone)]
struct Config {
    addr: String,
    connections: usize,
    requests: usize,
    rps: f64,
    key_reuse: f64,
    hot_keys: usize,
    benchmark: String,
    mixed: bool,
    seed: u64,
    out: String,
    shutdown: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 32,
            requests: 50,
            rps: 0.0,
            key_reuse: 0.5,
            hot_keys: 8,
            benchmark: "qsort".into(),
            mixed: true,
            seed: 1,
            out: "BENCH_serve.json".into(),
            shutdown: false,
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config::default();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it.next().cloned().ok_or(format!("{name} requires a value")),
            }
        };
        match flag {
            "--addr" => config.addr = value("--addr")?,
            "--connections" => {
                config.connections = num(&value("--connections")?)?.max(1) as usize;
            }
            "--requests" => config.requests = num(&value("--requests")?)?.max(1) as usize,
            "--rps" => {
                config.rps = value("--rps")?
                    .parse()
                    .map_err(|_| "--rps: not a number".to_string())?;
            }
            "--key-reuse" => {
                config.key_reuse = value("--key-reuse")?
                    .parse()
                    .map_err(|_| "--key-reuse: not a number".to_string())?;
                if !(0.0..=1.0).contains(&config.key_reuse) {
                    return Err("--key-reuse must be in [0, 1]".into());
                }
            }
            "--hot-keys" => config.hot_keys = num(&value("--hot-keys")?)?.max(1) as usize,
            "--benchmark" => config.benchmark = value("--benchmark")?,
            "--mix" => {
                config.mixed = match value("--mix")?.as_str() {
                    "steady" => false,
                    "mixed" => true,
                    other => return Err(format!("--mix: `{other}` is not steady|mixed")),
                };
            }
            "--seed" => config.seed = num(&value("--seed")?)?,
            "--out" => config.out = value("--out")?,
            "--shutdown" => config.shutdown = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.addr.is_empty() {
        return Err("--addr <host:port> is required".into());
    }
    Ok(config)
}

fn num(raw: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|_| format!("`{raw}` is not a non-negative integer"))
}

/// One recorded request outcome.
struct Sample {
    micros: u64,
    ok: bool,
    cached: bool,
    /// The typed error kind for failed requests (`None` when `ok`).
    err_kind: Option<String>,
    /// Per-stage durations parsed from the response `trace` metadata.
    stages: Vec<(String, u64)>,
}

/// Error-accounting buckets: backpressure the server applied on purpose
/// (`shed`), per-request budgets that ran out (`deadline_exceeded`),
/// requests the server correctly refused as malformed (`rejected` — the
/// mixed traffic mode injects these deliberately), and everything else
/// (`failed` — solver errors, panics, internal faults).
fn classify(err_kind: Option<&str>) -> ErrClass {
    match err_kind {
        None => ErrClass::Ok,
        Some("overloaded" | "shutting_down") => ErrClass::Shed,
        Some("deadline_exceeded") => ErrClass::DeadlineExceeded,
        Some("bad_request" | "unknown_benchmark" | "line_too_long") => ErrClass::Rejected,
        Some(_) => ErrClass::Failed,
    }
}

#[derive(PartialEq, Eq)]
enum ErrClass {
    Ok,
    Shed,
    DeadlineExceeded,
    Rejected,
    Failed,
}

/// The hot-key operating points: a deterministic fan of plausible
/// (rpm, amps) settings each worker reuses.
fn hot_key(benchmark: &str, k: usize) -> String {
    let rpm = 2200.0 + 300.0 * (k % 8) as f64;
    let amps = 0.6 + 0.2 * ((k / 2) % 6) as f64;
    format!(r#"{{"cmd":"steady","benchmark":"{benchmark}","rpm":{rpm},"amps":{amps}}}"#)
}

fn random_request(benchmark: &str, rng: &mut Rng) -> String {
    let rpm = 1800.0 + 2800.0 * rng.next_f64();
    let amps = 3.0 * rng.next_f64();
    format!(r#"{{"cmd":"steady","benchmark":"{benchmark}","rpm":{rpm:.1},"amps":{amps:.2}}}"#)
}

fn worker(config: &Config, conn_id: usize) -> Result<Vec<Sample>, String> {
    let stream =
        TcpStream::connect(&config.addr).map_err(|e| format!("connect {}: {e}", config.addr))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut rng = Rng::new(
        config
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(conn_id as u64),
    );
    let mut samples = Vec::with_capacity(config.requests);
    let pace = if config.rps > 0.0 {
        Some(Duration::from_secs_f64(1.0 / config.rps))
    } else {
        None
    };
    for i in 0..config.requests {
        let line = if config.mixed && i % 13 == 5 {
            "{not json at all".to_string()
        } else if config.mixed && i % 13 == 9 {
            r#"{"cmd":"steady","benchmark":"no-such-workload"}"#.to_string()
        } else if rng.next_f64() < config.key_reuse {
            hot_key(
                &config.benchmark,
                rng.below(config.hot_keys as u64) as usize,
            )
        } else {
            random_request(&config.benchmark, &mut rng)
        };
        let started = Instant::now();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-run".into());
        }
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let envelope: Value = serde_json::from_str(response.trim())
            .map_err(|e| format!("unparseable response: {e}"))?;
        let field = |name: &str| {
            envelope
                .as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == name))
                .map(|(_, v)| v.clone())
        };
        let ok = field("ok").and_then(|v| v.as_bool()) == Some(true);
        let err_kind = if ok {
            None
        } else {
            field("error")
                .as_ref()
                .and_then(Value::as_map)
                .and_then(|m| m.iter().find(|(k, _)| k == "kind"))
                .and_then(|(_, v)| v.as_str().map(str::to_string))
        };
        let stages = field("trace")
            .as_ref()
            .and_then(Value::as_map)
            .and_then(|m| m.iter().find(|(k, _)| k == "stages"))
            .and_then(|(_, v)| v.as_map())
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| {
                        let name = k.strip_suffix("_us")?.to_string();
                        Some((name, v.as_f64()? as u64))
                    })
                    .collect()
            })
            .unwrap_or_default();
        samples.push(Sample {
            micros,
            ok,
            cached: field("cached").and_then(|v| v.as_bool()) == Some(true),
            err_kind,
            stages,
        });
        if let Some(gap) = pace {
            let elapsed = started.elapsed();
            if elapsed < gap {
                std::thread::sleep(gap - elapsed);
            }
        }
    }
    Ok(samples)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn latency_block(mut micros: Vec<u64>) -> String {
    micros.sort_unstable();
    format!(
        r#"{{"count":{},"p50_us":{},"p95_us":{},"p99_us":{},"max_us":{}}}"#,
        micros.len(),
        percentile(&micros, 0.50),
        percentile(&micros, 0.95),
        percentile(&micros, 0.99),
        micros.last().copied().unwrap_or(0)
    )
}

/// Polls the server's Prometheus `metrics` exposition over its own
/// connection while the workers run, proving the introspection plane is
/// usable mid-burst. Returns `(successful scrapes, last serve_requests
/// value seen)`.
fn scrape_live(addr: &str, stop: &AtomicBool) -> (u64, u64) {
    let mut scrapes = 0u64;
    let mut last_requests = 0u64;
    let Ok(stream) = TcpStream::connect(addr) else {
        return (0, 0);
    };
    stream.set_nodelay(true).ok();
    let Ok(mut writer) = stream.try_clone() else {
        return (0, 0);
    };
    let mut reader = BufReader::new(stream);
    while !stop.load(Ordering::Relaxed) {
        if writer
            .write_all(b"{\"cmd\":\"metrics\",\"format\":\"prometheus\"}\n")
            .is_err()
        {
            break;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let text = serde_json::from_str::<Value>(line.trim())
            .ok()
            .and_then(|v| {
                v.as_map()
                    .and_then(|m| m.iter().find(|(k, _)| k == "result"))
                    .and_then(|(_, r)| r.as_str().map(str::to_string))
            });
        if let Some(text) = text {
            scrapes += 1;
            for l in text.lines() {
                if let Some(v) = l.strip_prefix("serve_requests ") {
                    last_requests = v.trim().parse().unwrap_or(last_requests);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    (scrapes, last_requests)
}

/// Fetches the server's `metrics` counters over a fresh connection and
/// renders them as a JSON object string. Optionally sends `shutdown`.
fn fetch_metrics(config: &Config) -> Result<String, String> {
    let stream =
        TcpStream::connect(&config.addr).map_err(|e| format!("connect for metrics: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"cmd\":\"metrics\"}\n")
        .map_err(|e| format!("write metrics: {e}"))?;
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("read metrics: {e}"))?;
    let envelope: Value =
        serde_json::from_str(response.trim()).map_err(|e| format!("metrics response: {e}"))?;
    let counters = envelope
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "result"))
        .and_then(|(_, v)| v.as_map())
        .and_then(|m| m.iter().find(|(k, _)| k == "counters"))
        .map(|(_, v)| v.clone())
        .ok_or("metrics response has no counters")?;
    let json = serde_json::to_string(&counters).map_err(|e| format!("counters: {e}"))?;
    if config.shutdown {
        writer
            .write_all(b"{\"cmd\":\"shutdown\"}\n")
            .map_err(|e| format!("write shutdown: {e}"))?;
        let mut ack = String::new();
        reader
            .read_line(&mut ack)
            .map_err(|e| format!("read shutdown ack: {e}"))?;
    }
    Ok(json)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("oftec-loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let started = Instant::now();
    let scrape_stop = AtomicBool::new(false);
    type RunOutput = (Vec<Result<Vec<Sample>, String>>, (u64, u64));
    let (results, live_scrapes): RunOutput = std::thread::scope(|scope| {
        let scraper = {
            let (addr, stop) = (&config.addr, &scrape_stop);
            scope.spawn(move || scrape_live(addr, stop))
        };
        let handles: Vec<_> = (0..config.connections)
            .map(|conn_id| {
                let config = &config;
                scope.spawn(move || worker(config, conn_id))
            })
            .collect();
        let results = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("worker panicked".to_string()))
            })
            .collect();
        scrape_stop.store(true, Ordering::Relaxed);
        let scrapes = scraper.join().unwrap_or((0, 0));
        (results, scrapes)
    });
    let wall = started.elapsed();

    let mut samples = Vec::new();
    let mut failed_conns = 0usize;
    for r in results {
        match r {
            Ok(mut s) => samples.append(&mut s),
            Err(msg) => {
                eprintln!("oftec-loadgen: connection failed: {msg}");
                failed_conns += 1;
            }
        }
    }
    if samples.is_empty() {
        eprintln!("oftec-loadgen: no samples collected");
        return ExitCode::FAILURE;
    }

    let metrics = match fetch_metrics(&config) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("oftec-loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let total = samples.len();
    let ok: Vec<&Sample> = samples.iter().filter(|s| s.ok).collect();
    let errors = total - ok.len();
    let class_count = |class: ErrClass| {
        samples
            .iter()
            .filter(|s| classify(s.err_kind.as_deref()) == class)
            .count()
    };
    let shed = class_count(ErrClass::Shed);
    let deadline_exceeded = class_count(ErrClass::DeadlineExceeded);
    let rejected = class_count(ErrClass::Rejected);
    let failed = class_count(ErrClass::Failed);
    let mut error_causes: BTreeMap<&str, usize> = BTreeMap::new();
    for s in &samples {
        if let Some(kind) = s.err_kind.as_deref() {
            *error_causes.entry(kind).or_insert(0) += 1;
        }
    }
    let error_causes_json = format!(
        "{{{}}}",
        error_causes
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let stage_block = |name: &str| {
        latency_block(
            samples
                .iter()
                .filter_map(|s| s.stages.iter().find(|(n, _)| n == name).map(|&(_, us)| us))
                .collect(),
        )
    };
    let cached: Vec<u64> = ok.iter().filter(|s| s.cached).map(|s| s.micros).collect();
    let uncached: Vec<u64> = ok.iter().filter(|s| !s.cached).map(|s| s.micros).collect();
    let hit_rate = if ok.is_empty() {
        0.0
    } else {
        cached.len() as f64 / ok.len() as f64
    };
    let throughput = total as f64 / wall.as_secs_f64().max(1e-9);

    let report = format!(
        "{{\n  \"config\": {{\"addr\":\"{}\",\"connections\":{},\"requests_per_connection\":{},\
         \"rps\":{},\"key_reuse\":{},\"hot_keys\":{},\"benchmark\":\"{}\",\"mix\":\"{}\",\
         \"seed\":{}}},\n  \"wall_seconds\": {:.3},\n  \"throughput_rps\": {:.1},\n  \
         \"requests\": {},\n  \"ok\": {},\n  \"errors\": {},\n  \"shed\": {},\n  \
         \"deadline_exceeded\": {},\n  \"rejected\": {},\n  \"failed\": {},\n  \
         \"failed_connections\": {},\n  \"error_causes\": {},\n  \
         \"client_cache_hit_rate\": {:.4},\n  \"latency\": {{\n    \"overall\": {},\n    \
         \"cached\": {},\n    \"uncached\": {}\n  }},\n  \"stages\": {{\n    \"parse\": {},\n    \
         \"queue\": {},\n    \"batch\": {},\n    \"cache\": {},\n    \"solve\": {}\n  }},\n  \
         \"live_scrapes\": {{\"scrapes\":{},\"last_serve_requests\":{}}},\n  \"server\": {}\n}}\n",
        config.addr,
        config.connections,
        config.requests,
        config.rps,
        config.key_reuse,
        config.hot_keys,
        config.benchmark,
        if config.mixed { "mixed" } else { "steady" },
        config.seed,
        wall.as_secs_f64(),
        throughput,
        total,
        ok.len(),
        errors,
        shed,
        deadline_exceeded,
        rejected,
        failed,
        failed_conns,
        error_causes_json,
        hit_rate,
        latency_block(samples.iter().map(|s| s.micros).collect()),
        latency_block(cached),
        latency_block(uncached),
        stage_block("parse"),
        stage_block("queue"),
        stage_block("batch"),
        stage_block("cache"),
        stage_block("solve"),
        live_scrapes.0,
        live_scrapes.1,
        metrics
    );
    if let Err(e) = std::fs::write(&config.out, &report) {
        eprintln!("oftec-loadgen: cannot write {}: {e}", config.out);
        return ExitCode::FAILURE;
    }
    println!("{report}");
    eprintln!("report written to {}", config.out);
    ExitCode::SUCCESS
}
