//! A small data-parallel executor built on `std::thread::scope` — the
//! workspace's substitute for rayon-style `par_iter`, kept dependency-free
//! per DESIGN.md ("no crossbeam, no rayon").
//!
//! # Design
//!
//! [`par_map_indexed`] maps a function over a slice of items on a pool of
//! scoped threads. Work is handed out through a shared atomic counter
//! (dynamic chunking degenerates to one-item-at-a-time, which is fine:
//! every OFTEC work item is a linear solve or an optimizer run, far
//! heavier than a `fetch_add`). Each worker collects `(index, result)`
//! pairs locally; after the scope joins, results are scattered into the
//! output vector **by index**, so the output order — and therefore every
//! downstream reduction — is identical to the serial order regardless of
//! thread count or scheduling.
//!
//! # Fault tolerance
//!
//! The fallible entry points [`par_try_map_indexed`] /
//! [`par_try_map_range`] catch a panicking work item and convert it into a
//! per-item [`ItemPanic`] error (index and payload message preserved)
//! while the rest of the batch **runs to completion** — the caller decides
//! whether one poisoned operating point sinks the whole sweep. The
//! infallible `par_map_*` wrappers keep the serial-loop contract: they run
//! the same completing batch, then re-raise the first panic by item index.
//!
//! # Telemetry hand-off
//!
//! When [`oftec_telemetry`] is collecting, each work item runs inside
//! [`oftec_telemetry::capture`], and the per-item buffers are
//! [`oftec_telemetry::absorb`]ed on the calling thread **in item-index
//! order** after the scope joins. Counters, histograms, span trees and
//! traces therefore merge in serial execution order, making registry
//! snapshots identical at any `OFTEC_THREADS` setting. When telemetry is
//! off, the capture wrapper is a single relaxed atomic load per item.
//! A panicked item's partial telemetry is discarded on every path, so
//! registry contents stay thread-count-independent under faults too.
//!
//! # Thread count
//!
//! [`thread_count`] defaults to [`std::thread::available_parallelism`] and
//! honors the `OFTEC_THREADS` environment variable (clamped to ≥ 1), so
//! experiments can be pinned to one thread for timing baselines or
//! oversubscribed for scaling studies without recompiling.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A work item that panicked: its index in the batch and the panic
/// payload's message (for `String`/`&str` payloads; a placeholder for
/// exotic `panic_any` payloads, which cannot cross the batch boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the panicking item in the batch.
    pub index: usize,
    /// Panic payload message.
    pub message: String,
}

impl core::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ItemPanic {}

/// Extracts a human-readable message from a caught panic payload.
pub fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// One item's outcome on a worker: the result and its captured telemetry,
/// or the panic message.
type ItemOutcome<R> = Result<(R, oftec_telemetry::LocalBuffer), String>;

/// The worker-pool size used by the `par_*` entry points: the
/// `OFTEC_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn thread_count() -> usize {
    if let Ok(value) = std::env::var("OFTEC_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`thread_count`] scoped threads, returning the
/// results in item order.
///
/// Equivalent to `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()`
/// — including the panic it would raise — but executed concurrently.
///
/// # Panics
///
/// Re-raises the first panicking item's message (by item index) after the
/// whole batch has completed and all workers have joined.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_with(thread_count(), items, f)
}

/// [`par_map_indexed`] with an explicit thread count — the deterministic
/// building block tests use to compare 1-, 2- and 8-thread runs without
/// racing on the process environment.
///
/// `threads` is clamped to `1..=items.len()`; `threads == 1` runs the map
/// on the calling thread with no pool at all.
///
/// # Panics
///
/// Same contract as [`par_map_indexed`].
pub fn par_map_indexed_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let results = par_try_map_indexed_with(threads, items, f);
    let mut out = Vec::with_capacity(results.len());
    let mut first_panic: Option<ItemPanic> = None;
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => first_panic = first_panic.or(Some(p)),
        }
    }
    if let Some(p) = first_panic {
        // Re-raise with the original message as a `String` payload — the
        // closest reproduction of the serial loop's panic the batch
        // boundary allows.
        // oftec-lint: allow(L006, re-raises a contained worker panic to mirror the serial loop's documented contract)
        panic!("{}", p.message);
    }
    out
}

/// Fault-tolerant [`par_map_indexed`]: maps `f` over `items` and returns
/// one `Result` per item, converting a panicking item into an
/// [`ItemPanic`] instead of aborting the batch. Every non-panicking item
/// still completes, at any thread count, and results stay in item order.
pub fn par_try_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_try_map_indexed_with(thread_count(), items, f)
}

/// [`par_try_map_indexed`] with an explicit thread count.
pub fn par_try_map_indexed_with<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);

    let run_item = |i: usize| -> ItemOutcome<R> {
        catch_unwind(AssertUnwindSafe(|| {
            oftec_telemetry::capture(|| f(i, &items[i]))
        }))
        .map_err(payload_message)
    };

    let mut outcomes: Vec<Option<ItemOutcome<R>>> = (0..n).map(|_| None).collect();
    if workers == 1 {
        for (i, slot) in outcomes.iter_mut().enumerate() {
            *slot = Some(run_item(i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let next = &next;
        let run_item = &run_item;
        let collected: Vec<Vec<(usize, ItemOutcome<R>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // A panicking item is recorded and the worker
                            // keeps claiming: the batch always completes.
                            local.push((i, run_item(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    // Only reachable if the scope machinery itself dies;
                    // work-item panics are caught inside `run_item`.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for local in collected {
            for (i, outcome) in local {
                outcomes[i] = Some(outcome);
            }
        }
    }

    // Scatter by index and absorb successful items' telemetry in index
    // order — the serial recording order — so registry merges are
    // scheduling-independent.
    outcomes
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            // Every index is claimed exactly once by the atomic cursor;
            // an unfilled slot would be an executor bug, surfaced as a
            // typed per-item fault instead of an abort.
            let Some(outcome) = slot else {
                return Err(ItemPanic {
                    index,
                    message: "executor bug: work item was never claimed".to_string(),
                });
            };
            match outcome {
                Ok((r, tele)) => {
                    oftec_telemetry::absorb(tele);
                    Ok(r)
                }
                Err(message) => Err(ItemPanic { index, message }),
            }
        })
        .collect()
}

/// Maps `f` over the index range `0..n` in parallel — the slice-free
/// variant for grid-style fan-outs where the index *is* the work item.
///
/// # Panics
///
/// Same contract as [`par_map_indexed`].
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range_with(thread_count(), n, f)
}

/// [`par_map_range`] with an explicit thread count.
///
/// # Panics
///
/// Same contract as [`par_map_indexed_with`].
pub fn par_map_range_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_indexed_with(threads, &indices, |_, &i| f(i))
}

/// Fault-tolerant [`par_map_range`]: per-item [`ItemPanic`] errors instead
/// of an aborting batch.
pub fn par_try_map_range<R, F>(n: usize, f: F) -> Vec<Result<R, ItemPanic>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_try_map_range_with(thread_count(), n, f)
}

/// [`par_try_map_range`] with an explicit thread count.
pub fn par_try_map_range_with<R, F>(threads: usize, n: usize, f: F) -> Vec<Result<R, ItemPanic>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_try_map_indexed_with(threads, &indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Once;

    /// Silences the default panic hook's stderr spew for tests that
    /// intentionally panic inside work items.
    fn quiet_panics() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                // Scope-spawned workers are unnamed; their panics are the
                // expected test fixtures. Named (test-harness) threads keep
                // the default report so real failures stay diagnosable.
                if std::thread::current().name().is_none() {
                    return;
                }
                default(info);
            }));
        });
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map_indexed_with(4, &[] as &[i32], |_, &x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_on_caller() {
        let out = par_map_indexed_with(8, &[21], |i, &x| (i, x * 2));
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn results_arrive_in_index_order_at_any_thread_count() {
        let items: Vec<usize> = (0..137).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let parallel = par_map_indexed_with(threads, &items, |_, &x| x * x + 1);
            assert_eq!(parallel, serial, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn range_variant_matches_slice_variant() {
        let a = par_map_range_with(4, 50, |i| 3 * i + 7);
        let b: Vec<usize> = (0..50).map(|i| 3 * i + 7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        quiet_panics();
        let hit = AtomicBool::new(false);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_range_with(4, 64, |i| {
                if i == 13 {
                    hit.store(true, Ordering::SeqCst);
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(hit.load(Ordering::SeqCst));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 13"), "unexpected payload {msg}");
    }

    #[test]
    fn first_panic_by_index_wins_the_reraise() {
        quiet_panics();
        // Two panicking items: the infallible wrapper must deterministically
        // re-raise the lower index at every thread count.
        for threads in [1, 2, 8] {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                par_map_range_with(threads, 64, |i| {
                    if i == 13 || i == 40 {
                        panic!("boom at {i}");
                    }
                    i
                })
            }));
            let payload = result.unwrap_err();
            let msg = payload.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains("boom at 13"), "at {threads} threads: {msg}");
        }
    }

    #[test]
    fn try_map_completes_batch_around_panics() {
        quiet_panics();
        for threads in [1, 2, 3, 8] {
            let results = par_try_map_range_with(threads, 64, |i| {
                if i % 10 == 3 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            assert_eq!(results.len(), 64);
            for (i, r) in results.iter().enumerate() {
                if i % 10 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i);
                    assert!(p.message.contains(&format!("boom at {i}")), "{p}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "item {i} at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn item_panic_display_and_str_payload() {
        quiet_panics();
        let results = par_try_map_range_with(1, 2, |i| {
            if i == 1 {
                std::panic::panic_any("static str payload");
            }
            i
        });
        let p = results[1].as_ref().unwrap_err();
        assert_eq!(p.message, "static str payload");
        assert!(p.to_string().contains("work item 1 panicked"));
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn telemetry_merges_in_index_order_at_any_thread_count() {
        use oftec_telemetry as telemetry;
        telemetry::set_collecting(true);
        let run = |threads: usize| {
            let (_, buf) = telemetry::capture(|| {
                par_map_range_with(threads, 23, |i| {
                    let _span = telemetry::span("item");
                    telemetry::counter_add("par.items", 1);
                    telemetry::gauge_set("par.last_index", i as f64);
                    i
                })
            });
            let mut snap = telemetry::Snapshot::from_buffer(buf);
            snap.redact_times();
            snap
        };
        let serial = run(1);
        assert_eq!(serial.counter("par.items"), 23);
        // Gauges are last-writer-wins in index order: the serial tail.
        assert_eq!(serial.gauges["par.last_index"], 22.0);
        assert_eq!(serial.spans.len(), 23);
        for threads in [2, 5, 8] {
            assert_eq!(run(threads), serial, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn panicked_items_leave_no_telemetry_at_any_thread_count() {
        use oftec_telemetry as telemetry;
        quiet_panics();
        telemetry::set_collecting(true);
        let run = |threads: usize| {
            let (_, buf) = telemetry::capture(|| {
                par_try_map_range_with(threads, 16, |i| {
                    telemetry::counter_add("try.items", 1);
                    if i % 4 == 2 {
                        panic!("boom");
                    }
                    i
                })
            });
            let mut snap = telemetry::Snapshot::from_buffer(buf);
            snap.redact_times();
            snap
        };
        let serial = run(1);
        // 16 items, 4 panic after counting: their buffers are discarded.
        assert_eq!(serial.counter("try.items"), 12);
        for threads in [2, 8] {
            assert_eq!(run(threads), serial, "mismatch at {threads} threads");
        }
    }
}
