//! A small data-parallel executor built on `std::thread::scope` — the
//! workspace's substitute for rayon-style `par_iter`, kept dependency-free
//! per DESIGN.md ("no crossbeam, no rayon").
//!
//! # Design
//!
//! [`par_map_indexed`] maps a function over a slice of items on a pool of
//! scoped threads. Work is handed out through a shared atomic counter
//! (dynamic chunking degenerates to one-item-at-a-time, which is fine:
//! every OFTEC work item is a linear solve or an optimizer run, far
//! heavier than a `fetch_add`). Each worker collects `(index, result)`
//! pairs locally; after the scope joins, results are scattered into the
//! output vector **by index**, so the output order — and therefore every
//! downstream reduction — is identical to the serial order regardless of
//! thread count or scheduling.
//!
//! A panic on any worker is re-raised on the caller via
//! [`std::panic::resume_unwind`] once all threads have joined, matching
//! the behavior of a serial loop that panics mid-way (no result is
//! returned, nothing is swallowed).
//!
//! # Telemetry hand-off
//!
//! When [`oftec_telemetry`] is collecting, each work item runs inside
//! [`oftec_telemetry::capture`], and the per-item buffers are
//! [`oftec_telemetry::absorb`]ed on the calling thread **in item-index
//! order** after the scope joins. Counters, histograms, span trees and
//! traces therefore merge in serial execution order, making registry
//! snapshots identical at any `OFTEC_THREADS` setting. When telemetry is
//! off, the capture wrapper is a single relaxed atomic load per item.
//!
//! # Thread count
//!
//! [`thread_count`] defaults to [`std::thread::available_parallelism`] and
//! honors the `OFTEC_THREADS` environment variable (clamped to ≥ 1), so
//! experiments can be pinned to one thread for timing baselines or
//! oversubscribed for scaling studies without recompiling.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-worker harvest: indexed results with their captured telemetry, or
/// the payload of a panic caught on that worker.
type WorkerHarvest<R> =
    Result<Vec<(usize, R, oftec_telemetry::LocalBuffer)>, Box<dyn std::any::Any + Send>>;

/// The worker-pool size used by the `par_*` entry points: the
/// `OFTEC_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn thread_count() -> usize {
    if let Ok(value) = std::env::var("OFTEC_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`thread_count`] scoped threads, returning the
/// results in item order.
///
/// Equivalent to `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()`
/// — including the panic it would raise — but executed concurrently.
///
/// # Panics
///
/// Re-raises the payload of the first observed worker panic after all
/// workers have joined.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_with(thread_count(), items, f)
}

/// [`par_map_indexed`] with an explicit thread count — the deterministic
/// building block tests use to compare 1-, 2- and 8-thread runs without
/// racing on the process environment.
///
/// `threads` is clamped to `1..=items.len()`; `threads == 1` runs the map
/// on the calling thread with no pool at all.
///
/// # Panics
///
/// Re-raises the payload of the first observed worker panic after all
/// workers have joined.
pub fn par_map_indexed_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;

    let mut collected: Vec<WorkerHarvest<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Stop claiming work after a panic so the
                        // caller sees it promptly; items already
                        // claimed by other workers still finish.
                        let (r, tele) = catch_unwind(AssertUnwindSafe(|| {
                            oftec_telemetry::capture(|| f(i, &items[i]))
                        }))?;
                        local.push((i, r, tele));
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(Err))
            .collect()
    });

    // Re-raise the first worker panic (by worker index, deterministic).
    if let Some(pos) = collected.iter().position(Result::is_err) {
        if let Err(payload) = collected.swap_remove(pos) {
            resume_unwind(payload);
        }
    }

    // Scatter into index order: bit-identical to the serial map.
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut telemetry: Vec<Option<oftec_telemetry::LocalBuffer>> = (0..n).map(|_| None).collect();
    for local in collected {
        for (i, r, tele) in local.expect("errors handled above") {
            out[i] = Some(r);
            telemetry[i] = Some(tele);
        }
    }
    // Absorb per-item telemetry in index order — the serial recording
    // order — so registry merges are scheduling-independent.
    for tele in telemetry.into_iter().flatten() {
        oftec_telemetry::absorb(tele);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect()
}

/// Maps `f` over the index range `0..n` in parallel — the slice-free
/// variant for grid-style fan-outs where the index *is* the work item.
///
/// # Panics
///
/// Same contract as [`par_map_indexed`].
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range_with(thread_count(), n, f)
}

/// [`par_map_range`] with an explicit thread count.
///
/// # Panics
///
/// Same contract as [`par_map_indexed_with`].
pub fn par_map_range_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_indexed_with(threads, &indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map_indexed_with(4, &[] as &[i32], |_, &x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_on_caller() {
        let out = par_map_indexed_with(8, &[21], |i, &x| (i, x * 2));
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn results_arrive_in_index_order_at_any_thread_count() {
        let items: Vec<usize> = (0..137).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let parallel = par_map_indexed_with(threads, &items, |_, &x| x * x + 1);
            assert_eq!(parallel, serial, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn range_variant_matches_slice_variant() {
        let a = par_map_range_with(4, 50, |i| 3 * i + 7);
        let b: Vec<usize> = (0..50).map(|i| 3 * i + 7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let hit = AtomicBool::new(false);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_range_with(4, 64, |i| {
                if i == 13 {
                    hit.store(true, Ordering::SeqCst);
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(hit.load(Ordering::SeqCst));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 13"), "unexpected payload {msg}");
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn telemetry_merges_in_index_order_at_any_thread_count() {
        use oftec_telemetry as telemetry;
        telemetry::set_collecting(true);
        let run = |threads: usize| {
            let (_, buf) = telemetry::capture(|| {
                par_map_range_with(threads, 23, |i| {
                    let _span = telemetry::span("item");
                    telemetry::counter_add("par.items", 1);
                    telemetry::gauge_set("par.last_index", i as f64);
                    i
                })
            });
            let mut snap = telemetry::Snapshot::from_buffer(buf);
            snap.redact_times();
            snap
        };
        let serial = run(1);
        assert_eq!(serial.counter("par.items"), 23);
        // Gauges are last-writer-wins in index order: the serial tail.
        assert_eq!(serial.gauges["par.last_index"], 22.0);
        assert_eq!(serial.spans.len(), 23);
        for threads in [2, 5, 8] {
            assert_eq!(run(threads), serial, "mismatch at {threads} threads");
        }
    }
}
