//! Intra-procedural dataflow: one abstract walk per function producing a
//! [`FnSummary`] of the facts the semantic rules consume.
//!
//! The walk is a small abstract interpreter over the AST: it tracks local
//! variable types (declared or inferred from `T::new()` constructors),
//! lock guards and their scopes, hash-iteration taint, and condition
//! nesting. It never fails — unknown expressions evaluate to
//! [`Val::Unknown`] and simply carry no facts. Summaries are per-function
//! and depend only on same-file information (imports, same-file struct
//! fields), which is what makes the per-file incremental cache sound; the
//! crate phase composes them into call graphs and lock graphs.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Block, Expr, FnDef, Stmt};
use crate::resolve::{self, FileSymbols};

/// Identity of a lock: `(owner, field)` — owner is the declaring type's
/// head name, or `"local"` / `"static"` for non-field locks.
pub type LockId = (String, String);

/// A call site with the locks held while making it.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// `Type::method`, a bare function name, or a bare method name when
    /// the receiver type is unknown.
    pub callee: String,
    pub line: u32,
    pub locks_held: Vec<LockId>,
}

/// A lock acquisition and what was already held.
#[derive(Debug, Clone)]
pub struct LockAcq {
    pub id: LockId,
    pub line: u32,
    pub col: u32,
    pub held_before: Vec<LockId>,
}

/// Kind of atomic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    Store,
    Load,
    /// Read-modify-write (`fetch_*`, `compare_exchange*`, `swap`) —
    /// excluded from the ordering audit: RMWs are already synchronizing
    /// on the accessed location.
    Rmw,
}

/// One atomic operation on a field.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    /// `Type.field` key shared by all functions touching the field.
    pub field: String,
    pub kind: AtomicKind,
    /// `Relaxed` / `Acquire` / `Release` / `AcqRel` / `SeqCst` / `""`.
    pub ordering: String,
    /// Load feeds a branch condition (directly or via a local).
    pub gating: bool,
    /// Store happens after a non-local write in the same function — the
    /// shape of a publication (data written, then flag stored).
    pub after_write: bool,
    pub line: u32,
    pub col: u32,
}

/// A heap allocation site (L013).
#[derive(Debug, Clone)]
pub struct AllocSite {
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// A numeric narrowing cast (L012).
#[derive(Debug, Clone)]
pub struct CastSite {
    pub ty: String,
    pub line: u32,
    pub col: u32,
}

/// Iteration over an unordered collection, and the sink its values
/// reached, if any (L008).
#[derive(Debug, Clone)]
pub struct HashIterSite {
    pub desc: String,
    pub line: u32,
    pub col: u32,
    pub sink: Option<String>,
}

/// A potentially blocking operation performed while holding a lock
/// (L011).
#[derive(Debug, Clone)]
pub struct BlockSite {
    pub what: String,
    pub line: u32,
    pub col: u32,
    pub held: LockId,
}

/// Everything the crate phase needs to know about one function.
#[derive(Debug, Default)]
pub struct FnSummary {
    /// `Type::name` for associated functions, bare name otherwise.
    pub key: String,
    /// Bare method/function name, for receiver-type-less call matching.
    pub bare: String,
    pub file: String,
    pub line: u32,
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    pub lock_acqs: Vec<LockAcq>,
    pub atomics: Vec<AtomicOp>,
    pub has_acquire_fence: bool,
    pub has_release_fence: bool,
    pub allocs: Vec<AllocSite>,
    pub casts: Vec<CastSite>,
    pub hash_iters: Vec<HashIterSite>,
    pub blocking: Vec<BlockSite>,
    /// Declarations of unordered collections (`let m: HashMap<…>`,
    /// `HashMap::new()`), for the L008 declaration layer.
    pub unordered_decls: Vec<(String, u32)>,
}

/// Abstract value of an expression.
#[derive(Debug, Clone)]
enum Val {
    /// Known (or guessed) type text; empty string when only "some plain
    /// value" is known.
    Plain(String),
    /// A lock guard for `id`, derefing to `inner` type text.
    Guard(LockId, String),
    /// An iterator over an unordered collection.
    HashIter(String),
    /// Data derived from a hash iteration.
    Tainted,
    Unknown,
}

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];
const ITER_ADAPTERS: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "enumerate",
    "cloned",
    "copied",
    "take",
    "skip",
    "chain",
    "zip",
    "rev",
    "by_ref",
    "inspect",
];
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];
const CONTAINER_GROW: &[&str] = &["push", "insert", "extend", "push_str", "append"];
const EMIT_MACROS: &[&str] = &["write", "writeln", "print", "println", "eprint", "eprintln"];
const SINK_METHODS: &[&str] = &["record", "serialize", "write_all", "emit", "observe"];
const BLOCKING_METHODS: &[&str] = &["recv", "recv_timeout", "join", "accept", "connect"];
const NARROW_TARGETS: &[&str] = &["f32", "u32", "u16", "u8", "i32", "i16", "i8"];

struct Walker<'a> {
    syms: &'a FileSymbols,
    self_ty: Option<&'a str>,
    /// Scope stack of local variable types.
    vars: Vec<BTreeMap<String, Val>>,
    /// Held locks: (guard name if let-bound, id, scope depth at binding).
    held: Vec<(Option<String>, LockId, usize)>,
    /// Names carrying hash-iteration taint (sticky for the function).
    tainted: BTreeSet<String>,
    /// Locals assigned from atomic loads → indices into `out.atomics`.
    atomic_locals: BTreeMap<String, Vec<usize>>,
    in_condition: usize,
    saw_nonlocal_write: bool,
    /// A taint sink was reached (description).
    sink: Option<String>,
    out: FnSummary,
}

/// Summarizes one function. `file` is the repo-relative path used in
/// findings.
pub fn summarize(def: &FnDef, syms: &FileSymbols, file: &str) -> FnSummary {
    let key = match &def.self_ty {
        Some(ty) if !ty.is_empty() => format!("{ty}::{}", def.name),
        _ => def.name.clone(),
    };
    let mut w = Walker {
        syms,
        self_ty: def.self_ty.as_deref(),
        vars: vec![BTreeMap::new()],
        held: Vec::new(),
        tainted: BTreeSet::new(),
        atomic_locals: BTreeMap::new(),
        in_condition: 0,
        saw_nonlocal_write: false,
        sink: None,
        out: FnSummary {
            key,
            bare: def.name.clone(),
            file: file.to_string(),
            line: def.line,
            is_test: def.is_test,
            ..FnSummary::default()
        },
    };
    for (name, ty) in &def.params {
        w.vars[0].insert(name.clone(), Val::Plain(ty.clone()));
    }
    if let Some(body) = &def.body {
        let tail = w.walk_block(body);
        if def.ret.is_some() {
            if let Val::Tainted | Val::HashIter(_) = tail {
                w.sink = Some("returned value".to_string());
            }
        }
    }
    if let Some(sink) = w.sink {
        for site in &mut w.out.hash_iters {
            site.sink = Some(sink.clone());
        }
    }
    w.out
}

impl<'a> Walker<'a> {
    fn lookup(&self, name: &str) -> Option<&Val> {
        self.vars.iter().rev().find_map(|scope| scope.get(name))
    }

    fn bind(&mut self, name: &str, val: Val) {
        if let Some(scope) = self.vars.last_mut() {
            scope.insert(name.to_string(), val);
        }
    }

    fn held_ids(&self) -> Vec<LockId> {
        self.held.iter().map(|(_, id, _)| id.clone()).collect()
    }

    /// Walks a block in its own scope; returns the value of its tail
    /// expression.
    fn walk_block(&mut self, block: &Block) -> Val {
        self.vars.push(BTreeMap::new());
        let depth = self.vars.len();
        let mut last = Val::Unknown;
        for stmt in &block.stmts {
            last = self.walk_stmt(stmt, depth);
            // Expression-temporary guards die at the end of the
            // statement.
            self.held.retain(|(name, _, _)| name.is_some());
        }
        self.vars.pop();
        self.held.retain(|(_, _, d)| *d < depth);
        last
    }

    fn walk_stmt(&mut self, stmt: &Stmt, depth: usize) -> Val {
        match stmt {
            Stmt::Let {
                pats,
                ty,
                init,
                line,
            } => {
                let val = match init {
                    Some(e) => self.eval(e),
                    None => Val::Unknown,
                };
                let declared = ty.clone();
                if let Some(t) = &declared {
                    if resolve::type_contains_unordered(t, self.syms) {
                        self.out.unordered_decls.push((t.clone(), *line));
                    }
                }
                // A single binding takes the init value (possibly
                // overridden by an explicit type); destructuring patterns
                // share taint but lose type precision.
                let effective = match (&declared, &val) {
                    (Some(t), Val::Plain(_) | Val::Unknown) if !t.is_empty() => {
                        Val::Plain(t.clone())
                    }
                    _ => val.clone(),
                };
                if let Val::Tainted | Val::HashIter(_) = effective {
                    for p in pats {
                        self.tainted.insert(p.clone());
                    }
                }
                // Track which locals hold atomic-load results so a later
                // `if v1 == v2` marks those loads as gating.
                if pats.len() == 1 {
                    let loads = self.pending_load_indices(init.as_ref());
                    if !loads.is_empty() {
                        self.atomic_locals.insert(pats[0].clone(), loads);
                    }
                }
                match (&effective, pats.len()) {
                    (Val::Guard(id, inner), 1) => {
                        self.held.retain(|(n, _, _)| n.is_some());
                        self.held.push((Some(pats[0].clone()), id.clone(), depth));
                        self.bind(&pats[0], Val::Guard(id.clone(), inner.clone()));
                    }
                    (_, 1) => self.bind(&pats[0], effective.clone()),
                    _ => {
                        for p in pats {
                            self.bind(p, Val::Unknown);
                        }
                    }
                }
                Val::Unknown
            }
            Stmt::Expr(e) => self.eval(e),
            Stmt::Item(_) => Val::Unknown,
        }
    }

    /// Indices of atomic loads performed directly by `init` (best
    /// effort: the init is itself the load call, possibly wrapped).
    fn pending_load_indices(&self, init: Option<&Expr>) -> Vec<usize> {
        fn is_load(e: &Expr) -> bool {
            match e {
                Expr::MethodCall { method, .. } => method == "load",
                Expr::Unary(e) | Expr::Cast { expr: e, .. } => is_load(e),
                _ => false,
            }
        }
        match init {
            Some(e) if is_load(e) => {
                // The load was just recorded as the last atomic op.
                match self.out.atomics.len() {
                    0 => Vec::new(),
                    n => vec![n - 1],
                }
            }
            _ => Vec::new(),
        }
    }

    /// Marks atomic loads feeding `cond` (via locals) as gating.
    fn mark_gating(&mut self, cond: &Expr) {
        let mut names = Vec::new();
        crate::ast::walk_expr(cond, &mut |e| {
            if let Expr::Path { segs, .. } = e {
                if segs.len() == 1 {
                    names.push(segs[0].clone());
                }
            }
        });
        for n in names {
            if let Some(indices) = self.atomic_locals.get(&n) {
                for &i in indices {
                    if let Some(op) = self.out.atomics.get_mut(i) {
                        if op.kind == AtomicKind::Load {
                            op.gating = true;
                        }
                    }
                }
            }
        }
    }

    /// Best-effort type text for an expression (fields through same-file
    /// structs, locals through scope).
    fn type_of(&self, e: &Expr) -> String {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => match self.lookup(&segs[0]) {
                Some(Val::Plain(t)) => t.clone(),
                Some(Val::Guard(_, inner)) => inner.clone(),
                _ => self.syms.statics.get(&segs[0]).cloned().unwrap_or_default(),
            },
            Expr::FieldAccess { base, name, .. } => {
                let base_ty = match &**base {
                    Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self" => {
                        self.self_ty.unwrap_or("").to_string()
                    }
                    other => resolve::head_name(&self.type_of(other), self.syms),
                };
                self.syms
                    .field_type(&base_ty, name)
                    .unwrap_or("")
                    .to_string()
            }
            Expr::Index { base, .. } => {
                // Element of a Vec/array/slice: first generic arg, or the
                // bracket-stripped text.
                let ty = self.type_of(base);
                resolve::generic_args(&ty)
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| ty.trim_start_matches("[]").to_string())
            }
            Expr::Unary(inner) => self.type_of(inner),
            Expr::MethodCall { recv, method, .. } => {
                // `.lock().unwrap()` chains: pass the guard's inner type
                // through unwrap/expect.
                if matches!(method.as_str(), "unwrap" | "expect") {
                    self.type_of(recv)
                } else {
                    String::new()
                }
            }
            _ => String::new(),
        }
    }

    /// Lock identity of a lock-holding expression.
    fn lock_id_of(&self, e: &Expr) -> LockId {
        match e {
            Expr::FieldAccess { base, name, .. } => {
                let owner = match &**base {
                    Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self" => {
                        self.self_ty.unwrap_or("Self").to_string()
                    }
                    other => {
                        let t = resolve::head_name(&self.type_of(other), self.syms);
                        if t.is_empty() {
                            expr_text(other)
                        } else {
                            t
                        }
                    }
                };
                (owner, name.clone())
            }
            Expr::Index { base, .. } => self.lock_id_of(base),
            Expr::Path { segs, .. } if segs.len() == 1 => {
                if self.syms.statics.contains_key(&segs[0]) {
                    ("static".to_string(), segs[0].clone())
                } else {
                    ("local".to_string(), segs[0].clone())
                }
            }
            Expr::Path { segs, .. } => ("static".to_string(), segs.join("::")),
            Expr::Unary(inner) => self.lock_id_of(inner),
            other => ("expr".to_string(), expr_text(other)),
        }
    }

    /// Field key `Type.field` for an atomic receiver.
    fn atomic_field_key(&self, e: &Expr) -> String {
        let (owner, field) = self.lock_id_of(e);
        format!("{owner}.{field}")
    }

    fn is_tainted(&self, e: &Expr) -> bool {
        let mut hit = false;
        crate::ast::walk_expr(e, &mut |x| {
            if let Expr::Path { segs, .. } = x {
                if segs.len() == 1 && self.tainted.contains(&segs[0]) {
                    hit = true;
                }
            }
        });
        hit
    }

    fn eval(&mut self, e: &Expr) -> Val {
        match e {
            Expr::Path { segs, line, col } if segs.len() == 1 => {
                if self.tainted.contains(&segs[0]) {
                    return Val::Tainted;
                }
                let _ = (line, col);
                self.lookup(&segs[0]).cloned().unwrap_or(Val::Unknown)
            }
            Expr::Path { .. } | Expr::Lit | Expr::Opaque => Val::Unknown,
            Expr::FieldAccess { base, .. } => {
                self.eval_quiet(base);
                if self.is_tainted(e) {
                    Val::Tainted
                } else {
                    Val::Plain(self.type_of(e))
                }
            }
            Expr::Index { base, index } => {
                let b = self.eval(base);
                self.eval(index);
                match b {
                    Val::Tainted => Val::Tainted,
                    _ => Val::Plain(self.type_of(e)),
                }
            }
            Expr::Unary(inner) => self.eval(inner),
            Expr::Cast {
                expr,
                ty,
                line,
                col,
            } => {
                let v = self.eval(expr);
                let head = resolve::head_path(ty).join("::");
                if NARROW_TARGETS.contains(&head.as_str()) && !matches!(**expr, Expr::Lit) {
                    self.out.casts.push(CastSite {
                        ty: head,
                        line: *line,
                        col: *col,
                    });
                }
                match v {
                    Val::Tainted => Val::Tainted,
                    _ => Val::Plain(ty.clone()),
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                if matches!(a, Val::Tainted) || matches!(b, Val::Tainted) {
                    Val::Tainted
                } else {
                    Val::Plain(String::new())
                }
            }
            Expr::Assign { place, value, .. } => {
                let v = self.eval(value);
                match &**place {
                    Expr::Path { segs, .. } if segs.len() == 1 => {
                        if matches!(v, Val::Tainted | Val::HashIter(_)) {
                            self.tainted.insert(segs[0].clone());
                        }
                    }
                    Expr::FieldAccess { .. } | Expr::Index { .. } => {
                        self.saw_nonlocal_write = true;
                        self.eval_quiet(place);
                    }
                    Expr::Unary(inner) => {
                        // `*guard = v` / `*ptr = v`.
                        if matches!(**inner, Expr::Path { .. } | Expr::FieldAccess { .. }) {
                            self.saw_nonlocal_write = true;
                        }
                        self.eval_quiet(place);
                    }
                    _ => {
                        self.eval_quiet(place);
                    }
                }
                Val::Unknown
            }
            Expr::For {
                pats,
                iter,
                body,
                line,
                col,
            } => {
                let it = self.eval(iter);
                if let Val::HashIter(desc) | Val::Plain(desc) = &it {
                    let is_hash_iter = matches!(it, Val::HashIter(_))
                        || resolve::type_contains_unordered(desc, self.syms);
                    if is_hash_iter {
                        let desc = match &it {
                            Val::HashIter(d) => d.clone(),
                            _ => expr_text(iter),
                        };
                        self.out.hash_iters.push(HashIterSite {
                            desc,
                            line: *line,
                            col: *col,
                            sink: None,
                        });
                        for p in pats {
                            self.tainted.insert(p.clone());
                        }
                    }
                }
                self.walk_block(body);
                Val::Unknown
            }
            Expr::If { cond, then, els } => {
                self.in_condition += 1;
                self.mark_gating(cond);
                self.eval(cond);
                self.in_condition -= 1;
                self.walk_block(then);
                if let Some(e) = els {
                    self.eval(e);
                }
                Val::Unknown
            }
            Expr::While { cond, body } => {
                self.in_condition += 1;
                self.mark_gating(cond);
                self.eval(cond);
                self.in_condition -= 1;
                self.walk_block(body);
                Val::Unknown
            }
            Expr::Loop { body } => {
                self.walk_block(body);
                Val::Unknown
            }
            Expr::Match { scrutinee, arms } => {
                self.in_condition += 1;
                self.mark_gating(scrutinee);
                let s = self.eval(scrutinee);
                self.in_condition -= 1;
                let taint_arms = matches!(s, Val::Tainted | Val::HashIter(_));
                let mut any_tainted = false;
                for (pats, body) in arms {
                    if taint_arms {
                        for p in pats {
                            self.tainted.insert(p.clone());
                        }
                    }
                    if matches!(self.eval(body), Val::Tainted) {
                        any_tainted = true;
                    }
                }
                if any_tainted || taint_arms {
                    Val::Tainted
                } else {
                    Val::Unknown
                }
            }
            Expr::Return { value, .. } => {
                if let Some(v) = value {
                    if matches!(self.eval(v), Val::Tainted | Val::HashIter(_)) {
                        self.sink = Some("returned value".to_string());
                    }
                }
                Val::Unknown
            }
            Expr::BlockExpr(b) => self.walk_block(b),
            Expr::Closure { pats, body } => {
                // Closure parameters of iterator adapters are tainted by
                // the caller (see ITER_ADAPTERS); plain closures just
                // propagate.
                let _ = pats;
                self.eval(body)
            }
            Expr::MacroCall {
                name,
                args,
                line,
                col,
            } => {
                let mut tainted = false;
                for a in args {
                    if matches!(self.eval(a), Val::Tainted) || self.is_tainted(a) {
                        tainted = true;
                    }
                }
                if EMIT_MACROS.contains(&name.as_str()) && tainted {
                    self.sink = Some(format!("{name}! output"));
                }
                match name.as_str() {
                    "format" | "vec" => {
                        self.out.allocs.push(AllocSite {
                            what: format!("{name}!"),
                            line: *line,
                            col: *col,
                        });
                        if tainted {
                            Val::Tainted
                        } else {
                            Val::Plain(String::new())
                        }
                    }
                    _ if tainted => Val::Tainted,
                    _ => Val::Unknown,
                }
            }
            Expr::StructLit { fields, .. } => {
                let mut tainted = false;
                for (_, e) in fields {
                    if matches!(self.eval(e), Val::Tainted) {
                        tainted = true;
                    }
                }
                if tainted {
                    Val::Tainted
                } else {
                    Val::Plain(String::new())
                }
            }
            Expr::Tuple(items) => {
                let mut tainted = false;
                for e in items {
                    if matches!(self.eval(e), Val::Tainted) {
                        tainted = true;
                    }
                }
                if tainted {
                    Val::Tainted
                } else {
                    Val::Plain(String::new())
                }
            }
            Expr::Call {
                callee,
                args,
                line,
                col,
            } => self.eval_call(callee, args, *line, *col),
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
                col,
            } => self.eval_method(recv, method, args, *line, *col),
        }
    }

    /// Evaluates for effects only (no taint interest in the result).
    fn eval_quiet(&mut self, e: &Expr) {
        let _ = self.eval(e);
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32, col: u32) -> Val {
        let segs: Vec<String> = match callee {
            Expr::Path { segs, .. } => segs.clone(),
            _ => Vec::new(),
        };
        let mut any_tainted = false;
        for a in args {
            if matches!(self.eval(a), Val::Tainted) {
                any_tainted = true;
            }
        }
        let leaf = segs.last().map(String::as_str).unwrap_or("");
        // drop(guard) releases the lock.
        if leaf == "drop" && segs.len() <= 2 {
            if let Some(Expr::Path { segs: g, .. }) = args.first() {
                if g.len() == 1 {
                    self.held
                        .retain(|(n, _, _)| n.as_deref() != Some(g[0].as_str()));
                }
            }
            return Val::Unknown;
        }
        if leaf == "fence" {
            let ord = args.iter().find_map(ordering_of).unwrap_or_default();
            match ord.as_str() {
                "Acquire" | "AcqRel" | "SeqCst" => self.out.has_acquire_fence = true,
                _ => {}
            }
            match ord.as_str() {
                "Release" | "AcqRel" | "SeqCst" => self.out.has_release_fence = true,
                _ => {}
            }
            return Val::Unknown;
        }
        if leaf == "sleep" {
            if let Some((_, id, _)) = self.held.last() {
                self.out.blocking.push(BlockSite {
                    what: "thread::sleep".to_string(),
                    line,
                    col,
                    held: id.clone(),
                });
            }
        }
        // Constructor inference, allocation tracking, and unordered
        // collection construction.
        if segs.len() >= 2 {
            let ty = segs[segs.len() - 2].clone();
            let ctor = leaf.to_string();
            let canonical = self.syms.canonical_leaf(&ty).to_string();
            if matches!(ctor.as_str(), "new" | "with_capacity" | "from" | "default") {
                if matches!(canonical.as_str(), "Vec" | "Box" | "String" | "VecDeque")
                    && ctor != "default"
                {
                    self.out.allocs.push(AllocSite {
                        what: format!("{ty}::{ctor}"),
                        line,
                        col,
                    });
                }
                if matches!(canonical.as_str(), "HashMap" | "HashSet") {
                    self.out
                        .unordered_decls
                        .push((format!("{ty}::{ctor}()"), line));
                }
                self.record_call(&segs, line);
                return if any_tainted {
                    Val::Tainted
                } else {
                    Val::Plain(canonical)
                };
            }
        }
        self.record_call(&segs, line);
        if any_tainted {
            Val::Tainted
        } else {
            Val::Unknown
        }
    }

    fn record_call(&mut self, segs: &[String], line: u32) {
        if segs.is_empty() {
            return;
        }
        let callee = if segs.len() >= 2 {
            format!("{}::{}", segs[segs.len() - 2], segs[segs.len() - 1])
        } else {
            segs[0].clone()
        };
        self.out.calls.push(CallSite {
            callee,
            line,
            locks_held: self.held_ids(),
        });
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        method: &str,
        args: &[Expr],
        line: u32,
        col: u32,
    ) -> Val {
        let recv_val = self.eval(recv);
        let mut any_tainted = matches!(recv_val, Val::Tainted);
        for a in args {
            if matches!(self.eval(a), Val::Tainted) {
                any_tainted = true;
            }
        }
        let recv_ty = self.type_of(recv);
        // `self.foo()` resolves against the impl type for the call graph.
        let recv_head = match recv {
            Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self" => {
                self.self_ty.unwrap_or("").to_string()
            }
            _ => resolve::head_name(&recv_ty, self.syms),
        };

        // --- Lock acquisition ---------------------------------------
        let is_lock_acq = match method {
            "lock" => !expr_text(recv).contains("stdout") && !expr_text(recv).contains("stderr"),
            "read" | "write" => recv_head == "RwLock" || recv_ty.contains("RwLock"),
            _ => false,
        };
        if is_lock_acq {
            let id = self.lock_id_of(recv);
            let held_before = self.held_ids();
            // Inner type: first generic argument of the lock type.
            let inner = resolve::generic_args(&recv_ty)
                .into_iter()
                .next()
                .unwrap_or_default();
            if let Some((_, first, _)) = self.held.first() {
                if *first != id {
                    self.out.blocking.push(BlockSite {
                        what: format!("acquiring {}.{} while locked", id.0, id.1),
                        line,
                        col,
                        held: first.clone(),
                    });
                }
            }
            self.out.lock_acqs.push(LockAcq {
                id: id.clone(),
                line,
                col,
                held_before,
            });
            // Held as an expression temporary until let-bound or the
            // statement ends.
            self.held.push((None, id.clone(), self.vars.len()));
            return Val::Guard(id, inner);
        }

        // --- Guard passthrough --------------------------------------
        if matches!(
            method,
            "unwrap" | "expect" | "unwrap_or_else" | "ok" | "map_err"
        ) {
            if let Val::Guard(id, inner) = &recv_val {
                return Val::Guard(id.clone(), inner.clone());
            }
        }

        // --- Atomics ------------------------------------------------
        let is_atomic_recv = recv_head.starts_with("Atomic") || recv_ty.contains("Atomic");
        if is_atomic_recv
            || ORDERINGS
                .iter()
                .any(|o| args.iter().any(|a| ordering_is(a, o)))
        {
            let kind = if method == "store" {
                Some(AtomicKind::Store)
            } else if method == "load" {
                Some(AtomicKind::Load)
            } else if RMW_METHODS.contains(&method) {
                Some(AtomicKind::Rmw)
            } else {
                None
            };
            if let Some(kind) = kind {
                let ordering = args.iter().find_map(ordering_of).unwrap_or_default();
                let after_write = self.saw_nonlocal_write;
                self.out.atomics.push(AtomicOp {
                    field: self.atomic_field_key(recv),
                    kind,
                    ordering,
                    gating: kind == AtomicKind::Load && self.in_condition > 0,
                    after_write,
                    line,
                    col,
                });
                if matches!(kind, AtomicKind::Store | AtomicKind::Rmw) {
                    self.saw_nonlocal_write = true;
                }
                return Val::Plain(String::new());
            }
        }

        // --- Blocking while locked ----------------------------------
        if BLOCKING_METHODS.contains(&method) {
            if let Some((_, id, _)) = self.held.last() {
                self.out.blocking.push(BlockSite {
                    what: format!(".{method}()"),
                    line,
                    col,
                    held: id.clone(),
                });
            }
        }

        // --- Hash iteration and taint -------------------------------
        let recv_unordered = resolve::type_contains_unordered(&recv_ty, self.syms)
            || matches!(&recv_val, Val::Guard(_, inner) if resolve::type_contains_unordered(inner, self.syms));
        if ITER_METHODS.contains(&method) && recv_unordered {
            return Val::HashIter(format!("{}.{method}()", expr_text(recv)));
        }
        if let Val::HashIter(desc) = &recv_val {
            if ITER_ADAPTERS.contains(&method) {
                // Closure parameters see tainted elements.
                for a in args {
                    if let Expr::Closure { pats, .. } = a {
                        for p in pats {
                            self.tainted.insert(p.clone());
                        }
                    }
                }
                for a in args {
                    self.eval_quiet(a);
                }
                return Val::HashIter(desc.clone());
            }
            if method.starts_with("collect") {
                // `.collect::<BTreeMap…>()` and friends restore order.
                if method.contains("BTree") || method.contains("BinaryHeap") {
                    return Val::Plain(String::new());
                }
                return Val::Tainted;
            }
            if matches!(
                method,
                "count" | "len" | "sum" | "fold" | "all" | "any" | "position"
            ) {
                // Order-insensitive reductions: `count`/`len`/`sum` over
                // a hash iterator are deterministic.
                return match method {
                    "count" | "len" | "sum" | "all" | "any" => Val::Plain(String::new()),
                    _ => Val::Tainted,
                };
            }
            if matches!(method, "for_each") {
                for a in args {
                    if let Expr::Closure { pats, .. } = a {
                        for p in pats {
                            self.tainted.insert(p.clone());
                        }
                    }
                }
                for a in args {
                    self.eval_quiet(a);
                }
                return Val::Unknown;
            }
            return Val::Tainted;
        }

        // An unmaterialized hash iteration feeding a for-loop is handled
        // in `Expr::For`; a bare `collect()` straight off the map counts
        // as taint here via recv_unordered adapters above.

        // --- Sort sanitization --------------------------------------
        if SORT_METHODS.contains(&method) {
            if let Expr::Path { segs, .. } = recv {
                if segs.len() == 1 {
                    self.tainted.remove(&segs[0]);
                }
            }
        }

        // --- Container growth taints the container ------------------
        if CONTAINER_GROW.contains(&method) && any_tainted {
            if let Expr::Path { segs, .. } = recv {
                if segs.len() == 1 {
                    self.tainted.insert(segs[0].clone());
                }
            }
            if matches!(recv, Expr::FieldAccess { .. } | Expr::Index { .. }) {
                self.saw_nonlocal_write = true;
            }
        } else if CONTAINER_GROW.contains(&method)
            && matches!(recv, Expr::FieldAccess { .. } | Expr::Index { .. })
        {
            self.saw_nonlocal_write = true;
        }

        // --- Taint sinks --------------------------------------------
        if SINK_METHODS.contains(&method) && any_tainted {
            self.sink = Some(format!(".{method}() call"));
        }

        // --- Allocation methods -------------------------------------
        if matches!(
            method,
            "to_string" | "to_owned" | "to_vec" | "clone" | "into_bytes"
        ) {
            self.out.allocs.push(AllocSite {
                what: format!(".{method}()"),
                line,
                col,
            });
        }

        // --- Record the call for the call graph ---------------------
        let callee = if recv_head.is_empty() {
            method.to_string()
        } else {
            format!("{recv_head}::{method}")
        };
        self.out.calls.push(CallSite {
            callee,
            line,
            locks_held: self.held_ids(),
        });

        if any_tainted {
            Val::Tainted
        } else {
            Val::Plain(String::new())
        }
    }
}

/// `Ordering::X` argument → `X`.
fn ordering_of(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => {
            let last = segs.last()?;
            ORDERINGS.contains(&last.as_str()).then(|| last.clone())
        }
        _ => None,
    }
}

fn ordering_is(e: &Expr, name: &str) -> bool {
    ordering_of(e).is_some_and(|o| o == name)
}

/// Short printable form of an expression, for messages and lock ids.
pub fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Path { segs, .. } => segs.join("::"),
        Expr::FieldAccess { base, name, .. } => format!("{}.{name}", expr_text(base)),
        Expr::MethodCall { recv, method, .. } => format!("{}.{method}()", expr_text(recv)),
        Expr::Index { base, .. } => format!("{}[..]", expr_text(base)),
        Expr::Call { callee, .. } => format!("{}()", expr_text(callee)),
        Expr::Unary(inner) => expr_text(inner),
        Expr::Cast { expr, ty, .. } => format!("{} as {ty}", expr_text(expr)),
        Expr::Lit => "<lit>".to_string(),
        _ => "<expr>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};
    use crate::parser::parse_file;
    use crate::resolve;

    fn summaries(src: &str) -> Vec<FnSummary> {
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let file = parse_file(&toks);
        let syms = resolve::collect(&file);
        let mut out = Vec::new();
        crate::ast::for_each_fn(&file.items, &mut |def| {
            out.push(summarize(def, &syms, "test.rs"));
        });
        out
    }

    #[test]
    fn hash_iteration_to_return_is_a_sinked_site() {
        let s = summaries(
            "use std::collections::HashMap;\n\
             fn dump(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for (k, v) in m.iter() { out.push(*v + *k); }\n\
                 out\n\
             }\n",
        );
        assert_eq!(s[0].hash_iters.len(), 1);
        assert!(s[0].hash_iters[0].sink.is_some(), "return sink expected");
    }

    #[test]
    fn sorting_before_return_clears_the_sink() {
        let s = summaries(
            "use std::collections::HashMap;\n\
             fn dump(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for (_k, v) in m.iter() { out.push(*v); }\n\
                 out.sort();\n\
                 out\n\
             }\n",
        );
        assert_eq!(s[0].hash_iters.len(), 1);
        assert!(s[0].hash_iters[0].sink.is_none(), "sorted output is fine");
    }

    #[test]
    fn lock_guard_scopes_and_nested_acquisition() {
        let s = summaries(
            "use std::sync::Mutex;\n\
             struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn nested(&self) {\n\
                     let ga = self.a.lock().unwrap();\n\
                     let gb = self.b.lock().unwrap();\n\
                     drop(gb);\n\
                 }\n\
                 fn sequential(&self) {\n\
                     { let ga = self.a.lock().unwrap(); let _ = ga; }\n\
                     let gb = self.b.lock().unwrap();\n\
                     let _ = gb;\n\
                 }\n\
             }\n",
        );
        let nested = &s[0];
        assert_eq!(nested.lock_acqs.len(), 2);
        assert_eq!(nested.lock_acqs[0].held_before.len(), 0);
        assert_eq!(
            nested.lock_acqs[1].held_before,
            vec![("S".to_string(), "a".to_string())]
        );
        let sequential = &s[1];
        assert_eq!(sequential.lock_acqs.len(), 2);
        assert!(
            sequential.lock_acqs[1].held_before.is_empty(),
            "block-scoped guard must be released: {:?}",
            sequential.lock_acqs[1].held_before
        );
    }

    #[test]
    fn atomic_ops_classify_with_gating_via_local() {
        let s = summaries(
            "use std::sync::atomic::{AtomicU64, Ordering};\n\
             struct R { seq: AtomicU64 }\n\
             impl R {\n\
                 fn read(&self) -> bool {\n\
                     let v1 = self.seq.load(Ordering::Acquire);\n\
                     let v2 = self.seq.load(Ordering::Relaxed);\n\
                     if v1 == v2 { return true; }\n\
                     false\n\
                 }\n\
                 fn publish(&self, data: &mut [u64]) {\n\
                     data[0] = 7;\n\
                     self.seq.store(1, Ordering::Relaxed);\n\
                 }\n\
             }\n",
        );
        let read = &s[0];
        assert_eq!(read.atomics.len(), 2);
        assert!(read.atomics.iter().all(|a| a.kind == AtomicKind::Load));
        assert!(read.atomics[0].gating && read.atomics[1].gating);
        let publish = &s[1];
        let store = publish
            .atomics
            .iter()
            .find(|a| a.kind == AtomicKind::Store)
            .expect("store op");
        assert_eq!(store.ordering, "Relaxed");
        assert!(store.after_write, "store after data write is a publication");
        assert_eq!(store.field, "R.seq");
    }

    #[test]
    fn narrowing_casts_and_allocations_are_collected() {
        let s = summaries(
            "fn f(n: usize, xs: &[f64]) -> f32 {\n\
                 let small = n as u32;\n\
                 let v = Vec::new();\n\
                 let msg = format!(\"x\");\n\
                 let _ = (v, msg, small);\n\
                 xs[0] as f32\n\
             }\n",
        );
        let f = &s[0];
        let cast_tys: Vec<&str> = f.casts.iter().map(|c| c.ty.as_str()).collect();
        assert_eq!(cast_tys, ["u32", "f32"]);
        let allocs: Vec<&str> = f.allocs.iter().map(|a| a.what.as_str()).collect();
        assert!(allocs.contains(&"Vec::new"));
        assert!(allocs.contains(&"format!"));
    }

    #[test]
    fn blocking_while_locked_is_reported() {
        let s = summaries(
            "use std::sync::Mutex;\n\
             struct S { a: Mutex<u32> }\n\
             impl S {\n\
                 fn bad(&self) {\n\
                     let g = self.a.lock().unwrap();\n\
                     std::thread::sleep(std::time::Duration::from_millis(1));\n\
                     let _ = g;\n\
                 }\n\
             }\n",
        );
        assert_eq!(s[0].blocking.len(), 1);
        assert_eq!(s[0].blocking[0].what, "thread::sleep");
    }
}
