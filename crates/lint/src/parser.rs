//! Tolerant recursive-descent parser producing the [`crate::ast`] tree.
//!
//! Invariants, in priority order:
//!
//! 1. **Never panic, always terminate.** Every loop provably consumes a
//!    token or breaks; recursion carries a depth guard (pathological
//!    nesting degrades to [`Expr::Opaque`] instead of blowing the stack —
//!    the fuzz suite feeds this parser arbitrary bytes).
//! 2. **Degrade locally.** An unparseable construct becomes `Opaque` or
//!    `Item::Other` and the parser resynchronizes at the next `;` or
//!    balanced brace; one weird macro never blinds the rest of the file.
//! 3. **Keep positions.** Findings anchor on the `line:col` of the token
//!    that opened the expression.
//!
//! The grammar is intentionally partial: generics are skipped (balanced
//! angle tracking), patterns reduce to their bound names, binary operators
//! parse left-associative with no precedence (the semantic rules only care
//! about operand structure, never about evaluation order).

use crate::ast::{Block, Expr, Field, File, FnDef, Item, Stmt};
use crate::lexer::{Tok, TokKind};

/// Maximum expression/item nesting depth before degrading to `Opaque`.
const MAX_DEPTH: usize = 160;

/// Parses a comment-free token stream into a [`File`]. Never fails:
/// unparseable regions degrade to opaque nodes.
pub fn parse_file(toks: &[Tok]) -> File {
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut items = Vec::new();
    while p.pos < p.toks.len() {
        let before = p.pos;
        p.parse_item_into(&mut items, None);
        if p.pos == before {
            p.pos += 1; // stray token (e.g. an unmatched `}`): skip it
        }
    }
    File { items }
}

struct Attrs {
    cfg_test: bool,
    is_test: bool,
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + ahead)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek(0)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes a balanced `(…)`, `[…]`, or `{…}` group whose opener is
    /// the current token. No-op if the current token is not `open`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.at_punct(open) {
            return;
        }
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Consumes a balanced generic argument list starting at `<`. Bails
    /// out at `;` or `{` so a stray `<` in malformed input cannot swallow
    /// the rest of the file.
    fn skip_angles(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                    ";" | "{" => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Parses contiguous outer/inner attributes, noting `cfg(test)` and
    /// `#[test]`.
    fn parse_attrs(&mut self) -> Attrs {
        let mut attrs = Attrs {
            cfg_test: false,
            is_test: false,
        };
        loop {
            if !self.at_punct("#") {
                return attrs;
            }
            let bracket = if self.peek(1).is_some_and(|t| t.text == "[") {
                1
            } else if self.peek(1).is_some_and(|t| t.text == "!")
                && self.peek(2).is_some_and(|t| t.text == "[")
            {
                2
            } else {
                self.pos += 1;
                return attrs;
            };
            let start = self.pos + bracket;
            self.pos = start;
            let before = self.pos;
            self.skip_balanced("[", "]");
            let group = &self.toks[before..self.pos];
            let first = group.get(1).map(|t| t.text.as_str());
            let is_cfg = first == Some("cfg");
            let negated = group.iter().any(|t| t.text == "not");
            let has_test = group
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "test");
            if is_cfg && has_test && !negated {
                attrs.cfg_test = true;
            }
            if first == Some("test") {
                attrs.is_test = true;
            }
        }
    }

    /// Collects normalized type text: path segments, balanced generics,
    /// references, tuples, slices. Stops at the first token that cannot
    /// be part of a type.
    fn type_text(&mut self) -> String {
        let mut out = String::new();
        let mut angle = 0i64;
        let mut fuel = self.toks.len().saturating_sub(self.pos) + 1;
        while let Some(t) = self.peek(0) {
            fuel = fuel.saturating_sub(1);
            if fuel == 0 {
                break;
            }
            let ok = match t.kind {
                TokKind::Ident | TokKind::Lifetime | TokKind::Int => true,
                TokKind::Punct => match t.text.as_str() {
                    "::" | "<" | "&" | "*" | "'" | "!" => true,
                    ">" => angle > 0,
                    "(" => {
                        self.skip_balanced("(", ")");
                        out.push_str("()");
                        continue;
                    }
                    "[" => {
                        self.skip_balanced("[", "]");
                        out.push_str("[]");
                        continue;
                    }
                    "," | ";" | "+" => angle > 0,
                    "->" | "=>" => angle > 0,
                    _ => false,
                },
                _ => false,
            };
            if !ok {
                break;
            }
            if t.text == "<" {
                angle += 1;
            } else if t.text == ">" {
                angle -= 1;
            }
            // `dyn`/`impl`/`mut` noise is kept: head extraction skips it.
            // Separate adjacent word tokens so `dyn Trait` does not glue
            // into `dynTrait`.
            let word = |c: char| c.is_alphanumeric() || c == '_';
            if out.chars().next_back().is_some_and(word) && t.text.chars().next().is_some_and(word)
            {
                out.push(' ');
            }
            out.push_str(&t.text);
            self.pos += 1;
            if angle == 0
                && t.kind == TokKind::Ident
                && !self.peek(0).is_some_and(|n| {
                    n.kind == TokKind::Punct && matches!(n.text.as_str(), "::" | "<")
                })
                && !self.peek(0).is_some_and(|n| n.kind == TokKind::Ident)
            {
                break;
            }
        }
        out
    }

    /// Parses one item (possibly expanding to several, for `use` trees)
    /// into `out`. `self_ty` is the enclosing impl's type head.
    fn parse_item_into(&mut self, out: &mut Vec<Item>, self_ty: Option<&str>) {
        if self.depth >= MAX_DEPTH {
            self.pos += 1;
            return;
        }
        let attrs = self.parse_attrs();
        // Visibility and function qualifiers.
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_balanced("(", ")");
        }
        loop {
            if self.at_ident("unsafe") || self.at_ident("async") {
                self.pos += 1;
            } else if self.at_ident("extern")
                && self.peek(1).is_some_and(|t| t.kind == TokKind::Str)
                && self.peek(2).is_some_and(|t| t.text == "fn")
            {
                self.pos += 2;
            } else if self.at_ident("const") && self.peek(1).is_some_and(|t| t.text == "fn") {
                self.pos += 1;
            } else {
                break;
            }
        }
        let Some(kw) = self.peek(0) else { return };
        if kw.kind != TokKind::Ident {
            // Not an item start: resynchronize past one token.
            self.pos += 1;
            return;
        }
        match kw.text.as_str() {
            "use" => {
                self.pos += 1;
                let line = kw.line;
                let mut prefix = Vec::new();
                self.parse_use_tree(&mut prefix, out, line);
                while !self.at_punct(";") && self.peek(0).is_some() {
                    self.pos += 1;
                }
                self.eat_punct(";");
            }
            "struct" => {
                self.pos += 1;
                let (name, line) = match self.peek(0) {
                    Some(t) if t.kind == TokKind::Ident => {
                        let v = (t.text.clone(), t.line);
                        self.pos += 1;
                        v
                    }
                    _ => return,
                };
                self.skip_angles();
                let mut fields = Vec::new();
                if self.at_punct("(") {
                    self.parse_tuple_fields(&mut fields);
                    while !self.at_punct(";") && self.peek(0).is_some() {
                        self.pos += 1;
                    }
                    self.eat_punct(";");
                } else if self.at_ident("where") {
                    while !self.at_punct("{") && !self.at_punct(";") && self.peek(0).is_some() {
                        self.pos += 1;
                    }
                }
                if self.at_punct("{") {
                    self.parse_named_fields(&mut fields);
                } else {
                    self.eat_punct(";");
                }
                out.push(Item::Struct { name, fields, line });
            }
            "impl" => {
                self.pos += 1;
                self.skip_angles();
                // `impl Trait for Type` / `impl Type`: the self type is the
                // last path before the body.
                let mut head = String::new();
                while let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Punct && t.text == "{" {
                        break;
                    }
                    if t.kind == TokKind::Ident && t.text == "for" {
                        self.pos += 1;
                        head.clear();
                        continue;
                    }
                    if t.kind == TokKind::Ident && t.text == "where" {
                        while !self.at_punct("{") && self.peek(0).is_some() {
                            self.pos += 1;
                        }
                        break;
                    }
                    if t.kind == TokKind::Ident && head.is_empty() && t.text != "dyn" {
                        head = t.text.clone();
                    }
                    if t.kind == TokKind::Punct && t.text == "<" {
                        self.skip_angles();
                        continue;
                    }
                    self.pos += 1;
                }
                let mut inner = Vec::new();
                if self.eat_punct("{") {
                    self.depth += 1;
                    while !self.at_punct("}") && self.peek(0).is_some() {
                        let before = self.pos;
                        self.parse_item_into(&mut inner, Some(&head));
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    self.depth -= 1;
                    self.eat_punct("}");
                }
                out.push(Item::Impl {
                    type_name: head,
                    items: inner,
                });
            }
            "fn" => {
                self.pos += 1;
                if let Some(def) = self.parse_fn(&attrs, self_ty) {
                    out.push(Item::Fn(def));
                }
            }
            "mod" => {
                self.pos += 1;
                let name = match self.peek(0) {
                    Some(t) if t.kind == TokKind::Ident => {
                        let n = t.text.clone();
                        self.pos += 1;
                        n
                    }
                    _ => return,
                };
                let mut inner = Vec::new();
                if self.eat_punct("{") {
                    self.depth += 1;
                    while !self.at_punct("}") && self.peek(0).is_some() {
                        let before = self.pos;
                        self.parse_item_into(&mut inner, None);
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    self.depth -= 1;
                    self.eat_punct("}");
                } else {
                    self.eat_punct(";");
                }
                out.push(Item::Mod {
                    name,
                    items: inner,
                    cfg_test: attrs.cfg_test,
                });
            }
            "static" | "const" => {
                self.pos += 1;
                self.eat_ident("mut");
                let (name, line) = match self.peek(0) {
                    Some(t) if t.kind == TokKind::Ident => {
                        let v = (t.text.clone(), t.line);
                        self.pos += 1;
                        v
                    }
                    _ => return,
                };
                let ty = if self.eat_punct(":") {
                    self.type_text()
                } else {
                    String::new()
                };
                self.skip_to_semi();
                out.push(Item::Static { name, ty, line });
            }
            "enum" | "trait" | "union" => {
                self.pos += 1;
                while self.peek(0).is_some() && !self.at_punct("{") && !self.at_punct(";") {
                    self.pos += 1;
                }
                self.skip_balanced("{", "}");
                self.eat_punct(";");
                out.push(Item::Other);
            }
            "type" => {
                self.pos += 1;
                self.skip_to_semi();
                out.push(Item::Other);
            }
            "extern" | "macro_rules" | "macro" => {
                self.pos += 1;
                while self.peek(0).is_some() && !self.at_punct("{") && !self.at_punct(";") {
                    self.pos += 1;
                }
                self.skip_balanced("{", "}");
                self.eat_punct(";");
                out.push(Item::Other);
            }
            _ => {
                // Unknown construct: resynchronize at `;` or a balanced
                // brace group.
                self.pos += 1;
                self.skip_to_semi();
                out.push(Item::Other);
            }
        }
    }

    /// Skips forward to just past the next `;` at bracket depth zero,
    /// also stopping after a balanced top-level `{…}` group.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        self.skip_balanced("{", "}");
                        self.eat_punct(";");
                        return;
                    }
                    "{" => depth += 1,
                    "}" if depth <= 0 => return,
                    "}" => depth -= 1,
                    ";" if depth <= 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Expands one `use` tree into leaf [`Item::Use`] entries.
    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<Item>, line: u32) {
        if self.depth >= MAX_DEPTH {
            return;
        }
        let start_len = prefix.len();
        loop {
            match self.peek(0) {
                Some(t) if t.kind == TokKind::Ident && t.text == "as" => {
                    self.pos += 1;
                    let alias = self
                        .peek(0)
                        .and_then(|t| (t.kind == TokKind::Ident).then(|| t.text.clone()));
                    if alias.is_some() {
                        self.pos += 1;
                    }
                    out.push(Item::Use {
                        path: prefix.clone(),
                        alias,
                        line,
                    });
                    break;
                }
                Some(t) if t.kind == TokKind::Ident => {
                    prefix.push(t.text.clone());
                    self.pos += 1;
                    if !self.eat_punct("::") {
                        // A trailing `as alias` belongs to this leaf; let
                        // the `as` arm consume it with the full prefix.
                        if self
                            .peek(0)
                            .is_some_and(|t| t.kind == TokKind::Ident && t.text == "as")
                        {
                            continue;
                        }
                        out.push(Item::Use {
                            path: prefix.clone(),
                            alias: None,
                            line,
                        });
                        break;
                    }
                }
                Some(t) if t.kind == TokKind::Punct && t.text == "{" => {
                    self.pos += 1;
                    self.depth += 1;
                    while !self.at_punct("}") && self.peek(0).is_some() {
                        let before = self.pos;
                        self.parse_use_tree(prefix, out, line);
                        if self.pos == before {
                            self.pos += 1;
                        }
                        self.eat_punct(",");
                    }
                    self.depth -= 1;
                    self.eat_punct("}");
                    break;
                }
                Some(t) if t.kind == TokKind::Punct && t.text == "*" => {
                    self.pos += 1;
                    break; // glob imports resolve nothing
                }
                _ => break,
            }
        }
        prefix.truncate(start_len);
    }

    fn parse_named_fields(&mut self, fields: &mut Vec<Field>) {
        if !self.eat_punct("{") {
            return;
        }
        while !self.at_punct("}") && self.peek(0).is_some() {
            let before = self.pos;
            self.parse_attrs();
            if self.eat_ident("pub") && self.at_punct("(") {
                self.skip_balanced("(", ")");
            }
            if let Some(t) = self.peek(0) {
                if t.kind == TokKind::Ident && self.peek(1).is_some_and(|n| n.text == ":") {
                    let (name, line) = (t.text.clone(), t.line);
                    self.pos += 2;
                    let ty = self.type_text();
                    fields.push(Field { name, ty, line });
                }
            }
            while !self.at_punct(",") && !self.at_punct("}") && self.peek(0).is_some() {
                self.pos += 1;
            }
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.eat_punct("}");
    }

    fn parse_tuple_fields(&mut self, fields: &mut Vec<Field>) {
        if !self.eat_punct("(") {
            return;
        }
        let mut index = 0usize;
        while !self.at_punct(")") && self.peek(0).is_some() {
            let before = self.pos;
            self.parse_attrs();
            if self.eat_ident("pub") && self.at_punct("(") {
                self.skip_balanced("(", ")");
            }
            let line = self.peek(0).map_or(0, |t| t.line);
            let ty = self.type_text();
            if !ty.is_empty() {
                fields.push(Field {
                    name: index.to_string(),
                    ty,
                    line,
                });
                index += 1;
            }
            while !self.at_punct(",") && !self.at_punct(")") && self.peek(0).is_some() {
                self.pos += 1;
            }
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.eat_punct(")");
    }

    /// Parses a function from just past the `fn` keyword.
    fn parse_fn(&mut self, attrs: &Attrs, self_ty: Option<&str>) -> Option<FnDef> {
        let name_tok = self.peek(0)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let (name, line, col) = (name_tok.text.clone(), name_tok.line, name_tok.col);
        self.pos += 1;
        self.skip_angles();
        let mut params = Vec::new();
        if self.eat_punct("(") {
            while !self.at_punct(")") && self.peek(0).is_some() {
                let before = self.pos;
                self.parse_attrs();
                // Pattern: everything up to the top-level `:`; its first
                // plain identifier is the binding name.
                let mut pat_name: Option<String> = None;
                let mut is_self = false;
                let mut depth = 0i64;
                while let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "<" => depth += 1,
                            ")" if depth == 0 => break,
                            ")" | "]" | ">" => depth -= 1,
                            ":" if depth == 0 => break,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    if t.kind == TokKind::Ident {
                        if t.text == "self" {
                            is_self = true;
                        } else if pat_name.is_none() && !matches!(t.text.as_str(), "mut" | "ref") {
                            pat_name = Some(t.text.clone());
                        }
                    }
                    self.pos += 1;
                }
                let ty = if self.eat_punct(":") {
                    self.type_text()
                } else {
                    String::new()
                };
                if is_self {
                    params.push(("self".to_string(), "Self".to_string()));
                } else if let Some(n) = pat_name {
                    params.push((n, ty));
                }
                while !self.at_punct(",") && !self.at_punct(")") && self.peek(0).is_some() {
                    self.pos += 1;
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.pos += 1;
                }
            }
            self.eat_punct(")");
        }
        let ret = if self.eat_punct("->") {
            Some(self.type_text())
        } else {
            None
        };
        if self.at_ident("where") {
            while self.peek(0).is_some() && !self.at_punct("{") && !self.at_punct(";") {
                self.pos += 1;
            }
        }
        let body = if self.at_punct("{") {
            Some(self.parse_block())
        } else {
            self.eat_punct(";");
            None
        };
        Some(FnDef {
            name,
            self_ty: self_ty.map(str::to_string),
            params,
            ret,
            body,
            line,
            col,
            is_test: attrs.is_test || attrs.cfg_test,
        })
    }

    /// Parses a `{ … }` block. The opening brace must be current.
    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.eat_punct("{") {
            return block;
        }
        if self.depth >= MAX_DEPTH {
            self.skip_block_rest();
            return block;
        }
        self.depth += 1;
        while !self.at_punct("}") && self.peek(0).is_some() {
            let before = self.pos;
            self.parse_stmt(&mut block.stmts);
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.depth -= 1;
        self.eat_punct("}");
        block
    }

    /// Consumes the remainder of an already-open block (depth overflow
    /// path).
    fn skip_block_rest(&mut self) {
        let mut depth = 1i64;
        while let Some(t) = self.bump() {
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    depth += 1;
                } else if t.text == "}" {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
            }
        }
    }

    fn parse_stmt(&mut self, stmts: &mut Vec<Stmt>) {
        if self.eat_punct(";") {
            return;
        }
        // Attribute on a statement or nested item.
        let checkpoint = self.pos;
        if self.at_punct("#") {
            let mut items = Vec::new();
            self.parse_item_into(&mut items, None);
            for it in items {
                stmts.push(Stmt::Item(Box::new(it)));
            }
            if self.pos != checkpoint {
                return;
            }
        }
        if let Some(t) = self.peek(0) {
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "let" => {
                        self.parse_let(stmts, t.line);
                        return;
                    }
                    "fn" | "struct" | "enum" | "impl" | "mod" | "use" | "trait" | "static"
                    | "type" | "union" | "macro_rules" => {
                        let mut items = Vec::new();
                        self.parse_item_into(&mut items, None);
                        for it in items {
                            stmts.push(Stmt::Item(Box::new(it)));
                        }
                        return;
                    }
                    "const"
                        if self
                            .peek(1)
                            .is_some_and(|n| n.kind == TokKind::Ident && n.text != "fn") =>
                    {
                        let mut items = Vec::new();
                        self.parse_item_into(&mut items, None);
                        for it in items {
                            stmts.push(Stmt::Item(Box::new(it)));
                        }
                        return;
                    }
                    "pub" => {
                        let mut items = Vec::new();
                        self.parse_item_into(&mut items, None);
                        for it in items {
                            stmts.push(Stmt::Item(Box::new(it)));
                        }
                        return;
                    }
                    _ => {}
                }
            }
        }
        let e = self.parse_expr(false);
        stmts.push(Stmt::Expr(e));
        self.eat_punct(";");
    }

    fn parse_let(&mut self, stmts: &mut Vec<Stmt>, line: u32) {
        self.pos += 1; // `let`
        let pats = self.parse_pattern_names(&["=", ":", ";"]);
        let ty = if self.eat_punct(":") {
            Some(self.type_text())
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(false))
        } else {
            None
        };
        // let-else diverging block.
        if self.at_ident("else") {
            self.pos += 1;
            let blk = self.parse_block();
            stmts.push(Stmt::Let {
                pats,
                ty,
                init,
                line,
            });
            stmts.push(Stmt::Expr(Expr::BlockExpr(blk)));
            self.eat_punct(";");
            return;
        }
        self.eat_punct(";");
        stmts.push(Stmt::Let {
            pats,
            ty,
            init,
            line,
        });
    }

    /// Collects the bound names of a pattern, consuming tokens until one
    /// of `stops` at bracket depth zero. Constructor paths (`Some`,
    /// `Ok`, `cache::Entry`) are excluded by the lowercase heuristic and
    /// by skipping path segments.
    fn parse_pattern_names(&mut self, stops: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    s if depth == 0 && stops.contains(&s) => break,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident {
                if depth == 0 && stops.contains(&t.text.as_str()) {
                    break;
                }
                let first_upper = t.text.chars().next().is_some_and(char::is_uppercase);
                let is_path_seg = self
                    .peek(1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == "::");
                let keyword = matches!(t.text.as_str(), "mut" | "ref" | "box" | "in" | "_");
                if !first_upper && !is_path_seg && !keyword {
                    names.push(t.text.clone());
                }
            }
            self.pos += 1;
        }
        names
    }

    /// Parses one expression. `no_struct` forbids `Path { … }` struct
    /// literals (condition position, where `{` opens the body instead).
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            self.pos += 1;
            return Expr::Opaque;
        }
        self.depth += 1;
        let e = self.parse_binary(no_struct);
        self.depth -= 1;
        e
    }

    fn parse_binary(&mut self, no_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(no_struct);
        while let Some(t) = self.peek(0) {
            if t.kind != TokKind::Punct {
                break;
            }
            match t.text.as_str() {
                "=" => {
                    let line = t.line;
                    self.pos += 1;
                    let value = self.parse_expr(no_struct);
                    lhs = Expr::Assign {
                        place: Box::new(lhs),
                        value: Box::new(value),
                        line,
                    };
                }
                "==" | "!=" | "<=" | ">=" | "&&" | "||" | "<" | ">" | "+" | "-" | "*" | "/"
                | "%" | "^" | "&" | "|" => {
                    let op = t.text.clone();
                    self.pos += 1;
                    // Compound assignment: `+=`, `-=`, `&=`, …
                    if self.at_punct("=") && !matches!(op.as_str(), "==" | "!=" | "<=" | ">=") {
                        let line = t.line;
                        self.pos += 1;
                        let value = self.parse_expr(no_struct);
                        lhs = Expr::Assign {
                            place: Box::new(lhs),
                            value: Box::new(value),
                            line,
                        };
                        continue;
                    }
                    let rhs = self.parse_prefix(no_struct);
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                "." if self.peek(1).is_some_and(|n| n.text == ".") => {
                    // Range `a..b` / `a..=b` / `a..`.
                    self.pos += 2;
                    self.eat_punct("=");
                    if self.at_expr_start() {
                        let rhs = self.parse_prefix(no_struct);
                        lhs = Expr::Binary {
                            op: "..".to_string(),
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        };
                    }
                }
                _ => break,
            }
        }
        lhs
    }

    /// Whether the current token can start an expression (used for open
    /// ranges).
    fn at_expr_start(&self) -> bool {
        match self.peek(0) {
            Some(t) => match t.kind {
                TokKind::Ident => !matches!(t.text.as_str(), "else" | "in" | "where"),
                TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => true,
                TokKind::Punct => {
                    matches!(t.text.as_str(), "(" | "[" | "{" | "&" | "*" | "-" | "!")
                }
                _ => false,
            },
            None => false,
        }
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Opaque;
        };
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "&" | "&&" | "*" | "-" | "!" => {
                    self.pos += 1;
                    self.eat_ident("mut");
                    if self.depth >= MAX_DEPTH {
                        return Expr::Opaque;
                    }
                    self.depth += 1;
                    let inner = self.parse_prefix(no_struct);
                    self.depth -= 1;
                    return Expr::Unary(Box::new(self.parse_postfix(inner, no_struct)));
                }
                "." if self.peek(1).is_some_and(|n| n.text == ".") => {
                    // Prefix range `..n`.
                    self.pos += 2;
                    self.eat_punct("=");
                    if self.at_expr_start() {
                        let rhs = self.parse_prefix(no_struct);
                        return Expr::Unary(Box::new(rhs));
                    }
                    return Expr::Opaque;
                }
                _ => {}
            }
        }
        let primary = self.parse_primary(no_struct);
        self.parse_postfix(primary, no_struct)
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Opaque;
        };
        let (line, col) = (t.line, t.col);
        match t.kind {
            TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => {
                self.pos += 1;
                Expr::Lit
            }
            TokKind::Lifetime => {
                // Loop label `'a: loop { … }`.
                self.pos += 1;
                self.eat_punct(":");
                self.parse_primary(no_struct)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.pos += 1;
                    let items = self.parse_comma_exprs(")");
                    self.eat_punct(")");
                    match items.len() {
                        1 => items.into_iter().next().unwrap_or(Expr::Opaque),
                        _ => Expr::Tuple(items),
                    }
                }
                "[" => {
                    self.pos += 1;
                    let items = self.parse_comma_exprs("]");
                    self.eat_punct("]");
                    Expr::Tuple(items)
                }
                "{" => Expr::BlockExpr(self.parse_block()),
                "|" => self.parse_closure(),
                "||" => {
                    // Zero-parameter closure: `|| body`.
                    self.pos += 1;
                    let body = self.parse_expr(false);
                    Expr::Closure {
                        pats: Vec::new(),
                        body: Box::new(body),
                    }
                }
                _ => {
                    self.pos += 1;
                    Expr::Opaque
                }
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => {
                    self.pos += 1;
                    // `if let pat = scrutinee`: keep the scrutinee as the
                    // condition (bindings are lost, flow is preserved).
                    if self.eat_ident("let") {
                        self.parse_pattern_names(&["="]);
                        self.eat_punct("=");
                    }
                    let cond = self.parse_expr(true);
                    let then = self.parse_block();
                    let els = if self.eat_ident("else") {
                        Some(Box::new(if self.at_ident("if") {
                            self.parse_expr(no_struct)
                        } else {
                            Expr::BlockExpr(self.parse_block())
                        }))
                    } else {
                        None
                    };
                    Expr::If {
                        cond: Box::new(cond),
                        then,
                        els,
                    }
                }
                "while" => {
                    self.pos += 1;
                    if self.eat_ident("let") {
                        self.parse_pattern_names(&["="]);
                        self.eat_punct("=");
                    }
                    let cond = self.parse_expr(true);
                    let body = self.parse_block();
                    Expr::While {
                        cond: Box::new(cond),
                        body,
                    }
                }
                "loop" => {
                    self.pos += 1;
                    Expr::Loop {
                        body: self.parse_block(),
                    }
                }
                "for" => {
                    self.pos += 1;
                    let pats = self.parse_pattern_names(&["in"]);
                    self.eat_ident("in");
                    let iter = self.parse_expr(true);
                    let body = self.parse_block();
                    Expr::For {
                        pats,
                        iter: Box::new(iter),
                        body,
                        line,
                        col,
                    }
                }
                "match" => {
                    self.pos += 1;
                    let scrutinee = self.parse_expr(true);
                    let mut arms = Vec::new();
                    if self.eat_punct("{") {
                        self.depth += 1;
                        while !self.at_punct("}") && self.peek(0).is_some() {
                            let before = self.pos;
                            let pats = self.parse_pattern_names(&["=>"]);
                            // Arm guard: `pat if guard => …` leaves `if`
                            // unconsumed by the pattern scan.
                            if self.at_ident("if") {
                                self.pos += 1;
                                let _guard = self.parse_expr(true);
                            }
                            if self.eat_punct("=>") {
                                let body = self.parse_expr(false);
                                arms.push((pats, body));
                            }
                            self.eat_punct(",");
                            if self.pos == before {
                                self.pos += 1;
                            }
                        }
                        self.depth -= 1;
                        self.eat_punct("}");
                    }
                    Expr::Match {
                        scrutinee: Box::new(scrutinee),
                        arms,
                    }
                }
                "return" => {
                    self.pos += 1;
                    let value = if self.at_expr_start() {
                        Some(Box::new(self.parse_expr(no_struct)))
                    } else {
                        None
                    };
                    Expr::Return { value, line }
                }
                "break" | "continue" => {
                    self.pos += 1;
                    if self.peek(0).is_some_and(|n| n.kind == TokKind::Lifetime) {
                        self.pos += 1;
                    }
                    if self.at_expr_start() {
                        Expr::Unary(Box::new(self.parse_expr(no_struct)))
                    } else {
                        Expr::Opaque
                    }
                }
                "unsafe" => {
                    self.pos += 1;
                    Expr::BlockExpr(self.parse_block())
                }
                "move" => {
                    self.pos += 1;
                    if self.at_punct("|") {
                        self.parse_closure()
                    } else if self.at_punct("||") {
                        self.pos += 1;
                        let body = self.parse_expr(false);
                        Expr::Closure {
                            pats: Vec::new(),
                            body: Box::new(body),
                        }
                    } else {
                        Expr::Opaque
                    }
                }
                "true" | "false" => {
                    self.pos += 1;
                    Expr::Lit
                }
                _ => self.parse_path_expr(no_struct),
            },
            _ => {
                self.pos += 1;
                Expr::Opaque
            }
        }
    }

    fn parse_closure(&mut self) -> Expr {
        // At `|`: parameters up to the closing `|`, then the body.
        self.pos += 1;
        let pats = self.parse_pattern_names(&["|"]);
        self.eat_punct("|");
        // Optional return type `-> T`.
        if self.eat_punct("->") {
            self.type_text();
        }
        let body = self.parse_expr(false);
        Expr::Closure {
            pats,
            body: Box::new(body),
        }
    }

    /// A path expression, possibly a macro call or struct literal.
    fn parse_path_expr(&mut self, no_struct: bool) -> Expr {
        let Some(first) = self.peek(0) else {
            return Expr::Opaque;
        };
        let (line, col) = (first.line, first.col);
        let mut segs = vec![first.text.clone()];
        self.pos += 1;
        loop {
            if self.at_punct("::") {
                if self.peek(1).is_some_and(|n| n.text == "<") {
                    // Turbofish: `::<T>` — skip the generics.
                    self.pos += 1;
                    self.skip_angles();
                    continue;
                }
                if self.peek(1).is_some_and(|n| n.kind == TokKind::Ident) {
                    segs.push(self.toks[self.pos + 1].text.clone());
                    self.pos += 2;
                    continue;
                }
                self.pos += 1;
                continue;
            }
            break;
        }
        // Macro invocation.
        if self.at_punct("!")
            && self
                .peek(1)
                .is_some_and(|n| matches!(n.text.as_str(), "(" | "[" | "{"))
        {
            self.pos += 1;
            let (open, close) = match self.peek(0).map(|t| t.text.as_str()) {
                Some("[") => ("[", "]"),
                Some("{") => ("{", "}"),
                _ => ("(", ")"),
            };
            self.pos += 1;
            let args = self.parse_macro_args(open, close);
            let name = segs.last().cloned().unwrap_or_default();
            return Expr::MacroCall {
                name,
                args,
                line,
                col,
            };
        }
        // Struct literal.
        let head_upper = segs
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(char::is_uppercase);
        if !no_struct && self.at_punct("{") && (head_upper || segs.len() > 1) {
            self.pos += 1;
            let mut fields = Vec::new();
            self.depth += 1;
            while !self.at_punct("}") && self.peek(0).is_some() {
                let before = self.pos;
                if self.at_punct(".") && self.peek(1).is_some_and(|n| n.text == ".") {
                    // Spread `..base`.
                    self.pos += 2;
                    let base = self.parse_expr(false);
                    fields.push(("..".to_string(), base));
                } else if let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Ident {
                        let fname = t.text.clone();
                        self.pos += 1;
                        let value = if self.eat_punct(":") {
                            self.parse_expr(false)
                        } else {
                            Expr::Path {
                                segs: vec![fname.clone()],
                                line: t.line,
                                col: t.col,
                            }
                        };
                        fields.push((fname, value));
                    }
                }
                while !self.at_punct(",") && !self.at_punct("}") && self.peek(0).is_some() {
                    self.pos += 1;
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.pos += 1;
                }
            }
            self.depth -= 1;
            self.eat_punct("}");
            return Expr::StructLit { path: segs, fields };
        }
        Expr::Path { segs, line, col }
    }

    /// Best-effort comma-separated expressions inside an already-open
    /// macro delimiter; resynchronizes at top-level commas so arbitrary
    /// token soup (matcher fragments, format strings) cannot derail it.
    fn parse_macro_args(&mut self, open: &str, close: &str) -> Vec<Expr> {
        let mut args = Vec::new();
        let mut guard = self.toks.len().saturating_sub(self.pos) + 1;
        while self.peek(0).is_some() && !self.at_punct(close) {
            guard = guard.saturating_sub(1);
            if guard == 0 {
                break;
            }
            let before = self.pos;
            let e = self.parse_expr(false);
            args.push(e);
            // Skip whatever the expression parser did not consume, up to
            // the next top-level comma or the closing delimiter.
            let mut depth = 0i64;
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        s if s == open || s == "(" || s == "[" || s == "{" => depth += 1,
                        s if s == close && depth == 0 => break,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "," if depth == 0 => break,
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.eat_punct(close);
        args
    }

    fn parse_postfix(&mut self, mut e: Expr, no_struct: bool) -> Expr {
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Ident && t.text == "as" {
                let (line, col) = (t.line, t.col);
                self.pos += 1;
                let ty = self.type_text();
                e = Expr::Cast {
                    expr: Box::new(e),
                    ty,
                    line,
                    col,
                };
                continue;
            }
            if t.kind != TokKind::Punct {
                break;
            }
            match t.text.as_str() {
                "?" => {
                    self.pos += 1;
                }
                "(" => {
                    let (line, col) = match e.pos() {
                        Some(p) => p,
                        None => (t.line, t.col),
                    };
                    self.pos += 1;
                    let args = self.parse_comma_exprs(")");
                    self.eat_punct(")");
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                        line,
                        col,
                    };
                }
                "[" => {
                    self.pos += 1;
                    let idx = self.parse_expr(false);
                    // Consume anything an opaque index left behind.
                    let mut depth = 0i64;
                    while let Some(n) = self.peek(0) {
                        if n.kind == TokKind::Punct {
                            match n.text.as_str() {
                                "[" | "(" | "{" => depth += 1,
                                "]" if depth == 0 => break,
                                "]" | ")" | "}" => depth -= 1,
                                _ => {}
                            }
                        }
                        self.pos += 1;
                    }
                    self.eat_punct("]");
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                    };
                }
                "." => {
                    let Some(n) = self.peek(1) else {
                        self.pos += 1;
                        break;
                    };
                    if n.kind == TokKind::Ident {
                        if n.text == "await" {
                            self.pos += 2;
                            continue;
                        }
                        let (mut name, line, col) = (n.text.clone(), n.line, n.col);
                        self.pos += 2;
                        // Method turbofish: keep the text — rules inspect
                        // collect targets (`collect::<BTreeMap<_,_>>`).
                        if self.at_punct("::") && self.peek(1).is_some_and(|x| x.text == "<") {
                            self.pos += 1;
                            let start = self.pos;
                            self.skip_angles();
                            name.push_str("::");
                            for tok in &self.toks[start..self.pos] {
                                name.push_str(&tok.text);
                            }
                        }
                        if self.at_punct("(") {
                            self.pos += 1;
                            let args = self.parse_comma_exprs(")");
                            self.eat_punct(")");
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: name,
                                args,
                                line,
                                col,
                            };
                        } else {
                            e = Expr::FieldAccess {
                                base: Box::new(e),
                                name,
                                line,
                                col,
                            };
                        }
                    } else if n.kind == TokKind::Int {
                        let (name, line, col) = (n.text.clone(), n.line, n.col);
                        self.pos += 2;
                        e = Expr::FieldAccess {
                            base: Box::new(e),
                            name,
                            line,
                            col,
                        };
                    } else if n.kind == TokKind::Punct && n.text == "." {
                        break; // range: handled by parse_binary
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                _ => break,
            }
            let _ = no_struct;
        }
        e
    }

    /// Comma-separated expressions up to (not past) `close`, with
    /// per-element resynchronization.
    fn parse_comma_exprs(&mut self, close: &str) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut guard = self.toks.len().saturating_sub(self.pos) + 1;
        while self.peek(0).is_some() && !self.at_punct(close) {
            guard = guard.saturating_sub(1);
            if guard == 0 {
                break;
            }
            let before = self.pos;
            out.push(self.parse_expr(false));
            let mut depth = 0i64;
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        s if s == close && depth == 0 => break,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "," | ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            if self.at_punct(";") {
                // Array repeat `[expr; len]`.
                self.pos += 1;
                continue;
            }
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    fn parse(src: &str) -> File {
        let toks = lex(src);
        let code: Vec<Tok> = toks
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        parse_file(&code)
    }

    fn fns(file: &File) -> Vec<&FnDef> {
        let mut out = Vec::new();
        ast::for_each_fn(&file.items, &mut |f| out.push(f));
        out
    }

    #[test]
    fn parses_items_and_functions() {
        let file = parse(
            "use std::collections::{HashMap, hash_map::DefaultHasher};\n\
             pub struct S { pub map: HashMap<u32, String>, n: usize }\n\
             impl S {\n    pub fn get(&self, k: u32) -> Option<&String> { self.map.get(&k) }\n}\n\
             fn free(x: usize) -> u32 { x as u32 }\n",
        );
        let uses: Vec<String> = file
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Use { path, .. } => Some(path.join("::")),
                _ => None,
            })
            .collect();
        assert_eq!(
            uses,
            [
                "std::collections::HashMap",
                "std::collections::hash_map::DefaultHasher"
            ]
        );
        let structs: Vec<(&str, usize)> = file
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Struct { name, fields, .. } => Some((name.as_str(), fields.len())),
                _ => None,
            })
            .collect();
        assert_eq!(structs, [("S", 2)]);
        let names: Vec<&str> = fns(&file).iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["get", "free"]);
        let get = fns(&file)[0];
        assert_eq!(get.self_ty.as_deref(), Some("S"));
        assert_eq!(get.params[0].0, "self");
    }

    #[test]
    fn field_types_are_normalized() {
        let file = parse("struct T { m: Mutex < HashMap < K , V > > }\n");
        match &file.items[0] {
            Item::Struct { fields, .. } => {
                assert_eq!(fields[0].ty, "Mutex<HashMap<K,V>>");
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn for_loop_and_method_chain() {
        let file = parse(
            "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    let mut out = Vec::new();\n    \
             for (k, v) in m.iter() { out.push(*v); }\n    out\n}\n",
        );
        let def = fns(&file)[0];
        let body = def.body.as_ref().expect("body");
        let mut saw_for = false;
        ast::walk_block(body, &mut |e| {
            if let Expr::For { pats, iter, .. } = e {
                saw_for = true;
                assert_eq!(pats, &["k", "v"]);
                assert!(matches!(**iter, Expr::MethodCall { ref method, .. } if method == "iter"));
            }
        });
        assert!(saw_for);
    }

    #[test]
    fn casts_and_orderings() {
        let file = parse(
            "fn g(n: usize, x: f64) {\n    let a = n as u32;\n    \
             self.flag.store(true, Ordering::Relaxed);\n    let b = x as f32;\n}\n",
        );
        let body = fns(&file)[0].body.as_ref().expect("body");
        let mut casts = Vec::new();
        let mut stores = 0;
        ast::walk_block(body, &mut |e| match e {
            Expr::Cast { ty, .. } => casts.push(ty.clone()),
            Expr::MethodCall { method, args, .. } if method == "store" => {
                stores += 1;
                assert!(args.iter().any(|a| matches!(
                    a,
                    Expr::Path { segs, .. } if segs.last().is_some_and(|s| s == "Relaxed")
                )));
            }
            _ => {}
        });
        assert_eq!(casts, ["u32", "f32"]);
        assert_eq!(stores, 1);
    }

    #[test]
    fn struct_literal_vs_condition_block() {
        let file =
            parse("fn h(c: bool) -> P {\n    if c { return P { x: 1 }; }\n    P { x: 2 }\n}\n");
        let body = fns(&file)[0].body.as_ref().expect("body");
        let mut lits = 0;
        ast::walk_block(body, &mut |e| {
            if matches!(e, Expr::StructLit { .. }) {
                lits += 1;
            }
        });
        assert_eq!(lits, 2);
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let file = parse(
            "#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn live() {}\n\
             #[test]\nfn unit() {}\n",
        );
        // for_each_fn skips cfg(test) modules entirely.
        let names: Vec<(&str, bool)> = fns(&file)
            .iter()
            .map(|f| (f.name.as_str(), f.is_test))
            .collect();
        assert_eq!(names, [("live", false), ("unit", true)]);
    }

    #[test]
    fn degenerate_input_terminates() {
        for src in [
            "((((((((((((((((((((((((((((",
            "fn f( { ] } ) impl impl impl",
            "match { => , => } else",
            "}}}}}}}",
            "fn f() { a = = = ; }",
            "let x",
            "use ;",
            "macro_rules! m { ($x:expr) => { $x } }",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn closures_and_macros() {
        let file = parse(
            "fn f(v: Vec<u32>) -> String {\n    let s: u32 = v.iter().map(|x| x + 1).sum();\n    \
             format!(\"{}\", s)\n}\n",
        );
        let body = fns(&file)[0].body.as_ref().expect("body");
        let mut macros = Vec::new();
        let mut closures = 0;
        ast::walk_block(body, &mut |e| match e {
            Expr::MacroCall { name, .. } => macros.push(name.clone()),
            Expr::Closure { .. } => closures += 1,
            _ => {}
        });
        assert_eq!(macros, ["format"]);
        assert_eq!(closures, 1);
    }
}
