//! The rule table: which invariant each rule encodes, where it applies,
//! and the registry counter it reports through.
//!
//! Scoping is two-dimensional: a **target kind** (library, binary,
//! example, bench) derived from the file's path, and a **crate list**
//! (allow- or deny-based) derived from the workspace layout. Test code —
//! `tests/` directories and `#[cfg(test)]` modules — is outside every
//! rule's scope by construction; the engine never hands it to a matcher.

/// Which compilation target a `.rs` file belongs to, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` outside `bin/`).
    Lib,
    /// Binary target (`src/bin/`, `src/main.rs`).
    Bin,
    /// `examples/` target.
    Example,
    /// Criterion bench under `benches/`.
    Bench,
}

/// How a rule's crate list is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateScope {
    /// Applies everywhere except the listed crates.
    AllExcept(&'static [&'static str]),
    /// Applies only in the listed crates.
    Only(&'static [&'static str]),
}

/// One lint rule's metadata; matching logic lives in the engine.
#[derive(Debug)]
pub struct Rule {
    /// Stable id (`L001`…).
    pub id: &'static str,
    /// One-line summary for `--list-rules` and diagnostics.
    pub title: &'static str,
    /// Which invariant the rule encodes and why (DESIGN.md §13).
    pub rationale: &'static str,
    /// Target kinds the rule scans.
    pub kinds: &'static [FileKind],
    /// Crates the rule scans.
    pub crates: CrateScope,
    /// Telemetry counter accumulating this rule's findings.
    pub counter: &'static str,
}

use CrateScope::{AllExcept, Only};
use FileKind::{Bench, Bin, Example, Lib};

/// Crates allowed to read the wall clock: everything else is under the
/// PR 1/2 determinism contract (bit-identical at any `OFTEC_THREADS`).
const WALL_CLOCK_ALLOWED: &[&str] = &["lint", "telemetry", "serve", "bench"];

/// The rule table. `L000` is the meta-rule for the suppression syntax
/// itself and is always in scope.
pub const RULES: &[Rule] = &[
    Rule {
        id: "L000",
        title: "malformed `oftec-lint: allow(...)` suppression",
        rationale: "A suppression without a rule id or without a reason defeats the \
                    audit trail the mechanism exists to provide; the reason is the \
                    documentation of why the invariant does not apply.",
        kinds: &[Lib, Bin, Example, Bench],
        crates: AllExcept(&[]),
        counter: "lint.findings.L000",
    },
    Rule {
        id: "L001",
        title: "`unwrap()`/`expect()` in non-test library or binary code",
        rationale: "PR 3's fault taxonomy: a surprise on a solve or serving path must \
                    become a typed `OftecError`, not an abort. Superset of the old \
                    per-crate clippy gate, covering all workspace crates and bins.",
        kinds: &[Lib, Bin, Example],
        crates: AllExcept(&[]),
        counter: "lint.findings.L001",
    },
    Rule {
        id: "L002",
        title: "`std::thread::spawn` outside `crates/parallel`",
        rationale: "All parallelism must go through the scoped executor so panic \
                    containment and index-ordered telemetry capture hold; a raw \
                    spawn escapes both and breaks the determinism contract.",
        kinds: &[Lib, Bin, Example, Bench],
        crates: AllExcept(&["parallel"]),
        counter: "lint.findings.L002",
    },
    Rule {
        id: "L003",
        title: "`Instant::now`/`SystemTime::now` in deterministic solver crates",
        rationale: "Solver results must be bit-identical at any `OFTEC_THREADS`; \
                    wall-clock reads on solve paths invite time-dependent behavior. \
                    Allowlisted in `telemetry` (span times are redactable), `serve` \
                    (deadlines), and `bench`/`lint` (measurement tools).",
        kinds: &[Lib, Bin],
        crates: AllExcept(WALL_CLOCK_ALLOWED),
        counter: "lint.findings.L003",
    },
    Rule {
        id: "L004",
        title: "`==`/`!=` on floating-point expressions",
        rationale: "Exact float equality on numerical-kernel paths is almost always \
                    a tolerance bug; intentional exact-zero fast paths carry an \
                    inline allow with the justification.",
        kinds: &[Lib],
        crates: Only(&["linalg", "optim", "thermal", "serve", "telemetry", "fleet"]),
        counter: "lint.findings.L004",
    },
    Rule {
        id: "L005",
        title: "`println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code",
        rationale: "Library code reports through `oftec-telemetry` events and \
                    counters so output is structured, level-gated, and uniform \
                    across binaries; ad-hoc printing belongs to bins only.",
        kinds: &[Lib],
        crates: AllExcept(&[]),
        counter: "lint.findings.L005",
    },
    Rule {
        id: "L006",
        title: "naked `panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code",
        rationale: "PR 3's fault taxonomy: non-test solve paths return typed errors; \
                    the executor contains worker panics but a library panic is still \
                    an abort on the serial path. Deliberate invariant guards carry \
                    an inline allow naming the invariant.",
        kinds: &[Lib],
        crates: AllExcept(&[]),
        counter: "lint.findings.L006",
    },
    Rule {
        id: "L007",
        title: "missing `#[must_use]` on public `Result`-returning solver entry points",
        rationale: "Dropping a solver `Result` silently discards a failed solve; \
                    entry points (`pub fn solve*`/`run`) in the solver crates must \
                    be annotated so callers cannot ignore the outcome.",
        kinds: &[Lib],
        crates: Only(&[
            "linalg",
            "optim",
            "thermal",
            "core",
            "serve",
            "telemetry",
            "fleet",
        ]),
        counter: "lint.findings.L007",
    },
    Rule {
        id: "L008",
        title: "unordered `HashMap`/`HashSet` in determinism-contract code",
        rationale: "Iteration order of hashed collections depends on hasher state, \
                    so any map iteration that reaches returned values, telemetry, \
                    or serialized output breaks the bit-identical contract. The \
                    rule flags both declarations (imports, fields, constructors) \
                    and iterations whose values the dataflow pass tracks into a \
                    sink; explicit sorting or `.collect::<BTreeMap<_,_>>()` \
                    sanitizes the flow.",
        kinds: &[Lib, Bin],
        crates: AllExcept(&["bench"]),
        counter: "lint.findings.L008",
    },
    Rule {
        id: "L009",
        title: "`Ordering::Relaxed` in an atomic publication/handoff pattern",
        rationale: "A Relaxed store that publishes earlier non-atomic writes, or a \
                    Relaxed load that gates data reads against a Release store, \
                    permits the CPU and compiler to reorder the data access past \
                    the flag — torn reads under contention. Standalone counters \
                    (no paired gating load) and RMW operations stay Relaxed; \
                    fence-based protocols (seqlock readers) are recognized via \
                    `fence(Acquire)`/`fence(Release)`.",
        kinds: &[Lib, Bin],
        crates: AllExcept(&[]),
        counter: "lint.findings.L009",
    },
    Rule {
        id: "L010",
        title: "lock-order cycle across `Mutex`/`RwLock` acquisition chains",
        rationale: "Two functions acquiring the same pair of locks in opposite \
                    orders deadlock under concurrency the moment both chains run; \
                    the lock graph composes per-function \"locks held at call\" \
                    summaries through the intra-crate call graph, so indirect \
                    A→call→B orderings are seen too. Fix by choosing one global \
                    acquisition order.",
        kinds: &[Lib, Bin],
        crates: AllExcept(&[]),
        counter: "lint.findings.L010",
    },
    Rule {
        id: "L011",
        title: "blocking call while holding a lock on a serve hot path",
        rationale: "`thread::sleep`, channel `recv`, `join`, socket accept/connect, \
                    or a second lock acquisition while a `Mutex`/`RwLock` guard is \
                    live serializes every thread contending on that lock — at \
                    100k+ rps a single blocked guard holder collapses tail \
                    latency. Confined to `serve`, whose request path owns the \
                    latency SLO.",
        kinds: &[Lib],
        crates: Only(&["serve"]),
        counter: "lint.findings.L011",
    },
    Rule {
        id: "L012",
        title: "lossy numeric `as` cast on a solver path",
        rationale: "Narrowing casts (`f64→f32`, `usize→u32`) silently lose \
                    precision or truncate; solver-path numerics stay f64/usize \
                    except in the sanctioned mixed-precision module \
                    (`crates/linalg/src/iterative.rs`), where the f32 \
                    preconditioner's error is certified by the iterative \
                    refinement loop around it.",
        kinds: &[Lib],
        crates: Only(&["linalg", "optim", "thermal", "core", "power"]),
        counter: "lint.findings.L012",
    },
    Rule {
        id: "L013",
        title: "heap allocation in a function reachable from a `hot` marker",
        rationale: "Functions annotated `// oftec-lint: hot` (and everything they \
                    call, via the intra-crate call graph) run per request or per \
                    telemetry record; `Vec::new`/`format!`/`Box::new`/`.clone()` \
                    there turns a lock-free fast path into an allocator \
                    rendezvous. Preallocate in the constructor or use fixed \
                    buffers.",
        kinds: &[Lib, Bin],
        crates: AllExcept(&[]),
        counter: "lint.findings.L013",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

impl Rule {
    /// Whether this rule scans the given crate/target combination.
    pub fn applies(&self, krate: &str, kind: FileKind) -> bool {
        if !self.kinds.contains(&kind) {
            return false;
        }
        match self.crates {
            AllExcept(list) => !list.contains(&krate),
            Only(list) => list.contains(&krate),
        }
    }
}
