//! The per-file analysis: token-stream matchers for each rule, brace-depth
//! tracking of `#[cfg(test)]` modules, and inline-suppression handling.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{FileKind, Rule, RULES};
use std::collections::BTreeMap;

/// Lifecycle of a finding through suppression and baseline matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Fails the gate when its rule is denied.
    Active,
    /// Silenced by an inline `oftec-lint: allow(...)` with a reason.
    Suppressed,
    /// Grandfathered by an entry in `lint-baseline.toml`.
    Baselined,
}

impl Status {
    /// Stable wire name for the JSONL report.
    pub fn name(self) -> &'static str {
        match self {
            Status::Active => "active",
            Status::Suppressed => "suppressed",
            Status::Baselined => "baselined",
        }
    }
}

/// One diagnostic at a `file:line:col` position.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub status: Status,
}

/// An `// oftec-lint: allow(L00X, reason)` directive; covers its own
/// line and the next.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rules: Vec<String>,
    pub line: u32,
}

/// Classifies a workspace-relative path into its owning crate and target
/// kind. Returns `None` for files outside any analyzable target.
pub fn classify(rel: &str) -> Option<(String, FileKind)> {
    let norm = rel.replace('\\', "/");
    if norm
        .split('/')
        .any(|seg| seg == "tests" || seg == "target" || seg == "vendor")
    {
        return None;
    }
    let krate = match norm.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next()?.to_string(),
        None => "repro".to_string(),
    };
    let kind = if norm.split('/').any(|seg| seg == "benches") {
        FileKind::Bench
    } else if norm.split('/').any(|seg| seg == "examples") {
        FileKind::Example
    } else if norm.contains("/src/bin/") || norm.ends_with("src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    Some((krate, kind))
}

/// Per-file scan statistics (merged into the run totals).
#[derive(Debug, Default)]
pub struct ScanStats {
    /// Findings silenced by an inline allow.
    pub suppressed: usize,
}

/// Everything one file's analysis produces: findings with suppression
/// status applied, the suppression table (the crate phase re-applies it
/// to cross-function findings), `// oftec-lint: hot` marker lines, and
/// the per-function dataflow summaries. Depends only on the file's own
/// bytes, which is what makes it cacheable by content hash.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
    pub hot_lines: Vec<u32>,
    pub summaries: Vec<crate::dataflow::FnSummary>,
    pub stats: ScanStats,
}

/// Scans one file's source, returning every finding (active and
/// suppressed) for the rules that apply to `(krate, kind)`.
pub fn scan_source(rel: &str, src: &str, krate: &str, kind: FileKind) -> (Vec<Finding>, ScanStats) {
    let analysis = analyze_source(rel, src, krate, kind);
    (analysis.findings, analysis.stats)
}

/// Full per-file analysis: token rules (L001–L007), the AST/dataflow
/// semantic rules that are file-local (L008, L012), suppression
/// handling, and function summaries for the crate phase (L009–L011,
/// L013).
pub fn analyze_source(rel: &str, src: &str, krate: &str, kind: FileKind) -> FileAnalysis {
    let toks = lex(src);
    let mut findings = Vec::new();

    // Pass 1: suppression and hot-marker directives (and their own
    // diagnostics) from line comments.
    let mut sups: Vec<Suppression> = Vec::new();
    let mut hot_lines: Vec<u32> = Vec::new();
    for t in &toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        parse_suppression(t, &mut sups, &mut hot_lines, &mut findings, rel);
    }

    // Pass 2: rule matchers over the code tokens.
    let code: Vec<Tok> = toks
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let code_refs: Vec<&Tok> = code.iter().collect();
    let active: Vec<&'static Rule> = RULES
        .iter()
        .filter(|r| r.id != "L000" && r.applies(krate, kind))
        .collect();
    match_rules(&code_refs, &active, rel, &mut findings);

    // Pass 3: parse, resolve, summarize, and run the file-local semantic
    // rules.
    let ast = crate::parser::parse_file(&code);
    let syms = crate::resolve::collect(&ast);
    let mut summaries = Vec::new();
    crate::ast::for_each_fn(&ast.items, &mut |def| {
        summaries.push(crate::dataflow::summarize(def, &syms, rel));
    });
    findings.extend(crate::semantic::file_findings(
        rel, krate, kind, &ast, &syms, &summaries,
    ));

    // Pass 4: apply suppressions. A directive covers findings on its own
    // line and the line below it.
    let stats = ScanStats {
        suppressed: apply_suppressions(&mut findings, &sups),
    };
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    FileAnalysis {
        findings,
        suppressions: sups,
        hot_lines,
        summaries,
        stats,
    }
}

/// Marks findings covered by an allow directive (own line or the line
/// above) as suppressed; returns how many were. Also used by the crate
/// phase on cross-function findings.
pub fn apply_suppressions(findings: &mut [Finding], sups: &[Suppression]) -> usize {
    let mut by_line: BTreeMap<u32, Vec<&Suppression>> = BTreeMap::new();
    for s in sups {
        by_line.entry(s.line).or_default().push(s);
        by_line.entry(s.line + 1).or_default().push(s);
    }
    let mut suppressed = 0;
    for f in findings {
        if f.rule == "L000" || f.status != Status::Active {
            continue;
        }
        let covered = by_line
            .get(&f.line)
            .is_some_and(|list| list.iter().any(|s| s.rules.iter().any(|r| r == f.rule)));
        if covered {
            f.status = Status::Suppressed;
            suppressed += 1;
        }
    }
    suppressed
}

/// Parses `// oftec-lint: allow(L00X[, L00Y…], reason)` and
/// `// oftec-lint: hot` out of a line comment. Malformed directives
/// become `L000` findings.
fn parse_suppression(
    t: &Tok,
    sups: &mut Vec<Suppression>,
    hot_lines: &mut Vec<u32>,
    findings: &mut Vec<Finding>,
    rel: &str,
) {
    let body = t.text.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("oftec-lint:") else {
        return;
    };
    if rest.trim() == "hot" {
        // Marks the next function as per-request hot: L013 forbids heap
        // allocation in it and everything it (transitively) calls.
        hot_lines.push(t.line);
        return;
    }
    let mut bad = |message: String| {
        findings.push(Finding {
            rule: "L000",
            file: rel.to_string(),
            line: t.line,
            col: t.col,
            message,
            status: Status::Active,
        });
    };
    let rest = rest.trim();
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
    else {
        bad(format!(
            "unrecognized oftec-lint directive `{rest}`; expected `allow(L00X, reason)`"
        ));
        return;
    };
    let mut rules = Vec::new();
    let mut reason = String::new();
    for (i, part) in inner.split(',').enumerate() {
        let part = part.trim();
        let is_id = part.len() == 4
            && part.starts_with('L')
            && part[1..].chars().all(|c| c.is_ascii_digit());
        if is_id && reason.is_empty() {
            rules.push(part.to_string());
        } else if !part.is_empty() {
            if !reason.is_empty() {
                reason.push_str(", ");
            }
            reason.push_str(part);
        } else if i == 0 {
            break;
        }
    }
    if rules.is_empty() {
        bad("suppression names no rule id; expected `allow(L00X, reason)`".to_string());
        return;
    }
    for id in &rules {
        if crate::rules::rule(id).is_none() {
            bad(format!("suppression names unknown rule `{id}`"));
            return;
        }
    }
    if reason.is_empty() {
        bad(format!(
            "suppression of {} is missing its reason; the reason documents why the \
             invariant does not apply here",
            rules.join("/")
        ));
        return;
    }
    sups.push(Suppression {
        rules,
        line: t.line,
    });
}

/// Is this rule in the active set for the current file?
fn enabled(active: &[&'static Rule], id: &str) -> bool {
    active.iter().any(|r| r.id == id)
}

/// Token-window stop set for the L004 operand scan.
fn is_operand_stop(t: &Tok) -> bool {
    if t.kind != TokKind::Punct {
        return matches!(t.kind, TokKind::Ident)
            && matches!(
                t.text.as_str(),
                "if" | "while" | "match" | "return" | "else"
            );
    }
    matches!(
        t.text.as_str(),
        "(" | ")"
            | "{"
            | "}"
            | "["
            | "]"
            | ","
            | ";"
            | "="
            | "=="
            | "!="
            | "<"
            | ">"
            | "<="
            | ">="
            | "&&"
            | "||"
            | "=>"
            | "->"
    )
}

fn float_in_window<'a>(window: impl Iterator<Item = &'a Tok>) -> bool {
    for t in window {
        if t.kind == TokKind::Float {
            return true;
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "f32" | "f64" | "NAN" | "INFINITY" | "NEG_INFINITY"
            )
        {
            return true;
        }
    }
    false
}

/// The single matcher pass: walks the code tokens once, tracking brace
/// depth and `#[cfg(test)]` regions, and emits raw findings.
fn match_rules(code: &[&Tok], active: &[&'static Rule], rel: &str, findings: &mut Vec<Finding>) {
    let is = |t: &Tok, kind: TokKind, text: &str| t.kind == kind && t.text == text;
    let push = |findings: &mut Vec<Finding>, rule: &'static str, t: &Tok, message: String| {
        findings.push(Finding {
            rule,
            file: rel.to_string(),
            line: t.line,
            col: t.col,
            message,
            status: Status::Active,
        });
    };

    let mut depth: i64 = 0;
    let mut test_regions: Vec<i64> = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];

        // Attributes are parsed wholesale (their contents are not code the
        // matchers should see). `#[cfg(test)]` arms the next brace.
        if is(t, TokKind::Punct, "#")
            && (i + 1 < code.len() && is(code[i + 1], TokKind::Punct, "["))
        {
            let (end, has_cfg_test) = parse_attr(code, i + 1);
            if has_cfg_test {
                pending_test = true;
            }
            i = end;
            continue;
        }
        if is(t, TokKind::Punct, "#")
            && i + 2 < code.len()
            && is(code[i + 1], TokKind::Punct, "!")
            && is(code[i + 2], TokKind::Punct, "[")
        {
            // Inner attribute: `#![cfg(test)]` marks the whole enclosing
            // scope — at depth 0 that is the entire file.
            let (end, has_cfg_test) = parse_attr(code, i + 2);
            if has_cfg_test {
                test_regions.push(depth - 1);
            }
            i = end;
            continue;
        }

        if is(t, TokKind::Punct, "{") {
            if pending_test {
                test_regions.push(depth);
                pending_test = false;
            }
            depth += 1;
            i += 1;
            continue;
        }
        if is(t, TokKind::Punct, "}") {
            depth -= 1;
            if test_regions.last() == Some(&depth) {
                test_regions.pop();
            }
            i += 1;
            continue;
        }
        if is(t, TokKind::Punct, ";") && pending_test {
            // `#[cfg(test)] use …;` — no braced region follows.
            pending_test = false;
        }
        if !test_regions.is_empty() {
            i += 1;
            continue;
        }

        // L001: `.unwrap()` / `.expect(`.
        if enabled(active, "L001")
            && is(t, TokKind::Punct, ".")
            && i + 2 < code.len()
            && code[i + 1].kind == TokKind::Ident
            && matches!(code[i + 1].text.as_str(), "unwrap" | "expect")
            && is(code[i + 2], TokKind::Punct, "(")
        {
            push(
                findings,
                "L001",
                code[i + 1],
                format!(
                    "`{}()` on a non-test path; return a typed error instead",
                    code[i + 1].text
                ),
            );
        }

        // L002: `thread::spawn`.
        if enabled(active, "L002")
            && t.kind == TokKind::Ident
            && t.text == "spawn"
            && i >= 2
            && is(code[i - 1], TokKind::Punct, "::")
            && code[i - 2].kind == TokKind::Ident
            && code[i - 2].text == "thread"
        {
            push(
                findings,
                "L002",
                t,
                "raw `thread::spawn`; use the `oftec-parallel` scoped executor".to_string(),
            );
        }

        // L003: `Instant::now` / `SystemTime::now`.
        if enabled(active, "L003")
            && t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "Instant" | "SystemTime")
            && i + 2 < code.len()
            && is(code[i + 1], TokKind::Punct, "::")
            && code[i + 2].kind == TokKind::Ident
            && code[i + 2].text == "now"
        {
            push(
                findings,
                "L003",
                t,
                format!("`{}::now` in a deterministic solver crate", t.text),
            );
        }

        // L004: `==`/`!=` with a float literal in an operand window.
        if enabled(active, "L004")
            && t.kind == TokKind::Punct
            && matches!(t.text.as_str(), "==" | "!=")
        {
            let left = code[..i]
                .iter()
                .rev()
                .take_while(|p| !is_operand_stop(p))
                .take(8)
                .copied();
            let right = code[i + 1..]
                .iter()
                .take_while(|p| !is_operand_stop(p))
                .take(8)
                .copied();
            if float_in_window(left) || float_in_window(right) {
                push(
                    findings,
                    "L004",
                    t,
                    format!("exact float `{}` comparison; use a tolerance", t.text),
                );
            }
        }

        // L005: printing macros in library code.
        if enabled(active, "L005")
            && t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
            && i + 1 < code.len()
            && is(code[i + 1], TokKind::Punct, "!")
        {
            push(
                findings,
                "L005",
                t,
                format!(
                    "`{}!` in library code; emit a telemetry event instead",
                    t.text
                ),
            );
        }

        // L006: panicking macros in library code.
        if enabled(active, "L006")
            && t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && i + 1 < code.len()
            && is(code[i + 1], TokKind::Punct, "!")
        {
            push(
                findings,
                "L006",
                t,
                format!(
                    "`{}!` on a non-test library path; return a typed error",
                    t.text
                ),
            );
        }

        // L007: `pub fn solve*`/`run` returning `Result` without
        // `#[must_use]`.
        if enabled(active, "L007") && t.kind == TokKind::Ident && t.text == "pub" {
            check_entry_point(code, i, rel, findings);
        }

        i += 1;
    }
}

/// Parses one attribute group starting at the `[` token index; returns
/// the index just past the closing `]` and whether the attribute is
/// exactly `cfg(… test …)`.
fn parse_attr(code: &[&Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut j = open;
    let mut is_cfg = false;
    let mut has_test = false;
    let mut negated = false;
    while j < code.len() {
        let t = code[j];
        if t.kind == TokKind::Punct && t.text == "[" {
            depth += 1;
        } else if t.kind == TokKind::Punct && t.text == "]" {
            depth -= 1;
            if depth == 0 {
                return (j + 1, is_cfg && has_test && !negated);
            }
        } else if t.kind == TokKind::Ident {
            if j == open + 1 {
                is_cfg = t.text == "cfg";
            } else if t.text == "not" {
                // `#[cfg(not(test))]` compiles *outside* tests.
                negated = true;
            } else if t.text == "test" {
                has_test = true;
            }
        }
        j += 1;
    }
    (j, false)
}

/// L007 helper: from a `pub` token, checks whether it introduces a
/// solver entry point (`fn solve*` / `fn run`) returning `Result` and
/// whether a `#[must_use]` attribute precedes it.
fn check_entry_point(code: &[&Tok], pub_idx: usize, rel: &str, findings: &mut Vec<Finding>) {
    let mut j = pub_idx + 1;
    // `pub(crate)`/`pub(super)` visibility is not public API.
    if j < code.len() && code[j].kind == TokKind::Punct && code[j].text == "(" {
        return;
    }
    if !(j < code.len() && code[j].kind == TokKind::Ident && code[j].text == "fn") {
        return;
    }
    j += 1;
    let Some(name) = code.get(j) else { return };
    if name.kind != TokKind::Ident {
        return;
    }
    if !(name.text.starts_with("solve") || name.text == "run") {
        return;
    }
    // Scan the signature for `-> … Result …` before the body / `;`.
    let mut saw_arrow = false;
    let mut returns_result = false;
    for t in code.iter().skip(j + 1).take(64) {
        if t.kind == TokKind::Punct && (t.text == "{" || t.text == ";") {
            break;
        }
        if t.kind == TokKind::Punct && t.text == "->" {
            saw_arrow = true;
        }
        if saw_arrow && t.kind == TokKind::Ident && t.text == "Result" {
            returns_result = true;
            break;
        }
    }
    if !returns_result {
        return;
    }
    // Walk backwards over contiguous attribute groups looking for
    // `must_use`.
    let mut k = pub_idx;
    while k >= 2 && code[k - 1].kind == TokKind::Punct && code[k - 1].text == "]" {
        let mut depth = 0i64;
        let mut m = k - 1;
        loop {
            let t = code[m];
            if t.kind == TokKind::Punct && t.text == "]" {
                depth += 1;
            } else if t.kind == TokKind::Punct && t.text == "[" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if m == 0 {
                return;
            }
            m -= 1;
        }
        if code[m..k]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "must_use")
        {
            return;
        }
        // Step past the `#` introducing this attribute.
        k = m.saturating_sub(1);
    }
    findings.push(Finding {
        rule: "L007",
        file: rel.to_string(),
        line: name.line,
        col: name.col,
        message: format!(
            "public solver entry point `{}` returns `Result` without `#[must_use]`",
            name.text
        ),
        status: Status::Active,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Active `(rule, line)` pairs from scanning `src` as `x.rs`.
    fn active(src: &str, krate: &str, kind: FileKind) -> Vec<(&'static str, u32)> {
        let (findings, _) = scan_source("x.rs", src, krate, kind);
        findings
            .iter()
            .filter(|f| f.status == Status::Active)
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/thermal/src/model.rs"),
            Some(("thermal".to_string(), FileKind::Lib))
        );
        assert_eq!(
            classify("crates/serve/src/bin/loadgen.rs"),
            Some(("serve".to_string(), FileKind::Bin))
        );
        assert_eq!(
            classify("examples/demo.rs"),
            Some(("repro".to_string(), FileKind::Example))
        );
        assert_eq!(
            classify("crates/bench/benches/solve.rs"),
            Some(("bench".to_string(), FileKind::Bench))
        );
        assert_eq!(classify("crates/core/tests/integration.rs"), None);
        assert_eq!(classify("vendor/dep/src/lib.rs"), None);
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "
fn live() { a.unwrap(); }
#[cfg(test)]
mod tests {
    fn hidden() { b.unwrap(); }
}
fn live_again() { c.unwrap(); }
";
        assert_eq!(
            active(src, "core", FileKind::Lib),
            [("L001", 2), ("L001", 7)]
        );
    }

    #[test]
    fn cfg_not_test_is_still_scanned() {
        let src = "#[cfg(not(test))]\nmod m { fn f() { a.unwrap(); } }\n";
        assert_eq!(active(src, "core", FileKind::Lib), [("L001", 2)]);
    }

    #[test]
    fn cfg_attr_does_not_arm_test_regions() {
        let src = "#[cfg_attr(docsrs, doc(cfg(test)))]\nfn f() { a.unwrap(); }\n";
        assert_eq!(active(src, "core", FileKind::Lib), [("L001", 2)]);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn f() { a.unwrap(); }\n";
        assert!(active(src, "core", FileKind::Lib).is_empty());
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let src = "\
// oftec-lint: allow(L001, seeded fixture exercising the suppression path)
fn f() { a.unwrap(); }
fn g() { b.unwrap(); }
";
        let (findings, stats) = scan_source("x.rs", src, "core", FileKind::Lib);
        assert_eq!(stats.suppressed, 1);
        let statuses: Vec<Status> = findings.iter().map(|f| f.status).collect();
        assert_eq!(statuses, [Status::Suppressed, Status::Active]);
    }

    #[test]
    fn suppression_without_reason_is_flagged_and_inert() {
        let src = "// oftec-lint: allow(L001)\nfn f() { a.unwrap(); }\n";
        let found = active(src, "core", FileKind::Lib);
        assert!(found.contains(&("L000", 1)), "missing reason is a finding");
        assert!(
            found.contains(&("L001", 2)),
            "the bad allow silences nothing"
        );
    }

    #[test]
    fn suppression_with_unknown_rule_is_flagged() {
        let src = "// oftec-lint: allow(L999, no such rule)\nfn f() {}\n";
        assert_eq!(active(src, "core", FileKind::Lib), [("L000", 1)]);
    }

    #[test]
    fn unrecognized_directive_is_flagged() {
        let src = "// oftec-lint: disable-next-line\nfn f() {}\n";
        assert_eq!(active(src, "core", FileKind::Lib), [("L000", 1)]);
    }

    #[test]
    fn l001_ignores_unwrap_or_variants() {
        let src = "fn f() { a.unwrap_or_default(); b.unwrap_or(0); }\n";
        assert!(active(src, "core", FileKind::Lib).is_empty());
    }

    #[test]
    fn l002_thread_spawn_scoped_to_non_parallel_crates() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(active(src, "core", FileKind::Lib), [("L002", 1)]);
        assert!(active(src, "parallel", FileKind::Lib).is_empty());
    }

    #[test]
    fn l003_wall_clock_allowlist() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(active(src, "thermal", FileKind::Lib), [("L003", 1)]);
        assert!(active(src, "bench", FileKind::Lib).is_empty());
    }

    #[test]
    fn l004_float_equality_in_kernel_crates_only() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(active(src, "linalg", FileKind::Lib), [("L004", 1)]);
        assert!(active(src, "power", FileKind::Lib).is_empty());
    }

    #[test]
    fn l004_integer_equality_is_fine() {
        let src = "fn f(x: usize) -> bool { x == 0 }\n";
        assert!(active(src, "linalg", FileKind::Lib).is_empty());
    }

    #[test]
    fn l005_and_l006_are_lib_only() {
        let src = "fn f() { println!(\"x\"); panic!(\"boom\"); }\n";
        assert_eq!(
            active(src, "core", FileKind::Lib),
            [("L005", 1), ("L006", 1)]
        );
        assert!(active(src, "core", FileKind::Bin).is_empty());
    }

    #[test]
    fn l007_entry_point_must_use() {
        let bare = "pub fn solve_x(a: u32) -> Result<(), E> { Ok(()) }\n";
        assert_eq!(active(bare, "thermal", FileKind::Lib), [("L007", 1)]);
        let annotated =
            "#[must_use = \"check the outcome\"]\npub fn solve_x(a: u32) -> Result<(), E> { Ok(()) }\n";
        assert!(active(annotated, "thermal", FileKind::Lib).is_empty());
        let crate_private = "pub(crate) fn solve_x() -> Result<(), E> { f() }\n";
        assert!(active(crate_private, "thermal", FileKind::Lib).is_empty());
        let non_result = "pub fn solve_x(a: u32) -> u32 { a }\n";
        assert!(active(non_result, "thermal", FileKind::Lib).is_empty());
    }
}
