//! The `oftec-lint` binary: CI gate and developer tool.
//!
//! ```text
//! oftec-lint [--root DIR] [--format human|json|sarif] [--deny all|L001,L005]
//!            [--baseline PATH] [--update-baseline] [--list-rules]
//!            [--threads N] [--no-cache] [--cache PATH] [--sarif-out PATH]
//!            [--telemetry-json PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 denied findings or stale baseline entries,
//! 2 usage or I/O error.

use oftec_lint::{
    baseline, cache, render_human, render_jsonl, run, sarif, DenySet, RunConfig, Status, RULES,
};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    deny: DenySet,
    format: Format,
    list_rules: bool,
    update_baseline: bool,
    threads: Option<usize>,
    no_cache: bool,
    cache: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    telemetry_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        deny: DenySet::All,
        format: Format::Human,
        list_rules: false,
        update_baseline: false,
        threads: None,
        no_cache: false,
        cache: None,
        sarif_out: None,
        telemetry_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--deny" => {
                let v = value("--deny")?;
                args.deny = if v == "all" {
                    DenySet::All
                } else {
                    DenySet::Rules(v.split(',').map(|s| s.trim().to_string()).collect())
                };
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "json" => Format::Json,
                    "human" => Format::Human,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--threads" => {
                let v = value("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads expects a count, got `{v}`"))?;
                args.threads = Some(n.max(1));
            }
            "--no-cache" => args.no_cache = true,
            "--cache" => args.cache = Some(PathBuf::from(value("--cache")?)),
            "--sarif-out" => args.sarif_out = Some(PathBuf::from(value("--sarif-out")?)),
            "--list-rules" => args.list_rules = true,
            "--update-baseline" => args.update_baseline = true,
            "--telemetry-json" => args.telemetry_json = Some(value("--telemetry-json")?),
            "--help" | "-h" => {
                println!(
                    "usage: oftec-lint [--root DIR] [--format human|json|sarif] \
                     [--deny all|L001,...] [--baseline PATH] [--update-baseline] \
                     [--threads N] [--no-cache] [--cache PATH] [--sarif-out PATH] \
                     [--list-rules] [--telemetry-json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn list_rules() {
    println!("{:<5} {:<8} title", "rule", "scope");
    for r in RULES {
        let scope = match r.crates {
            oftec_lint::rules::CrateScope::AllExcept([]) => "all".to_string(),
            oftec_lint::rules::CrateScope::AllExcept(x) => format!("all -{}", x.join(",-")),
            oftec_lint::rules::CrateScope::Only(x) => x.join(","),
        };
        println!("{:<5} {:<8} {}", r.id, kinds_short(r.kinds), r.title);
        println!("      crates: {scope}");
    }
}

fn kinds_short(kinds: &[oftec_lint::FileKind]) -> String {
    kinds
        .iter()
        .map(|k| match k {
            oftec_lint::FileKind::Lib => "lib",
            oftec_lint::FileKind::Bin => "bin",
            oftec_lint::FileKind::Example => "ex",
            oftec_lint::FileKind::Bench => "bench",
        })
        .collect::<Vec<_>>()
        .join("+")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("oftec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if args.telemetry_json.is_some() {
        oftec_telemetry::set_collecting(true);
    }
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
    let cache_path = if args.no_cache {
        None
    } else {
        Some(
            args.cache
                .clone()
                .unwrap_or_else(|| cache::default_path(&args.root)),
        )
    };
    let config = RunConfig {
        root: args.root.clone(),
        baseline: baseline_path.clone(),
        deny: args.deny.clone(),
        threads: args.threads,
        cache: cache_path,
    };
    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("oftec-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let entries: Vec<baseline::BaselineEntry> = report
            .findings
            .iter()
            .filter(|f| matches!(f.status, Status::Active | Status::Baselined))
            .map(|f| baseline::BaselineEntry {
                rule: f.rule.to_string(),
                file: f.file.clone(),
                line: f.line,
                note: f.message.clone(),
            })
            .collect();
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&entries)) {
            eprintln!("oftec-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "oftec-lint: wrote {} entries to {}",
            entries.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.sarif_out {
        if let Err(e) = std::fs::write(path, sarif::render(&report, &args.deny)) {
            eprintln!("oftec-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match args.format {
        Format::Json => print!("{}", render_jsonl(&report)),
        Format::Sarif => print!("{}", sarif::render(&report, &args.deny)),
        Format::Human => print!("{}", render_human(&report, &args.deny)),
    }

    if let Some(path) = &args.telemetry_json {
        oftec_telemetry::flush();
        if let Err(e) = std::fs::write(path, oftec_telemetry::snapshot().to_json()) {
            eprintln!("oftec-lint: cannot write telemetry snapshot {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if report.is_clean(&args.deny) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
