//! The `oftec-lint` binary: CI gate and developer tool.
//!
//! ```text
//! oftec-lint [--root DIR] [--format human|json] [--deny all|L001,L005]
//!            [--baseline PATH] [--update-baseline] [--list-rules]
//!            [--telemetry-json PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 denied findings or stale baseline entries,
//! 2 usage or I/O error.

use oftec_lint::{baseline, render_human, render_jsonl, run, DenySet, RunConfig, Status, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    deny: DenySet,
    json: bool,
    list_rules: bool,
    update_baseline: bool,
    telemetry_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        deny: DenySet::All,
        json: false,
        list_rules: false,
        update_baseline: false,
        telemetry_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--deny" => {
                let v = value("--deny")?;
                args.deny = if v == "all" {
                    DenySet::All
                } else {
                    DenySet::Rules(v.split(',').map(|s| s.trim().to_string()).collect())
                };
            }
            "--format" => {
                args.json = match value("--format")?.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--list-rules" => args.list_rules = true,
            "--update-baseline" => args.update_baseline = true,
            "--telemetry-json" => args.telemetry_json = Some(value("--telemetry-json")?),
            "--help" | "-h" => {
                println!(
                    "usage: oftec-lint [--root DIR] [--format human|json] \
                     [--deny all|L001,...] [--baseline PATH] [--update-baseline] \
                     [--list-rules] [--telemetry-json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn list_rules() {
    println!("{:<5} {:<8} title", "rule", "scope");
    for r in RULES {
        let scope = match r.crates {
            oftec_lint::rules::CrateScope::AllExcept([]) => "all".to_string(),
            oftec_lint::rules::CrateScope::AllExcept(x) => format!("all -{}", x.join(",-")),
            oftec_lint::rules::CrateScope::Only(x) => x.join(","),
        };
        println!("{:<5} {:<8} {}", r.id, kinds_short(r.kinds), r.title);
        println!("      crates: {scope}");
    }
}

fn kinds_short(kinds: &[oftec_lint::FileKind]) -> String {
    kinds
        .iter()
        .map(|k| match k {
            oftec_lint::FileKind::Lib => "lib",
            oftec_lint::FileKind::Bin => "bin",
            oftec_lint::FileKind::Example => "ex",
            oftec_lint::FileKind::Bench => "bench",
        })
        .collect::<Vec<_>>()
        .join("+")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("oftec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if args.telemetry_json.is_some() {
        oftec_telemetry::set_collecting(true);
    }
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
    let config = RunConfig {
        root: args.root.clone(),
        baseline: baseline_path.clone(),
        deny: args.deny.clone(),
    };
    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("oftec-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let entries: Vec<baseline::BaselineEntry> = report
            .findings
            .iter()
            .filter(|f| matches!(f.status, Status::Active | Status::Baselined))
            .map(|f| baseline::BaselineEntry {
                rule: f.rule.to_string(),
                file: f.file.clone(),
                line: f.line,
                note: f.message.clone(),
            })
            .collect();
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&entries)) {
            eprintln!("oftec-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "oftec-lint: wrote {} entries to {}",
            entries.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", render_jsonl(&report));
    } else {
        print!("{}", render_human(&report, &args.deny));
    }

    if let Some(path) = &args.telemetry_json {
        oftec_telemetry::flush();
        if let Err(e) = std::fs::write(path, oftec_telemetry::snapshot().to_json()) {
            eprintln!("oftec-lint: cannot write telemetry snapshot {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if report.is_clean(&args.deny) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
