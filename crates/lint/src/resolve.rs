//! Per-file symbol resolution for the semantic rules.
//!
//! Scope is deliberately one file: imports (`use` leaves and aliases),
//! struct field types, and statics declared in the same file. That is the
//! soundness boundary of the incremental cache — a file's per-file
//! findings and summaries depend only on its own bytes — and in practice
//! covers the workspace idiom, where a type's lock/collection fields live
//! next to the impl that uses them. Cross-file composition (call graphs,
//! lock graphs) happens over summaries in the crate phase.

use std::collections::BTreeMap;

use crate::ast::{File, Item};

/// Symbols visible inside one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// Local name (use-leaf or alias) → full imported path segments.
    pub imports: BTreeMap<String, Vec<String>>,
    /// Struct name → field name → normalized type text.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
    /// `static`/`const` item name → normalized type text.
    pub statics: BTreeMap<String, String>,
}

/// Collects the symbols of a parsed file, descending into non-test
/// modules and impl blocks.
pub fn collect(file: &File) -> FileSymbols {
    let mut syms = FileSymbols::default();
    collect_items(&file.items, &mut syms);
    syms
}

fn collect_items(items: &[Item], syms: &mut FileSymbols) {
    for item in items {
        match item {
            Item::Use { path, alias, .. } => {
                let local = alias
                    .clone()
                    .or_else(|| path.last().cloned())
                    .unwrap_or_default();
                if !local.is_empty() && local != "self" {
                    syms.imports.insert(local, path.clone());
                }
                // `use a::b::{self, C}` — the `self` leaf imports `b`.
                if alias.is_none() && path.last().is_some_and(|s| s == "self") {
                    if let Some(name) = path.iter().rev().nth(1) {
                        syms.imports
                            .insert(name.clone(), path[..path.len() - 1].to_vec());
                    }
                }
            }
            Item::Struct { name, fields, .. } => {
                let entry = syms.structs.entry(name.clone()).or_default();
                for f in fields {
                    entry.insert(f.name.clone(), f.ty.clone());
                }
            }
            Item::Static { name, ty, .. } => {
                syms.statics.insert(name.clone(), ty.clone());
            }
            Item::Impl { items, .. } => collect_items(items, syms),
            Item::Mod {
                items,
                cfg_test: false,
                ..
            } => collect_items(items, syms),
            _ => {}
        }
    }
}

impl FileSymbols {
    /// Resolves a local name through imports to its canonical leaf: the
    /// final path segment of the import, or the name itself when not
    /// imported. `Map` under `use std::collections::HashMap as Map`
    /// resolves to `HashMap`.
    pub fn canonical_leaf<'a>(&'a self, name: &'a str) -> &'a str {
        match self.imports.get(name) {
            Some(path) => path.last().map_or(name, String::as_str),
            None => name,
        }
    }

    /// Field type of `type_name.field`, when the struct is declared in
    /// this file.
    pub fn field_type(&self, type_name: &str, field: &str) -> Option<&str> {
        self.structs
            .get(type_name)
            .and_then(|fields| fields.get(field))
            .map(String::as_str)
    }
}

/// Extracts the head path of a normalized type text: the first real type
/// path, skipping references, raw pointers, lifetimes, and the
/// `dyn`/`impl`/`mut`/`const`/`ref` qualifiers. `&'a mut
/// std::sync::Mutex<Inner>` yields `["std","sync","Mutex"]`.
pub fn head_path(ty: &str) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let bytes: Vec<char> = ty.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\'' {
            // Lifetime: skip the tick and its name.
            i += 1;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            if matches!(word.as_str(), "dyn" | "impl" | "mut" | "const" | "ref") && segs.is_empty()
            {
                continue;
            }
            segs.push(word);
            // Continue only through an immediate `::`.
            if bytes.get(i) == Some(&':') && bytes.get(i + 1) == Some(&':') {
                i += 2;
                continue;
            }
            break;
        }
        if matches!(c, '&' | '*' | ' ') {
            i += 1;
            continue;
        }
        if segs.is_empty() {
            // `(A, B)`, `[T]`, `<...>` before any path: opaque head.
            break;
        }
        break;
    }
    segs
}

/// The head type name of a normalized type text (`Mutex<Inner>` →
/// `Mutex`), resolved through the file's imports when one segment long.
pub fn head_name<'a>(ty: &'a str, syms: &'a FileSymbols) -> String {
    let segs = head_path(ty);
    match segs.len() {
        0 => String::new(),
        1 => syms.canonical_leaf(&segs[0]).to_string(),
        _ => segs.last().cloned().unwrap_or_default(),
    }
}

/// The contents of the first top-level `<…>` group, split at top-level
/// commas: `Mutex<HashMap<K,V>>` → `["HashMap<K,V>"]`.
pub fn generic_args(ty: &str) -> Vec<String> {
    let Some(open) = ty.find('<') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for c in ty[open..].chars() {
        match c {
            '<' => {
                depth += 1;
                if depth > 1 {
                    cur.push(c);
                }
            }
            '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                cur.push(c);
            }
            ',' if depth == 1 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => {
                if depth >= 1 {
                    cur.push(c);
                }
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Whether a type text mentions `name` as a standalone word (word
/// boundaries on both sides), e.g. to find `HashMap` inside
/// `Mutex<HashMap<K,V>>` but not inside `MyHashMapLike`.
pub fn mentions_word(ty: &str, name: &str) -> bool {
    let mut start = 0usize;
    while let Some(off) = ty[start..].find(name) {
        let at = start + off;
        let before_ok = at == 0
            || !ty[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + name.len();
        let after_ok = end >= ty.len()
            || !ty[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + name.len().max(1);
    }
    false
}

/// Whether `name` (after import resolution) is an unordered std
/// collection whose iteration order depends on hasher state.
pub fn is_unordered_collection(name: &str, syms: &FileSymbols) -> bool {
    matches!(syms.canonical_leaf(name), "HashMap" | "HashSet")
}

/// Whether the type text contains an unordered collection anywhere in its
/// structure (fields like `Mutex<HashMap<K,V>>` count).
pub fn type_contains_unordered(ty: &str, syms: &FileSymbols) -> bool {
    for word in ["HashMap", "HashSet"] {
        if mentions_word(ty, word) {
            return true;
        }
    }
    // Aliased imports: any import whose leaf is HashMap/HashSet makes its
    // local alias count too.
    syms.imports.iter().any(|(local, path)| {
        path.last()
            .is_some_and(|leaf| (leaf == "HashMap" || leaf == "HashSet") && leaf != local)
            && mentions_word(ty, local)
    })
}

/// Lock classification for the deadlock / blocking rules.
pub fn is_lock_type(head: &str) -> bool {
    matches!(head, "Mutex" | "RwLock")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};
    use crate::parser::parse_file;

    fn syms(src: &str) -> FileSymbols {
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        collect(&parse_file(&toks))
    }

    #[test]
    fn imports_and_aliases_resolve() {
        let s = syms(
            "use std::collections::{HashMap, BTreeMap as Ordered};\n\
             use std::sync::Mutex;\n",
        );
        assert_eq!(s.canonical_leaf("HashMap"), "HashMap");
        assert_eq!(s.canonical_leaf("Ordered"), "BTreeMap");
        assert_eq!(s.canonical_leaf("Mutex"), "Mutex");
        assert_eq!(s.canonical_leaf("Unknown"), "Unknown");
    }

    #[test]
    fn struct_fields_and_head_paths() {
        let s = syms("struct Inner { map: HashMap<K, V> }\nstruct R { inner: Mutex<Inner> }\n");
        assert_eq!(s.field_type("Inner", "map"), Some("HashMap<K,V>"));
        assert_eq!(
            head_path("&'a mut std::sync::Mutex<Inner>"),
            ["std", "sync", "Mutex"]
        );
        assert_eq!(head_path("dyn Fn()"), ["Fn"]);
        assert_eq!(head_name("Mutex<Inner>", &s), "Mutex");
        assert_eq!(generic_args("Mutex<HashMap<K,V>>"), ["HashMap<K,V>"]);
        assert_eq!(generic_args("HashMap<K,Vec<V>>"), ["K", "Vec<V>"]);
    }

    #[test]
    fn unordered_detection_sees_aliases_and_nesting() {
        let s =
            syms("use std::collections::HashMap as Fast;\nstruct S { m: Mutex<Fast<u32,u32>> }\n");
        assert!(type_contains_unordered("Mutex<Fast<u32,u32>>", &s));
        assert!(type_contains_unordered("HashMap<K,V>", &s));
        assert!(!type_contains_unordered("BTreeMap<K,V>", &s));
        assert!(!type_contains_unordered("MyHashMapLike", &s));
        assert!(is_unordered_collection("Fast", &s));
    }
}
