//! **oftec-lint** — workspace-wide static analysis enforcing the OFTEC
//! repository's solver, determinism, and unit-safety invariants.
//!
//! The compiler cannot see the contracts the last PRs established: no
//! panics on solver paths (the typed `OftecError` taxonomy), bit-identical
//! results at any `OFTEC_THREADS` (the determinism contract), telemetry
//! instead of ad-hoc printing. This crate is a std-only analysis pass with
//! its own lightweight Rust lexer and a token-stream rule engine that
//! walks every `.rs` file in the workspace (skipping `target/`, `vendor/`,
//! `tests/` directories, and `#[cfg(test)]` modules tracked by brace
//! depth) and emits `file:line:col` diagnostics as human text and JSONL.
//!
//! Escape hatches, in order of preference:
//! 1. fix the finding;
//! 2. `// oftec-lint: allow(L00X, reason)` on or above the offending line
//!    — the reason is mandatory and audited (a missing one is itself a
//!    diagnostic, `L000`);
//! 3. a `lint-baseline.toml` entry for grandfathered findings, which may
//!    only shrink (stale entries fail the gate).
//!
//! See DESIGN.md §13 for the rule table and rationale.

pub mod ast;
pub mod baseline;
pub mod cache;
pub mod dataflow;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod semantic;

pub use baseline::BaselineEntry;
pub use engine::{classify, scan_source, Finding, Status};
pub use rules::{FileKind, Rule, RULES};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Which rules fail the gate.
#[derive(Debug, Clone)]
pub enum DenySet {
    /// Every rule is fatal (`--deny all`, the CI configuration).
    All,
    /// Only the listed rule ids are fatal; the rest report as warnings.
    Rules(Vec<String>),
}

impl DenySet {
    /// Whether a finding of `rule` fails the gate.
    pub fn denies(&self, rule: &str) -> bool {
        match self {
            DenySet::All => true,
            DenySet::Rules(ids) => ids.iter().any(|r| r == rule),
        }
    }
}

/// Configuration for one analysis run.
#[derive(Debug)]
pub struct RunConfig {
    /// Workspace root to walk.
    pub root: PathBuf,
    /// Baseline path (`<root>/lint-baseline.toml` by default).
    pub baseline: PathBuf,
    /// Rules that fail the gate.
    pub deny: DenySet,
    /// Worker threads for the per-file phase; `None` follows
    /// `OFTEC_THREADS` like every other workspace batch.
    pub threads: Option<usize>,
    /// Incremental cache path; `None` disables caching.
    pub cache: Option<PathBuf>,
}

impl RunConfig {
    /// The standard configuration for a workspace root: baseline beside
    /// the manifest, cache under `target/`, deny-all gate.
    pub fn for_root(root: PathBuf) -> Self {
        RunConfig {
            baseline: root.join("lint-baseline.toml"),
            cache: Some(cache::default_path(&root)),
            root,
            deny: DenySet::All,
            threads: None,
        }
    }
}

/// Everything one run produced, for both report formats and the gate
/// decision.
#[derive(Debug)]
pub struct RunReport {
    /// Every finding, all statuses, sorted by `(file, line, col)`.
    pub findings: Vec<Finding>,
    /// Baseline entries that matched no finding (the gate fails on any).
    pub stale: Vec<BaselineEntry>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings silenced by inline allows.
    pub suppressed: usize,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
}

impl RunReport {
    /// Active findings whose rule is denied.
    pub fn denied<'a>(&'a self, deny: &'a DenySet) -> impl Iterator<Item = &'a Finding> {
        self.findings
            .iter()
            .filter(move |f| f.status == Status::Active && deny.denies(f.rule))
    }

    /// Gate verdict: clean means no denied findings and no stale baseline
    /// entries.
    pub fn is_clean(&self, deny: &DenySet) -> bool {
        self.stale.is_empty() && self.denied(deny).next().is_none()
    }

    /// Active findings per rule id, in rule-table order.
    pub fn per_rule(&self) -> Vec<(&'static str, usize)> {
        RULES
            .iter()
            .map(|r| {
                let n = self
                    .findings
                    .iter()
                    .filter(|f| f.status == Status::Active && f.rule == r.id)
                    .count();
                (r.id, n)
            })
            .collect()
    }
}

/// Collects every analyzable `.rs` file under `root`, sorted for a
/// deterministic report. Skips `target/`, `vendor/`, `tests/`
/// directories, and dot-directories.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if matches!(name.as_ref(), "target" | "vendor" | "tests") || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the full analysis.
///
/// The per-file phase (lex/parse/dataflow and the file-local rules) runs
/// in parallel over `oftec-parallel` with results assembled in path
/// order, so the report is byte-identical at any `OFTEC_THREADS`. Files
/// whose content hash matches the incremental cache skip analysis
/// entirely. The crate phase (L009–L011, L013) composes the (cached or
/// fresh) function summaries and always recomputes. Telemetry counters
/// (`lint.*`) are recorded on the calling thread.
pub fn run(config: &RunConfig) -> Result<RunReport, String> {
    let _span = oftec_telemetry::span("lint.scan");
    let baseline_entries = baseline::load(&config.baseline)?;
    let files = collect_files(&config.root).map_err(|e| format!("walking workspace: {e}"))?;

    // Classify every path up front; unclassifiable files are out of scope.
    let work: Vec<(PathBuf, String, String, FileKind)> = files
        .into_iter()
        .filter_map(|path| {
            let rel = path
                .strip_prefix(&config.root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let (krate, kind) = classify(&rel)?;
            Some((path, rel, krate, kind))
        })
        .collect();

    let mut cached = config
        .cache
        .as_ref()
        .map(|p| cache::load(p))
        .unwrap_or_default();

    // Per-file phase, parallel. Each worker depends only on its own
    // file's bytes; hits return `None` and are replayed from the cache
    // during the in-order assembly below.
    let threads = config.threads.unwrap_or_else(oftec_parallel::thread_count);
    type FileOut = Result<(u64, Option<engine::FileAnalysis>), String>;
    let cache_ref = &cached;
    let results = oftec_parallel::par_try_map_indexed_with(
        threads,
        &work,
        |_, (path, rel, krate, kind)| -> FileOut {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let hash = cache::content_hash(src.as_bytes());
            if cache_ref.hit(rel, hash) {
                return Ok((hash, None));
            }
            Ok((hash, Some(engine::analyze_source(rel, &src, krate, *kind))))
        },
    );

    // In-order assembly: path order, independent of worker scheduling.
    let mut per_file: Vec<(String, String, FileKind, u64, engine::FileAnalysis)> =
        Vec::with_capacity(work.len());
    let mut cache_hits = 0usize;
    for ((_, rel, krate, kind), result) in work.into_iter().zip(results) {
        let (hash, fresh) = result.map_err(|p| format!("lint worker for {rel}: {p}"))??;
        let analysis = match fresh {
            Some(a) => a,
            None => {
                cache_hits += 1;
                cached
                    .take(&rel)
                    .ok_or_else(|| format!("cache hit for {rel} vanished"))?
            }
        };
        per_file.push((rel, krate, kind, hash, analysis));
    }

    let files_scanned = per_file.len();
    let mut suppressed = 0usize;
    let mut findings: Vec<Finding> = Vec::new();
    for (_, _, _, _, a) in &per_file {
        suppressed += a.stats.suppressed;
        findings.extend(a.findings.iter().cloned());
    }

    // Crate phase over the composed summaries, then the per-file
    // suppression tables applied to its cross-function findings.
    let facts: Vec<semantic::FileFacts> = per_file
        .iter()
        .map(|(rel, krate, kind, _, a)| semantic::FileFacts {
            rel,
            krate,
            kind: *kind,
            summaries: &a.summaries,
            hot_lines: &a.hot_lines,
        })
        .collect();
    let mut by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in semantic::crate_findings(&facts) {
        by_file.entry(f.file.clone()).or_default().push(f);
    }
    let sup_of: BTreeMap<&str, &Vec<engine::Suppression>> = per_file
        .iter()
        .map(|(rel, _, _, _, a)| (rel.as_str(), &a.suppressions))
        .collect();
    for (file, mut group) in by_file {
        if let Some(sups) = sup_of.get(file.as_str()) {
            suppressed += engine::apply_suppressions(&mut group, sups);
        }
        findings.append(&mut group);
    }

    // Baseline matching: an entry absorbs at most one finding.
    let mut used = vec![false; baseline_entries.len()];
    let mut baselined = 0usize;
    for f in &mut findings {
        if f.status != Status::Active {
            continue;
        }
        let hit = baseline_entries
            .iter()
            .enumerate()
            .find(|(i, e)| !used[*i] && e.rule == f.rule && e.file == f.file && e.line == f.line);
        if let Some((i, _)) = hit {
            used[i] = true;
            f.status = Status::Baselined;
            baselined += 1;
        }
    }
    let stale: Vec<BaselineEntry> = baseline_entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();

    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));

    if let Some(path) = &config.cache {
        let entries: Vec<(String, u64, &engine::FileAnalysis)> = per_file
            .iter()
            .map(|(rel, _, _, hash, a)| (rel.clone(), *hash, a))
            .collect();
        cache::save(path, &entries);
    }

    let report = RunReport {
        findings,
        stale,
        files_scanned,
        suppressed,
        baselined,
    };
    oftec_telemetry::counter_add("lint.cache_hits", cache_hits as u64);
    record_telemetry(&report);
    Ok(report)
}

/// Mirrors the run statistics into the `oftec-telemetry` registry so
/// `--telemetry-json` works on this binary like on every other workspace
/// binary.
fn record_telemetry(report: &RunReport) {
    oftec_telemetry::counter_add("lint.files_scanned", report.files_scanned as u64);
    oftec_telemetry::counter_add("lint.suppressed", report.suppressed as u64);
    oftec_telemetry::counter_add("lint.baselined", report.baselined as u64);
    oftec_telemetry::counter_add("lint.baseline_stale", report.stale.len() as u64);
    for rule in RULES {
        let n = report
            .findings
            .iter()
            .filter(|f| f.status == Status::Active && f.rule == rule.id)
            .count() as u64;
        oftec_telemetry::counter_add(rule.counter, n);
    }
}

/// Minimal JSON string escaping for the hand-rolled JSONL report.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the run as JSONL: one `finding` record per finding (every
/// status), one `stale_baseline` record per stale entry, and a trailing
/// `summary` record.
pub fn render_jsonl(report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{{\"type\":\"finding\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
             \"status\":\"{}\",\"message\":\"{}\"}}",
            f.rule,
            json_escape(&f.file),
            f.line,
            f.col,
            f.status.name(),
            json_escape(&f.message),
        );
    }
    for e in &report.stale {
        let _ = writeln!(
            out,
            "{{\"type\":\"stale_baseline\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
            json_escape(&e.rule),
            json_escape(&e.file),
            e.line,
        );
    }
    let per_rule: Vec<String> = report
        .per_rule()
        .iter()
        .map(|(id, n)| format!("\"{id}\":{n}"))
        .collect();
    let active = report
        .findings
        .iter()
        .filter(|f| f.status == Status::Active)
        .count();
    let _ = writeln!(
        out,
        "{{\"type\":\"summary\",\"files_scanned\":{},\"active\":{},\"suppressed\":{},\
         \"baselined\":{},\"stale_baseline\":{},\"per_rule\":{{{}}}}}",
        report.files_scanned,
        active,
        report.suppressed,
        report.baselined,
        report.stale.len(),
        per_rule.join(","),
    );
    out
}

/// Renders the run as human-readable diagnostics.
pub fn render_human(report: &RunReport, deny: &DenySet) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in &report.findings {
        if f.status != Status::Active {
            continue;
        }
        let severity = if deny.denies(f.rule) {
            "error"
        } else {
            "warning"
        };
        let _ = writeln!(
            out,
            "{}:{}:{}: {severity}[{}]: {}",
            f.file, f.line, f.col, f.rule, f.message
        );
    }
    for e in &report.stale {
        let _ = writeln!(
            out,
            "{}: error[stale-baseline]: {} at line {} no longer fires; remove the entry",
            e.file, e.rule, e.line
        );
    }
    let active = report
        .findings
        .iter()
        .filter(|f| f.status == Status::Active)
        .count();
    let _ = writeln!(
        out,
        "oftec-lint: {} files, {} active finding(s), {} suppressed, {} baselined, {} stale",
        report.files_scanned,
        active,
        report.suppressed,
        report.baselined,
        report.stale.len()
    );
    out
}
