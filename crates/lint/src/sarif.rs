//! SARIF 2.1.0 rendering of a lint run, for editor and code-scanning
//! integrations.
//!
//! The document carries the full rule table (`tool.driver.rules`) and one
//! `result` per **active** finding — suppressed and baselined findings are
//! deliberately absent, matching the gate's view. Severity mirrors the
//! deny set: denied rules render as `error`, the rest as `warning`.
//! Output is hand-rolled JSON (the workspace is std-only) and fully
//! deterministic: findings arrive pre-sorted from the run.

use crate::engine::Status;
use crate::json_escape;
use crate::rules::RULES;
use crate::{DenySet, RunReport};

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the report as a single-run SARIF 2.1.0 document.
pub fn render(report: &RunReport, deny: &DenySet) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"$schema\": \"{SCHEMA}\",");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"oftec-lint\",\n");
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        env!("CARGO_PKG_VERSION")
    );
    out.push_str("          \"informationUri\": \"https://example.invalid/oftec-repro\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        let comma = if i + 1 < RULES.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}}}{comma}",
            r.id,
            r.id,
            json_escape(r.title),
            json_escape(r.rationale),
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let active: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.status == Status::Active)
        .collect();
    for (i, f) in active.iter().enumerate() {
        let comma = if i + 1 < active.len() { "," } else { "" };
        let level = if deny.denies(f.rule) {
            "error"
        } else {
            "warning"
        };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{comma}",
            f.rule,
            json_escape(&f.message),
            json_escape(&f.file),
            f.line,
            f.col.max(1),
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Counts `result` records in a SARIF document rendered by [`render`].
/// Used by CI to cross-check the SARIF artifact against the JSONL
/// report without a JSON parser.
pub fn count_results(sarif: &str) -> usize {
    sarif.matches("{\"ruleId\": \"").count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    fn report_with(findings: Vec<Finding>) -> RunReport {
        RunReport {
            findings,
            stale: Vec::new(),
            files_scanned: 1,
            suppressed: 0,
            baselined: 0,
        }
    }

    fn finding(rule: &'static str, status: Status) -> Finding {
        Finding {
            rule,
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "msg with \"quotes\" and \\ backslash".to_string(),
            status,
        }
    }

    #[test]
    fn renders_active_findings_only_with_deny_levels() {
        let report = report_with(vec![
            finding("L001", Status::Active),
            finding("L005", Status::Suppressed),
            finding("L008", Status::Baselined),
        ]);
        let doc = render(&report, &DenySet::Rules(vec!["L001".to_string()]));
        assert_eq!(count_results(&doc), 1);
        assert!(doc.contains("\"level\": \"error\""));
        assert!(
            !doc.contains("\"ruleId\": \"L005\""),
            "suppressed findings are omitted"
        );
        let warn = render(&report, &DenySet::Rules(vec![]));
        assert!(warn.contains("\"level\": \"warning\""));
    }

    #[test]
    fn rule_table_and_schema_are_present() {
        let doc = render(&report_with(Vec::new()), &DenySet::All);
        assert!(doc.contains("sarif-schema-2.1.0.json"));
        for r in RULES {
            assert!(doc.contains(&format!("\"id\": \"{}\"", r.id)));
        }
        assert_eq!(count_results(&doc), 0);
    }
}
