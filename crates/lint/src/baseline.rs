//! The grandfathered-findings baseline: a checked-in TOML file
//! (`lint-baseline.toml`) of findings the gate tolerates while they are
//! burned down. An entry that no longer matches a real finding is
//! **stale** and fails the gate — the baseline may only shrink.
//!
//! The format is a deliberately tiny TOML subset (`[[finding]]` tables
//! with string/integer keys) so the tool stays std-only.

use std::fmt::Write as _;
use std::path::Path;

/// One grandfathered finding, matched on `(rule, file, line)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub line: u32,
    /// Why the finding is tolerated (free text, required on write).
    pub note: String,
}

/// Loads the baseline. A missing file is an empty baseline; a malformed
/// file is an error (the gate must not silently pass on a bad baseline).
pub fn load(path: &Path) -> Result<Vec<BaselineEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut current: Option<BaselineEntry> = None;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[finding]]" {
            if let Some(done) = current.take() {
                entries.push(validated(done, n)?);
            }
            current = Some(BaselineEntry {
                rule: String::new(),
                file: String::new(),
                line: 0,
                note: String::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", n + 1));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!("line {}: key outside a [[finding]] table", n + 1));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" | "file" | "note" => {
                let unquoted = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {}: `{key}` must be a quoted string", n + 1))?;
                let unescaped = unquoted.replace("\\\"", "\"").replace("\\\\", "\\");
                match key {
                    "rule" => entry.rule = unescaped,
                    "file" => entry.file = unescaped,
                    _ => entry.note = unescaped,
                }
            }
            "line" => {
                entry.line = value
                    .parse()
                    .map_err(|_| format!("line {}: `line` must be an integer", n + 1))?;
            }
            other => return Err(format!("line {}: unknown key `{other}`", n + 1)),
        }
    }
    if let Some(done) = current.take() {
        entries.push(validated(done, text.lines().count())?);
    }
    Ok(entries)
}

fn validated(e: BaselineEntry, near_line: usize) -> Result<BaselineEntry, String> {
    if e.rule.is_empty() || e.file.is_empty() || e.line == 0 {
        return Err(format!(
            "[[finding]] ending near line {near_line}: `rule`, `file`, and `line` are required"
        ));
    }
    Ok(e)
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Serializes a baseline, sorted for stable diffs.
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut sorted: Vec<&BaselineEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| (&a.file, &a.rule, a.line).cmp(&(&b.file, &b.rule, b.line)));
    let mut out = String::from(
        "# oftec-lint baseline: grandfathered findings, matched on (rule, file, line).\n\
         # Entries may only be removed (a non-matching entry is *stale* and fails the\n\
         # gate). Regenerate with `oftec-lint --update-baseline` after a burn-down.\n",
    );
    for e in sorted {
        let _ = write!(
            out,
            "\n[[finding]]\nrule = {}\nfile = {}\nline = {}\nnote = {}\n",
            quote(&e.rule),
            quote(&e.file),
            e.line,
            quote(&e.note),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let entries = vec![BaselineEntry {
            rule: "L004".into(),
            file: "crates/x/src/a.rs".into(),
            line: 12,
            note: "exact-zero \"fast\" path".into(),
        }];
        let text = render(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn missing_keys_rejected() {
        assert!(parse("[[finding]]\nrule = \"L001\"\n").is_err());
        assert!(parse("rule = \"L001\"\n").is_err());
        assert!(parse("[[finding]]\nrule = \"L001\"\nfile = \"f.rs\"\nline = zero\n").is_err());
    }

    #[test]
    fn empty_and_comments_ok() {
        assert_eq!(parse("# nothing here\n\n").unwrap(), Vec::new());
    }
}
