//! A minimal Rust lexer for the lint pass.
//!
//! The rules only need to tell *code* apart from *non-code* — comments,
//! strings, char literals — and to see identifiers, numeric literals, and
//! a handful of multi-character operators with accurate `line:col`
//! positions. That makes the hard cases exactly the ones a regex-based
//! scanner gets wrong: nested block comments, raw strings with arbitrary
//! `#` fences, byte/char literals, and lifetimes (`'a` is not an
//! unterminated char literal). Everything else degrades gracefully to
//! single-character punctuation.

/// What a token is; literal payloads are kept only where a rule needs
/// them (identifiers, punctuation, comment text for suppressions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, fence stripped).
    Ident,
    /// Lifetime such as `'a` or `'static` (leading quote included).
    Lifetime,
    /// Integer literal (any base, underscores, integer suffix).
    Int,
    /// Float literal (`1.0`, `1e-6`, `2f64`, `1.`).
    Float,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte literal: `'x'`, `'\u{1F600}'`, `b'\n'`.
    Char,
    /// Punctuation; joined for the operators the rules care about
    /// (`==` `!=` `<=` `>=` `->` `=>` `&&` `||` `::`).
    Punct,
    /// `// …` comment, doc or plain, text without the trailing newline.
    LineComment,
    /// `/* … */` comment, nesting handled, text includes delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source position and half-open
/// char-index span `[lo, hi)` into the source's `char` sequence.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    pub lo: u32,
    pub hi: u32,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Unknown or malformed input never panics: anything the
/// lexer cannot classify becomes single-character punctuation, which no
/// rule matches on.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let lo = cur.i;
        let tok = |kind: TokKind, text: String| Tok {
            kind,
            text,
            line,
            col,
            lo: 0,
            hi: 0,
        };
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let before = toks.len();
        match c {
            '/' if cur.peek(1) == Some('/') => {
                let mut text = String::new();
                while let Some(n) = cur.peek(0) {
                    if n == '\n' {
                        break;
                    }
                    text.push(n);
                    cur.bump();
                }
                toks.push(tok(TokKind::LineComment, text));
            }
            '/' if cur.peek(1) == Some('*') => {
                let mut text = String::new();
                let mut depth = 0usize;
                while let Some(n) = cur.peek(0) {
                    if n == '/' && cur.peek(1) == Some('*') {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump_n(2);
                    } else if n == '*' && cur.peek(1) == Some('/') {
                        depth -= 1;
                        text.push_str("*/");
                        cur.bump_n(2);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(n);
                        cur.bump();
                    }
                }
                toks.push(tok(TokKind::BlockComment, text));
            }
            'r' | 'b' if starts_raw_or_byte(&cur) => {
                let t = lex_raw_or_byte(&mut cur);
                toks.push(tok(t.0, t.1));
            }
            '"' => {
                lex_plain_string(&mut cur);
                toks.push(tok(TokKind::Str, String::new()));
            }
            '\'' => {
                let t = lex_quote(&mut cur);
                toks.push(tok(t.0, t.1));
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(n) = cur.peek(0) {
                    if !is_ident_continue(n) {
                        break;
                    }
                    text.push(n);
                    cur.bump();
                }
                toks.push(tok(TokKind::Ident, text));
            }
            c if c.is_ascii_digit() => {
                let t = lex_number(&mut cur);
                toks.push(tok(t.0, t.1));
            }
            _ => {
                let joined = ["==", "!=", "<=", ">=", "->", "=>", "&&", "||", "::"];
                let two: String = [c, cur.peek(1).unwrap_or(' ')].iter().collect();
                if joined.contains(&two.as_str()) {
                    cur.bump_n(2);
                    toks.push(tok(TokKind::Punct, two));
                } else {
                    cur.bump();
                    toks.push(tok(TokKind::Punct, c.to_string()));
                }
            }
        }
        // Each iteration pushes at most one token; stamp its span now that
        // the cursor sits just past it.
        for t in toks.iter_mut().skip(before) {
            t.lo = lo as u32;
            t.hi = cur.i as u32;
        }
    }
    toks
}

/// True when the cursor sits on a raw string, byte string, byte char, or
/// raw identifier: `r"`, `r#"`, `r##"…`, `b"`, `b'`, `br"`, `br#"`,
/// `r#ident`.
fn starts_raw_or_byte(cur: &Cursor) -> bool {
    let mut j = 1;
    if cur.peek(0) == Some('b') {
        if cur.peek(1) == Some('\'') || cur.peek(1) == Some('"') {
            return true;
        }
        if cur.peek(1) != Some('r') {
            return false;
        }
        j = 2;
    }
    // At `r`: any run of `#` followed by `"` is a raw string; `r#ident`
    // is a raw identifier.
    let mut k = j;
    while cur.peek(k) == Some('#') {
        k += 1;
    }
    match cur.peek(k) {
        Some('"') => true,
        Some(c) if k == j + 1 && is_ident_start(c) => true, // r#ident
        _ => false,
    }
}

fn lex_raw_or_byte(cur: &mut Cursor) -> (TokKind, String) {
    let byte = cur.peek(0) == Some('b');
    if byte {
        if cur.peek(1) == Some('\'') {
            cur.bump(); // consume `b`, then the quote path
            let (_, _) = lex_quote(cur);
            return (TokKind::Char, String::new());
        }
        if cur.peek(1) == Some('"') {
            cur.bump();
            lex_plain_string(cur);
            return (TokKind::Str, String::new());
        }
    }
    // `r…` or `br…`: position of the first possible `#` or `"`.
    let j = if byte { 2 } else { 1 };
    let mut fences = 0usize;
    while cur.peek(j + fences) == Some('#') {
        fences += 1;
    }
    if cur.peek(j + fences) != Some('"') {
        // Raw identifier `r#ident`: consume `r#` then the identifier.
        cur.bump_n(2);
        let mut text = String::new();
        while let Some(n) = cur.peek(0) {
            if !is_ident_continue(n) {
                break;
            }
            text.push(n);
            cur.bump();
        }
        return (TokKind::Ident, text);
    }
    // Raw string body: scan for `"` followed by `fences` hashes.
    cur.bump_n(j + fences + 1);
    while let Some(n) = cur.peek(0) {
        if n == '"' {
            let mut ok = true;
            for f in 0..fences {
                if cur.peek(1 + f) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump_n(1 + fences);
                break;
            }
        }
        cur.bump();
    }
    (TokKind::Str, String::new())
}

fn lex_plain_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(n) = cur.bump() {
        if n == '\\' {
            cur.bump();
        } else if n == '"' {
            break;
        }
    }
}

/// At a `'`: decides lifetime vs. char literal and consumes it.
fn lex_quote(cur: &mut Cursor) -> (TokKind, String) {
    // `'a`, `'static`, `'_`: identifier after the quote with no closing
    // quote (`'a'` keeps its closing quote and stays a char literal).
    if cur.peek(1).is_some_and(is_ident_start) {
        let mut k = 2;
        while cur.peek(k).is_some_and(is_ident_continue) {
            k += 1;
        }
        if cur.peek(k) != Some('\'') {
            let mut text = String::from("'");
            cur.bump();
            while let Some(n) = cur.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            return (TokKind::Lifetime, text);
        }
    }
    // Otherwise a char literal: consume to the closing quote, honoring
    // backslash escapes (`'\''`, `'\u{…}'`).
    cur.bump();
    while let Some(n) = cur.bump() {
        if n == '\\' {
            cur.bump();
        } else if n == '\'' {
            break;
        }
    }
    (TokKind::Char, String::new())
}

fn lex_number(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    let mut float = false;
    let first = cur.peek(0);
    text.extend(cur.bump());
    if first == Some('0') && matches!(cur.peek(0), Some('x' | 'o' | 'b')) {
        text.extend(cur.bump());
        while let Some(n) = cur.peek(0) {
            if n.is_ascii_alphanumeric() || n == '_' {
                text.push(n);
                cur.bump();
            } else {
                break;
            }
        }
        return (TokKind::Int, text);
    }
    while cur.peek(0).is_some_and(|n| n.is_ascii_digit() || n == '_') {
        text.extend(cur.bump());
    }
    if cur.peek(0) == Some('.') {
        // `1.0` and trailing-dot `1.` are floats; `1..2` and `1.max(2)`
        // are not.
        let after = cur.peek(1);
        let fractional = after.is_some_and(|n| n.is_ascii_digit());
        let trailing = !after.is_some_and(|n| n == '.' || is_ident_start(n));
        if fractional || trailing {
            float = true;
            text.extend(cur.bump());
            while cur.peek(0).is_some_and(|n| n.is_ascii_digit() || n == '_') {
                text.extend(cur.bump());
            }
        }
    }
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (s1, s2) = (cur.peek(1), cur.peek(2));
        let exp = s1.is_some_and(|n| n.is_ascii_digit())
            || (matches!(s1, Some('+' | '-')) && s2.is_some_and(|n| n.is_ascii_digit()));
        if exp {
            float = true;
            text.extend(cur.bump());
            if matches!(cur.peek(0), Some('+' | '-')) {
                text.extend(cur.bump());
            }
            while cur.peek(0).is_some_and(|n| n.is_ascii_digit() || n == '_') {
                text.extend(cur.bump());
            }
        }
    }
    // Suffix: `f64` makes it a float, `u32`/`usize`/… stay integers.
    let mut suffix = String::new();
    while cur.peek(0).is_some_and(is_ident_continue) {
        suffix.extend(cur.bump());
    }
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    text.push_str(&suffix);
    (if float { TokKind::Float } else { TokKind::Int }, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("/* b */"));
        assert_eq!((toks[1].kind, toks[1].text.as_str()), (TokKind::Ident, "x"));
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let toks = lex("/// docs mentioning `.unwrap()` are not code\ncode");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(
            (toks[1].kind, toks[1].text.as_str()),
            (TokKind::Ident, "code")
        );
    }

    #[test]
    fn raw_strings_with_fences_swallow_quotes() {
        let toks = lex(r####"r#"embedded "quote" body"# tail"####);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].text, "tail");
        let toks = lex(r####"br##"fence "# inside"## tail"####);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].text, "tail");
    }

    #[test]
    fn byte_literals() {
        let toks = lex("b'x' b\"bytes\" rest");
        assert_eq!(toks[0].kind, TokKind::Char);
        assert_eq!(toks[1].kind, TokKind::Str);
        assert_eq!(toks[2].text, "rest");
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = lex(r#""a \" b" tail"#);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].text, "tail");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("&'a str + 'static + '_ + 'x' + '\\''");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'static", "'_"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2,
            "'x' and the escaped quote are char literals"
        );
    }

    #[test]
    fn raw_identifier_keeps_name() {
        let toks = lex("r#type x");
        assert_eq!(
            (toks[0].kind, toks[0].text.as_str()),
            (TokKind::Ident, "type")
        );
    }

    #[test]
    fn numeric_literal_classification() {
        assert_eq!(kinds("1.0"), [TokKind::Float]);
        assert_eq!(kinds("1."), [TokKind::Float]);
        assert_eq!(kinds("1e-6"), [TokKind::Float]);
        assert_eq!(kinds("2f64"), [TokKind::Float]);
        assert_eq!(kinds("0xFF"), [TokKind::Int]);
        assert_eq!(kinds("1_000u64"), [TokKind::Int]);
        // Ranges and method calls on integers are not floats.
        assert_eq!(kinds("1..2")[0], TokKind::Int);
        assert_eq!(kinds("1.max(2)")[0], TokKind::Int);
    }

    #[test]
    fn joined_punct_and_positions() {
        let toks = lex("a\n  == b");
        assert_eq!(toks[1].text, "==");
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn spans_round_trip_against_the_source() {
        let src = "fn f(x: u32) -> u32 { x == 1 } // done\nr#type 'a 1.5e3";
        let chars: Vec<char> = src.chars().collect();
        let mut prev_hi = 0u32;
        for t in lex(src) {
            assert!(t.lo >= prev_hi, "token spans must be ordered");
            assert!(t.lo < t.hi, "every token covers at least one char");
            assert!((t.hi as usize) <= chars.len());
            let slice: String = chars[t.lo as usize..t.hi as usize].iter().collect();
            if !t.text.is_empty() {
                // Raw identifiers strip their `r#` fence; everything else
                // reproduces the slice exactly.
                assert!(slice.ends_with(&t.text), "{slice:?} vs {:?}", t.text);
            }
            prev_hi = t.hi;
        }
    }

    #[test]
    fn unterminated_input_never_panics() {
        for src in ["\"open", "/* open", "'", "r#\"open", "b'"] {
            let _ = lex(src);
        }
    }
}
