//! Semantic rules L008–L013 over the AST and dataflow summaries.
//!
//! Two phases, mirroring the cache boundary:
//!
//! - **Per-file** ([`file_findings`]): rules that depend only on one
//!   file's AST and symbols — L008 (unordered collections: declarations
//!   and taint-to-sink iteration) and L012 (narrowing numeric casts on
//!   solver paths). These findings are cached with the file.
//! - **Crate phase** ([`crate_findings`]): rules that compose per-function
//!   summaries across a crate — L009 (atomic-ordering publication audit),
//!   L010 (lock-order cycles), L011 (blocking while locked on serve hot
//!   paths), L013 (allocation under `// oftec-lint: hot` reachability).
//!   These are cheap and recomputed every run from (possibly cached)
//!   summaries.
//!
//! See DESIGN.md §18 for each rule's rationale and suppression guidance.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{File, Item};
use crate::dataflow::{AtomicKind, FnSummary, LockId};
use crate::engine::{Finding, Status};
use crate::resolve::{self, FileSymbols};
use crate::rules::{self, FileKind};

/// The mixed-precision module sanctioned to narrow `f64` deliberately
/// (L012 does not apply there).
pub const SANCTIONED_MIXED_PRECISION: &str = "crates/linalg/src/iterative.rs";

fn finding(rule: &'static str, file: &str, line: u32, col: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line,
        col,
        message,
        status: Status::Active,
    }
}

fn rule_applies(id: &str, krate: &str, kind: FileKind) -> bool {
    rules::rule(id).is_some_and(|r| r.applies(krate, kind))
}

/// Per-file semantic findings (cached alongside the file): L008 and
/// L012.
pub fn file_findings(
    rel: &str,
    krate: &str,
    kind: FileKind,
    ast: &File,
    syms: &FileSymbols,
    summaries: &[FnSummary],
) -> Vec<Finding> {
    let mut out = Vec::new();

    if rule_applies("L008", krate, kind) {
        l008_declarations(rel, ast, syms, &mut out);
        let mut seen_lines: BTreeSet<u32> = out.iter().map(|f| f.line).collect();
        for s in summaries.iter().filter(|s| !s.is_test) {
            for (desc, line) in &s.unordered_decls {
                if seen_lines.insert(*line) {
                    out.push(finding(
                        "L008",
                        rel,
                        *line,
                        1,
                        format!(
                            "unordered collection `{desc}` in a determinism-contract crate; \
                             use BTreeMap/BTreeSet or add a reasoned allow"
                        ),
                    ));
                }
            }
            for site in &s.hash_iters {
                if let Some(sink) = &site.sink {
                    out.push(finding(
                        "L008",
                        rel,
                        site.line,
                        site.col,
                        format!(
                            "iteration over unordered `{}` flows into {sink}; iteration order \
                             depends on hasher state — sort first or use an ordered collection",
                            site.desc
                        ),
                    ));
                }
            }
        }
    }

    if rule_applies("L012", krate, kind) && rel != SANCTIONED_MIXED_PRECISION {
        for s in summaries.iter().filter(|s| !s.is_test) {
            for c in &s.casts {
                out.push(finding(
                    "L012",
                    rel,
                    c.line,
                    c.col,
                    format!(
                        "lossy numeric cast `as {}` on a solver path; keep f64/usize precision, \
                         use the sanctioned mixed-precision module ({SANCTIONED_MIXED_PRECISION}), \
                         or add a reasoned allow",
                        c.ty
                    ),
                ));
            }
        }
    }

    out
}

/// L008 declaration layer over items: imports, struct fields, statics.
fn l008_declarations(rel: &str, ast: &File, syms: &FileSymbols, out: &mut Vec<Finding>) {
    fn visit(items: &[Item], rel: &str, syms: &FileSymbols, out: &mut Vec<Finding>) {
        for item in items {
            match item {
                Item::Use { path, .. } => {
                    if path
                        .last()
                        .is_some_and(|leaf| leaf == "HashMap" || leaf == "HashSet")
                    {
                        // line is carried on the Use item
                    } else {
                        continue;
                    }
                    if let Item::Use { line, path, .. } = item {
                        out.push(finding(
                            "L008",
                            rel,
                            *line,
                            1,
                            format!(
                                "import of unordered `{}` in a determinism-contract crate; \
                                 use BTreeMap/BTreeSet or add a reasoned allow",
                                path.join("::")
                            ),
                        ));
                    }
                }
                Item::Struct { fields, .. } => {
                    for f in fields {
                        if resolve::type_contains_unordered(&f.ty, syms) {
                            out.push(finding(
                                "L008",
                                rel,
                                f.line,
                                1,
                                format!(
                                    "field `{}: {}` holds an unordered collection; its \
                                     iteration order depends on hasher state",
                                    f.name, f.ty
                                ),
                            ));
                        }
                    }
                }
                Item::Static { name, ty, line } if resolve::type_contains_unordered(ty, syms) => {
                    out.push(finding(
                        "L008",
                        rel,
                        *line,
                        1,
                        format!("static `{name}: {ty}` holds an unordered collection"),
                    ));
                }
                Item::Impl { items, .. } => visit(items, rel, syms, out),
                Item::Mod {
                    items,
                    cfg_test: false,
                    ..
                } => visit(items, rel, syms, out),
                _ => {}
            }
        }
    }
    visit(&ast.items, rel, syms, out);
}

/// Everything the crate phase needs per analyzed file.
#[derive(Debug)]
pub struct FileFacts<'a> {
    pub rel: &'a str,
    pub krate: &'a str,
    pub kind: FileKind,
    pub summaries: &'a [FnSummary],
    pub hot_lines: &'a [u32],
}

/// Crate-phase findings: L009, L010, L011, L013. Input files must be in
/// path order; output is deterministic.
pub fn crate_findings(files: &[FileFacts]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut crates: Vec<&str> = files.iter().map(|f| f.krate).collect();
    crates.dedup();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for krate in crates {
        if !seen.insert(krate) {
            continue;
        }
        let members: Vec<&FileFacts> = files.iter().filter(|f| f.krate == krate).collect();
        l009_atomic_audit(krate, &members, &mut out);
        l010_lock_order(krate, &members, &mut out);
        l011_blocking(krate, &members, &mut out);
        l013_hot_allocations(krate, &members, &mut out);
    }
    out
}

/// Iterator over all non-test function summaries of a crate, with their
/// file.
fn crate_fns<'a>(
    members: &'a [&'a FileFacts<'a>],
) -> impl Iterator<Item = (&'a str, FileKind, &'a FnSummary)> {
    members.iter().flat_map(|f| {
        f.summaries
            .iter()
            .filter(|s| !s.is_test)
            .map(move |s| (f.rel, f.kind, s))
    })
}

fn l009_atomic_audit(krate: &str, members: &[&FileFacts], out: &mut Vec<Finding>) {
    #[derive(Default)]
    struct FieldStat {
        release_store: bool,
        gating_load: bool,
    }
    let mut stats: BTreeMap<&str, FieldStat> = BTreeMap::new();
    for (_, _, s) in crate_fns(members) {
        for op in &s.atomics {
            let st = stats.entry(op.field.as_str()).or_default();
            match op.kind {
                AtomicKind::Store => {
                    if matches!(op.ordering.as_str(), "Release" | "AcqRel" | "SeqCst") {
                        st.release_store = true;
                    }
                }
                AtomicKind::Load => {
                    if op.gating {
                        st.gating_load = true;
                    }
                }
                AtomicKind::Rmw => {}
            }
        }
    }
    for (rel, kind, s) in crate_fns(members) {
        if !rule_applies("L009", krate, kind) {
            continue;
        }
        for op in &s.atomics {
            let Some(st) = stats.get(op.field.as_str()) else {
                continue;
            };
            match op.kind {
                AtomicKind::Store
                    if op.ordering == "Relaxed"
                        && op.after_write
                        && !s.has_release_fence
                        && st.gating_load =>
                {
                    out.push(finding(
                        "L009",
                        rel,
                        op.line,
                        op.col,
                        format!(
                            "Relaxed store to `{}` publishes data written earlier in `{}` and \
                             is observed by a gating load elsewhere; use Ordering::Release (or \
                             a release fence) so the data write cannot be reordered after the \
                             flag",
                            op.field, s.key
                        ),
                    ));
                }
                AtomicKind::Load
                    if op.ordering == "Relaxed"
                        && op.gating
                        && !s.has_acquire_fence
                        && st.release_store =>
                {
                    out.push(finding(
                        "L009",
                        rel,
                        op.line,
                        op.col,
                        format!(
                            "Relaxed load of `{}` gates data access in `{}` but the field is \
                             published with Release; use Ordering::Acquire (or an acquire \
                             fence) to order the subsequent reads",
                            op.field, s.key
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Index of a crate's functions for call resolution: exact `Ty::m` keys
/// plus unique bare names.
struct CallIndex {
    by_key: BTreeMap<String, usize>,
    by_bare: BTreeMap<String, Vec<usize>>,
}

fn call_index(fns: &[(&str, FileKind, &FnSummary)]) -> CallIndex {
    let mut by_key = BTreeMap::new();
    let mut by_bare: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, (_, _, s)) in fns.iter().enumerate() {
        by_key.entry(s.key.clone()).or_insert(i);
        by_bare.entry(s.bare.clone()).or_default().push(i);
    }
    CallIndex { by_key, by_bare }
}

impl CallIndex {
    fn resolve(&self, callee: &str) -> Option<usize> {
        if let Some(&i) = self.by_key.get(callee) {
            return Some(i);
        }
        let bare = callee.rsplit("::").next().unwrap_or(callee);
        match self.by_bare.get(bare) {
            Some(list) if list.len() == 1 => Some(list[0]),
            _ => None,
        }
    }
}

fn is_graph_lock(id: &LockId) -> bool {
    id.0 != "local" && id.0 != "expr"
}

fn lock_name(id: &LockId) -> String {
    format!("{}.{}", id.0, id.1)
}

fn l010_lock_order(krate: &str, members: &[&FileFacts], out: &mut Vec<Finding>) {
    let fns: Vec<(&str, FileKind, &FnSummary)> = crate_fns(members).collect();
    let index = call_index(&fns);

    // Transitive "may acquire" set per function (fixpoint over calls).
    let mut acquired: Vec<BTreeSet<LockId>> = fns
        .iter()
        .map(|(_, _, s)| {
            s.lock_acqs
                .iter()
                .filter(|a| is_graph_lock(&a.id))
                .map(|a| a.id.clone())
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut add: Vec<LockId> = Vec::new();
            for call in &fns[i].2.calls {
                if let Some(j) = index.resolve(&call.callee) {
                    for id in &acquired[j] {
                        if !acquired[i].contains(id) {
                            add.push(id.clone());
                        }
                    }
                }
            }
            for id in add {
                acquired[i].insert(id);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set held → acquired, with first-seen provenance.
    #[derive(Debug)]
    struct Prov {
        file: String,
        line: u32,
        via: String,
    }
    let mut edges: BTreeMap<(LockId, LockId), Prov> = BTreeMap::new();
    for (rel, _, s) in &fns {
        for acq in &s.lock_acqs {
            if !is_graph_lock(&acq.id) {
                continue;
            }
            for held in &acq.held_before {
                if is_graph_lock(held) && *held != acq.id {
                    edges
                        .entry((held.clone(), acq.id.clone()))
                        .or_insert_with(|| Prov {
                            file: rel.to_string(),
                            line: acq.line,
                            via: s.key.clone(),
                        });
                }
            }
        }
        for call in &s.calls {
            if call.locks_held.is_empty() {
                continue;
            }
            let Some(j) = index.resolve(&call.callee) else {
                continue;
            };
            for held in &call.locks_held {
                if !is_graph_lock(held) {
                    continue;
                }
                for target in &acquired[j] {
                    if target != held {
                        edges
                            .entry((held.clone(), target.clone()))
                            .or_insert_with(|| Prov {
                                file: rel.to_string(),
                                line: call.line,
                                via: format!("{} -> {}", s.key, call.callee),
                            });
                    }
                }
            }
        }
    }

    // Cycle detection: for each edge a→b, is a reachable from b?
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let reachable = |from: &LockId, to: &LockId| -> Option<Vec<LockId>> {
        let mut stack = vec![(from, vec![from.clone()])];
        let mut seen: BTreeSet<&LockId> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(nexts) = adj.get(node) {
                for n in nexts {
                    let mut p = path.clone();
                    p.push((*n).clone());
                    stack.push((n, p));
                }
            }
        }
        None
    };
    let mut reported: BTreeSet<BTreeSet<LockId>> = BTreeSet::new();
    for ((a, b), prov) in &edges {
        if a == b {
            continue;
        }
        let Some(path) = reachable(b, a) else {
            continue;
        };
        let members_set: BTreeSet<LockId> =
            path.iter().cloned().chain([a.clone(), b.clone()]).collect();
        if !reported.insert(members_set) {
            continue;
        }
        if !rule_applies("L010", krate, FileKind::Lib) {
            continue;
        }
        let chain: Vec<String> = path.iter().map(lock_name).collect();
        out.push(finding(
            "L010",
            &prov.file,
            prov.line,
            1,
            format!(
                "lock-order cycle: `{}` is acquired while holding `{}` (in `{}`), but the \
                 reverse chain {} also exists — two threads taking the chains concurrently \
                 deadlock; pick one global order",
                lock_name(b),
                lock_name(a),
                prov.via,
                chain.join(" -> "),
            ),
        ));
    }
}

fn l011_blocking(krate: &str, members: &[&FileFacts], out: &mut Vec<Finding>) {
    for (rel, kind, s) in crate_fns(members) {
        if !rule_applies("L011", krate, kind) {
            continue;
        }
        for b in &s.blocking {
            out.push(finding(
                "L011",
                rel,
                b.line,
                b.col,
                format!(
                    "blocking operation ({}) in `{}` while holding lock `{}` — this stalls \
                     every thread contending on the lock on the serve hot path",
                    b.what,
                    s.key,
                    lock_name(&b.held),
                ),
            ));
        }
    }
}

fn l013_hot_allocations(krate: &str, members: &[&FileFacts], out: &mut Vec<Finding>) {
    let fns: Vec<(&str, FileKind, &FnSummary)> = crate_fns(members).collect();
    let index = call_index(&fns);

    // Roots: functions whose definition directly follows a
    // `// oftec-lint: hot` marker (within 3 lines, attributes allowed).
    let mut roots: Vec<(usize, String)> = Vec::new();
    for facts in members {
        for &hot in facts.hot_lines {
            let mut best: Option<usize> = None;
            for (i, (rel, _, s)) in fns.iter().enumerate() {
                if *rel == facts.rel && s.line > hot && s.line <= hot + 3 {
                    let better = match best {
                        Some(b) => s.line < fns[b].2.line,
                        None => true,
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            if let Some(i) = best {
                roots.push((i, format!("{}:{hot}", facts.rel)));
            }
        }
    }

    // BFS from the roots over the call graph; remember the first root
    // that reaches each function.
    let mut origin: BTreeMap<usize, String> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for (i, marker) in &roots {
        if !origin.contains_key(i) {
            origin.insert(*i, marker.clone());
            queue.push(*i);
        }
    }
    while let Some(i) = queue.pop() {
        let marker = origin[&i].clone();
        for call in &fns[i].2.calls {
            if let Some(j) = index.resolve(&call.callee) {
                if let std::collections::btree_map::Entry::Vacant(e) = origin.entry(j) {
                    e.insert(marker.clone());
                    queue.push(j);
                }
            }
        }
    }

    let mut hits: Vec<(usize, String)> = origin.into_iter().collect();
    hits.sort();
    for (i, marker) in hits {
        let (rel, kind, s) = fns[i];
        if !rule_applies("L013", krate, kind) {
            continue;
        }
        for a in &s.allocs {
            out.push(finding(
                "L013",
                rel,
                a.line,
                a.col,
                format!(
                    "heap allocation ({}) in `{}`, reachable from the hot marker at {marker}; \
                     hot-path functions must not allocate per request",
                    a.what, s.key,
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};
    use crate::parser::parse_file;

    struct Analyzed {
        summaries: Vec<FnSummary>,
        file_findings: Vec<Finding>,
    }

    fn analyze(rel: &str, krate: &str, src: &str) -> Analyzed {
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let ast = parse_file(&toks);
        let syms = resolve::collect(&ast);
        let mut summaries = Vec::new();
        crate::ast::for_each_fn(&ast.items, &mut |def| {
            summaries.push(crate::dataflow::summarize(def, &syms, rel));
        });
        let file_findings = file_findings(rel, krate, FileKind::Lib, &ast, &syms, &summaries);
        Analyzed {
            summaries,
            file_findings,
        }
    }

    #[test]
    fn l008_flags_declaration_and_sinked_iteration() {
        let a = analyze(
            "crates/serve/src/x.rs",
            "serve",
            "use std::collections::HashMap;\n\
             pub struct S { map: HashMap<u32, u32> }\n\
             impl S {\n\
                 pub fn snapshot(&self) -> Vec<u32> {\n\
                     let mut out = Vec::new();\n\
                     for (_k, v) in self.map.iter() { out.push(*v); }\n\
                     out\n\
                 }\n\
             }\n",
        );
        let rules: Vec<(u32, &str)> = a.file_findings.iter().map(|f| (f.line, f.rule)).collect();
        // Import (line 1), field (line 2), iteration with sink (line 6).
        assert!(rules.contains(&(1, "L008")), "{rules:?}");
        assert!(rules.contains(&(2, "L008")), "{rules:?}");
        assert!(rules.contains(&(6, "L008")), "{rules:?}");
    }

    #[test]
    fn l008_silent_on_btreemap() {
        let a = analyze(
            "crates/serve/src/x.rs",
            "serve",
            "use std::collections::BTreeMap;\n\
             pub struct S { map: BTreeMap<u32, u32> }\n\
             impl S {\n\
                 pub fn snapshot(&self) -> Vec<u32> {\n\
                     self.map.values().copied().collect()\n\
                 }\n\
             }\n",
        );
        assert!(a.file_findings.is_empty(), "{:?}", a.file_findings);
    }

    #[test]
    fn l009_flags_relaxed_publication_pair() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
             pub struct F { ready: AtomicU64, data: AtomicU64 }\n\
             impl F {\n\
                 pub fn publish(&self, v: u64) {\n\
                     self.data.store(v, Ordering::Relaxed);\n\
                     self.ready.store(1, Ordering::Relaxed);\n\
                 }\n\
                 pub fn consume(&self) -> u64 {\n\
                     if self.ready.load(Ordering::Relaxed) == 1 {\n\
                         return self.data.load(Ordering::Relaxed);\n\
                     }\n\
                     0\n\
                 }\n\
             }\n";
        let a = analyze("crates/serve/src/x.rs", "serve", src);
        let facts = [FileFacts {
            rel: "crates/serve/src/x.rs",
            krate: "serve",
            kind: FileKind::Lib,
            summaries: &a.summaries,
            hot_lines: &[],
        }];
        let found = crate_findings(&facts);
        let l009: Vec<u32> = found
            .iter()
            .filter(|f| f.rule == "L009")
            .map(|f| f.line)
            .collect();
        // The ready-flag store (line 6) publishes after the data write
        // and is observed by a gating load — flagged. With no Release
        // store anywhere, the load side stays quiet.
        assert_eq!(l009, vec![6], "{found:?}");
    }

    #[test]
    fn l009_correct_seqlock_is_clean() {
        let src = "use std::sync::atomic::{fence, AtomicU64, Ordering};\n\
             pub struct R { seq: AtomicU64, word: AtomicU64 }\n\
             impl R {\n\
                 pub fn write(&self, v: u64) {\n\
                     self.seq.store(1, Ordering::Relaxed);\n\
                     self.word.store(v, Ordering::Relaxed);\n\
                     self.seq.store(2, Ordering::Release);\n\
                 }\n\
                 pub fn read(&self) -> u64 {\n\
                     let v1 = self.seq.load(Ordering::Acquire);\n\
                     let w = self.word.load(Ordering::Relaxed);\n\
                     fence(Ordering::Acquire);\n\
                     let v2 = self.seq.load(Ordering::Relaxed);\n\
                     if v1 == v2 { return w; }\n\
                     0\n\
                 }\n\
             }\n";
        let a = analyze("crates/telemetry/src/x.rs", "telemetry", src);
        let facts = [FileFacts {
            rel: "crates/telemetry/src/x.rs",
            krate: "telemetry",
            kind: FileKind::Lib,
            summaries: &a.summaries,
            hot_lines: &[],
        }];
        let found = crate_findings(&facts);
        let l009: Vec<&Finding> = found.iter().filter(|f| f.rule == "L009").collect();
        // writer: first seq store is Relaxed but happens before any
        // non-local write in the fn — not a publication. word stores are
        // never gating-loaded. reader: the Relaxed recheck is covered by
        // the acquire fence.
        assert!(l009.is_empty(), "{l009:?}");
    }

    #[test]
    fn l010_reports_ab_ba_cycle() {
        let src = "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn ab(&self) {\n\
                     let ga = self.a.lock().unwrap();\n\
                     let gb = self.b.lock().unwrap();\n\
                     let _ = (ga, gb);\n\
                 }\n\
                 pub fn ba(&self) {\n\
                     let gb = self.b.lock().unwrap();\n\
                     let ga = self.a.lock().unwrap();\n\
                     let _ = (ga, gb);\n\
                 }\n\
             }\n";
        let a = analyze("crates/serve/src/x.rs", "serve", src);
        let facts = [FileFacts {
            rel: "crates/serve/src/x.rs",
            krate: "serve",
            kind: FileKind::Lib,
            summaries: &a.summaries,
            hot_lines: &[],
        }];
        let found = crate_findings(&facts);
        let l010: Vec<&Finding> = found.iter().filter(|f| f.rule == "L010").collect();
        assert_eq!(l010.len(), 1, "{found:?}");
        assert!(l010[0].message.contains("S.a"));
        assert!(l010[0].message.contains("S.b"));
    }

    #[test]
    fn l010_cross_function_cycle_through_calls() {
        let src = "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn outer(&self) {\n\
                     let ga = self.a.lock().unwrap();\n\
                     self.inner();\n\
                     let _ = ga;\n\
                 }\n\
                 fn inner(&self) {\n\
                     let gb = self.b.lock().unwrap();\n\
                     let _ = gb;\n\
                 }\n\
                 pub fn reverse(&self) {\n\
                     let gb = self.b.lock().unwrap();\n\
                     let ga = self.a.lock().unwrap();\n\
                     let _ = (ga, gb);\n\
                 }\n\
             }\n";
        let a = analyze("crates/serve/src/x.rs", "serve", src);
        let facts = [FileFacts {
            rel: "crates/serve/src/x.rs",
            krate: "serve",
            kind: FileKind::Lib,
            summaries: &a.summaries,
            hot_lines: &[],
        }];
        let found = crate_findings(&facts);
        assert_eq!(
            found.iter().filter(|f| f.rule == "L010").count(),
            1,
            "{found:?}"
        );
    }

    #[test]
    fn l013_flags_allocation_reachable_from_hot_marker() {
        let src = "pub fn hot_entry(n: usize) -> usize { helper(n) }\n\
             fn helper(n: usize) -> usize {\n\
                 let v = Vec::new();\n\
                 let _ = v;\n\
                 n\n\
             }\n\
             fn cold() -> String { format!(\"x\") }\n";
        let a = analyze("crates/serve/src/x.rs", "serve", src);
        let facts = [FileFacts {
            rel: "crates/serve/src/x.rs",
            krate: "serve",
            kind: FileKind::Lib,
            summaries: &a.summaries,
            // marker on line 0 → hot_entry (line 1) is the root
            hot_lines: &[0],
        }];
        let found = crate_findings(&facts);
        let l013: Vec<(&str, u32)> = found
            .iter()
            .filter(|f| f.rule == "L013")
            .map(|f| (f.message.split('`').nth(1).unwrap_or(""), f.line))
            .collect();
        assert_eq!(l013, vec![("helper", 3)], "{found:?}");
    }
}
