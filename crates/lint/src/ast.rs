//! A lightweight Rust AST for the semantic lint rules.
//!
//! This is deliberately **not** a faithful Rust grammar: the dataflow
//! rules only need items, function bodies, expressions with receiver /
//! argument structure, and source positions. Everything the parser cannot
//! shape — exotic generics, macros with non-expression bodies, const
//! generics — degrades to [`Expr::Opaque`] rather than failing the file,
//! so a single unparseable construct never blinds the rest of the
//! analysis. Types are carried as normalized token text (`"Mutex < Inner >"`
//! becomes `"Mutex<Inner>"`), which is all the resolver needs to extract
//! head types and generic arguments.

/// One parsed source file: a flat list of top-level items.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// A top-level or nested item. Only the item kinds the rules consume are
/// represented; the rest parse as [`Item::Other`] (body skipped).
#[derive(Debug)]
pub enum Item {
    /// One leaf of a `use` tree: `use a::b::{C, D as E}` expands to two
    /// entries with `path = ["a","b","C"]` / `["a","b","D"]`.
    Use {
        path: Vec<String>,
        alias: Option<String>,
        line: u32,
    },
    /// A struct with its named fields (tuple structs keep positional
    /// names `"0"`, `"1"`, …).
    Struct {
        name: String,
        fields: Vec<Field>,
        line: u32,
    },
    /// An `impl` block: the self type's head name and the functions
    /// inside.
    Impl { type_name: String, items: Vec<Item> },
    /// A free or associated function.
    Fn(FnDef),
    /// An inline module and its items.
    Mod {
        name: String,
        items: Vec<Item>,
        cfg_test: bool,
    },
    /// A `static` or `const` item with its type text.
    Static { name: String, ty: String, line: u32 },
    /// Anything else (enum, trait, type alias, macro definition, …).
    Other,
}

/// One struct field: name and normalized type text.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    pub ty: String,
    pub line: u32,
}

/// A function definition with enough signature structure for local type
/// guesses, plus its (optional) parsed body.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// Head name of the enclosing `impl` type, when inside one.
    pub self_ty: Option<String>,
    /// `(pattern name, normalized type text)` per parameter; a `self`
    /// receiver appears as `("self", "Self")`.
    pub params: Vec<(String, String)>,
    /// Normalized return type text, when declared.
    pub ret: Option<String>,
    pub body: Option<Block>,
    pub line: u32,
    pub col: u32,
    /// Under `#[cfg(test)]` / `#[test]`: excluded from semantic rules.
    pub is_test: bool,
}

/// A `{ … }` block of statements.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat>[: ty] = init;` — `pats` lists the bound names.
    Let {
        pats: Vec<String>,
        ty: Option<String>,
        init: Option<Expr>,
        line: u32,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
    /// A nested item (inner `fn`, `struct`, …).
    Item(Box<Item>),
}

/// An expression. Position fields are carried where rules report
/// findings; structural children are always walkable so taint and lock
/// tracking see every sub-expression.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `x`, `self.0` is Field, `a::b::c`.
    Path {
        segs: Vec<String>,
        line: u32,
        col: u32,
    },
    /// Any literal (number, string, char, bool via path).
    Lit,
    /// `callee(args…)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
        col: u32,
    },
    /// `recv.method(args…)`.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
        col: u32,
    },
    /// `base.field` (also tuple indices: `base.0`).
    FieldAccess {
        base: Box<Expr>,
        name: String,
        line: u32,
        col: u32,
    },
    /// `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// `expr as Ty` with normalized target type text.
    Cast {
        expr: Box<Expr>,
        ty: String,
        line: u32,
        col: u32,
    },
    /// Any binary operator (left-assoc parse; precedence is irrelevant to
    /// the rules, operand structure is preserved).
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Prefix `& && * - !` (operator dropped; only the operand matters).
    Unary(Box<Expr>),
    /// `place = value` (compound assignments keep the operator in `op`).
    Assign {
        place: Box<Expr>,
        value: Box<Expr>,
        line: u32,
    },
    /// `for <pats> in iter { body }`.
    For {
        pats: Vec<String>,
        iter: Box<Expr>,
        body: Block,
        line: u32,
        col: u32,
    },
    /// `if cond { then } [else …]` (`else if` chains nest in `els`).
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    /// `while cond { body }` (`while let` parses its scrutinee as cond).
    While { cond: Box<Expr>, body: Block },
    /// `loop { body }`.
    Loop { body: Block },
    /// `match scrutinee { pat => expr, … }` — arms keep bound names and
    /// the arm expression.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<(Vec<String>, Expr)>,
    },
    /// `return [expr]`.
    Return { value: Option<Box<Expr>>, line: u32 },
    /// A block expression.
    BlockExpr(Block),
    /// `|args| body` or `move |args| body`.
    Closure { pats: Vec<String>, body: Box<Expr> },
    /// `name!(args…)` with best-effort expression arguments.
    MacroCall {
        name: String,
        args: Vec<Expr>,
        line: u32,
        col: u32,
    },
    /// `Path { field: expr, … }`.
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
    },
    /// `(a, b, …)` and `[a, b, …]`.
    Tuple(Vec<Expr>),
    /// Anything the parser could not shape. Terminates a sub-tree.
    Opaque,
}

impl Expr {
    /// Best-effort position of an expression, for anchoring findings.
    pub fn pos(&self) -> Option<(u32, u32)> {
        match self {
            Expr::Path { line, col, .. }
            | Expr::Call { line, col, .. }
            | Expr::MethodCall { line, col, .. }
            | Expr::FieldAccess { line, col, .. }
            | Expr::Cast { line, col, .. }
            | Expr::For { line, col, .. }
            | Expr::MacroCall { line, col, .. } => Some((*line, *col)),
            Expr::Return { line, .. } | Expr::Assign { line, .. } => Some((*line, 1)),
            Expr::Unary(e) => e.pos(),
            Expr::Binary { lhs, .. } => lhs.pos(),
            Expr::Index { base, .. } => base.pos(),
            _ => None,
        }
    }
}

/// Walks every expression in a block, depth-first, in source order.
pub fn walk_block<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Item(_) => {}
        }
    }
}

/// Walks `expr` and all its children, depth-first pre-order.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::FieldAccess { base, .. } => walk_expr(base, f),
        Expr::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Cast { expr, .. } | Expr::Unary(expr) => walk_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Assign { place, value, .. } => {
            walk_expr(place, f);
            walk_expr(value, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        Expr::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::Loop { body } => walk_block(body, f),
        Expr::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for (_, e) in arms {
                walk_expr(e, f);
            }
        }
        Expr::Return { value: Some(v), .. } => walk_expr(v, f),
        Expr::BlockExpr(b) => walk_block(b, f),
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::MacroCall { args, .. } | Expr::Tuple(args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for (_, e) in fields {
                walk_expr(e, f);
            }
        }
        _ => {}
    }
}

/// Visits every function in an item tree (skipping `cfg(test)` modules),
/// yielding the enclosing impl type head alongside each definition.
pub fn for_each_fn<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a FnDef)) {
    for item in items {
        match item {
            Item::Fn(def) => f(def),
            Item::Impl { items, .. }
            | Item::Mod {
                items,
                cfg_test: false,
                ..
            } => for_each_fn(items, f),
            _ => {}
        }
    }
}
