//! Incremental analysis cache: per-file findings and dataflow summaries
//! keyed by content hash.
//!
//! The per-file phase (lex → parse → resolve → summarize → file-local
//! rules) depends only on a file's own bytes, so its [`FileAnalysis`] can
//! be replayed verbatim when the bytes have not changed. The crate phase
//! (L009–L011, L013) is recomputed every run from the (cached or fresh)
//! summaries — it is cheap and composes cross-file facts the cache must
//! not freeze.
//!
//! Storage is one line-oriented text file, `target/oftec-lint-cache.v1`,
//! with a header carrying the format version and a fingerprint of the
//! rule table; any mismatch discards the whole cache. A corrupt or
//! truncated file is treated as empty — the cache can only ever cost a
//! re-analysis, never change a verdict.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::dataflow::{
    AllocSite, AtomicKind, AtomicOp, BlockSite, CallSite, CastSite, FnSummary, HashIterSite,
    LockAcq, LockId,
};
use crate::engine::{FileAnalysis, Finding, ScanStats, Status, Suppression};
use crate::rules::RULES;

const FORMAT: &str = "oftec-lint-cache v1";

/// FNV-1a 64-bit content hash — stable across platforms and runs.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the rule table: a rule added, removed, or re-scoped
/// invalidates every cached verdict.
fn rules_fingerprint() -> u64 {
    let mut text = String::from(env!("CARGO_PKG_VERSION"));
    for r in RULES {
        text.push_str(r.id);
        text.push_str(r.title);
        text.push_str(&format!("{:?}{:?}", r.kinds, r.crates));
    }
    content_hash(text.as_bytes())
}

/// Default cache location for a workspace root.
pub fn default_path(root: &Path) -> PathBuf {
    root.join("target").join("oftec-lint-cache.v1")
}

/// The loaded cache: per-path hash and analysis.
#[derive(Debug, Default)]
pub struct Cache {
    hashes: BTreeMap<String, u64>,
    analyses: BTreeMap<String, FileAnalysis>,
}

impl Cache {
    /// Whether `rel` at `hash` has a cached analysis.
    pub fn hit(&self, rel: &str, hash: u64) -> bool {
        self.hashes.get(rel) == Some(&hash) && self.analyses.contains_key(rel)
    }

    /// Removes and returns the cached analysis for `rel`.
    pub fn take(&mut self, rel: &str) -> Option<FileAnalysis> {
        self.analyses.remove(rel)
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => break,
        }
    }
    out
}

fn lock_to_str(id: &LockId) -> String {
    format!("{}\u{1f}{}", esc(&id.0), esc(&id.1))
}

fn lock_from_str(s: &str) -> Option<LockId> {
    let (a, b) = s.split_once('\u{1f}')?;
    Some((unesc(a), unesc(b)))
}

fn locks_to_str(ids: &[LockId]) -> String {
    ids.iter()
        .map(lock_to_str)
        .collect::<Vec<_>>()
        .join("\u{1e}")
}

fn locks_from_str(s: &str) -> Vec<LockId> {
    if s.is_empty() {
        return Vec::new();
    }
    s.split('\u{1e}').filter_map(lock_from_str).collect()
}

/// Serializes one file's analysis into the cache text format.
fn write_file(out: &mut String, rel: &str, hash: u64, a: &FileAnalysis) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "file\t{}\t{hash:016x}", esc(rel));
    for f in &a.findings {
        let _ = writeln!(
            out,
            "finding\t{}\t{}\t{}\t{}\t{}",
            f.rule,
            f.line,
            f.col,
            f.status.name(),
            esc(&f.message)
        );
    }
    for s in &a.suppressions {
        let _ = writeln!(out, "sup\t{}\t{}", s.line, s.rules.join(","));
    }
    for &h in &a.hot_lines {
        let _ = writeln!(out, "hot\t{h}");
    }
    for s in &a.summaries {
        let _ = writeln!(
            out,
            "fn\t{}\t{}\t{}\t{}\t{}\t{}",
            esc(&s.key),
            esc(&s.bare),
            s.line,
            u8::from(s.is_test),
            u8::from(s.has_acquire_fence),
            u8::from(s.has_release_fence),
        );
        for c in &s.calls {
            let _ = writeln!(
                out,
                "call\t{}\t{}\t{}",
                esc(&c.callee),
                c.line,
                locks_to_str(&c.locks_held)
            );
        }
        for q in &s.lock_acqs {
            let _ = writeln!(
                out,
                "acq\t{}\t{}\t{}\t{}",
                lock_to_str(&q.id),
                q.line,
                q.col,
                locks_to_str(&q.held_before)
            );
        }
        for op in &s.atomics {
            let kind = match op.kind {
                AtomicKind::Store => "store",
                AtomicKind::Load => "load",
                AtomicKind::Rmw => "rmw",
            };
            let _ = writeln!(
                out,
                "atom\t{}\t{kind}\t{}\t{}\t{}\t{}\t{}",
                esc(&op.field),
                esc(&op.ordering),
                u8::from(op.gating),
                u8::from(op.after_write),
                op.line,
                op.col,
            );
        }
        for al in &s.allocs {
            let _ = writeln!(out, "alloc\t{}\t{}\t{}", esc(&al.what), al.line, al.col);
        }
        for c in &s.casts {
            let _ = writeln!(out, "cast\t{}\t{}\t{}", esc(&c.ty), c.line, c.col);
        }
        for h in &s.hash_iters {
            let _ = writeln!(
                out,
                "hiter\t{}\t{}\t{}\t{}",
                h.line,
                h.col,
                esc(h.sink.as_deref().unwrap_or("")),
                esc(&h.desc)
            );
        }
        for b in &s.blocking {
            let _ = writeln!(
                out,
                "blockop\t{}\t{}\t{}\t{}",
                esc(&b.what),
                b.line,
                b.col,
                lock_to_str(&b.held)
            );
        }
        for (desc, line) in &s.unordered_decls {
            let _ = writeln!(out, "udecl\t{}\t{line}", esc(desc));
        }
    }
    let _ = writeln!(out, "end\t{}\t{}", a.stats.suppressed, a.findings.len());
}

/// Saves the cache (atomically via a temp file; failures are ignored —
/// caching is best-effort).
pub fn save(path: &Path, entries: &[(String, u64, &FileAnalysis)]) {
    let mut out = String::new();
    out.push_str(&format!("{FORMAT}\t{:016x}\n", rules_fingerprint()));
    for (rel, hash, a) in entries {
        write_file(&mut out, rel, *hash, a);
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, &out).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Loads the cache; any header mismatch, parse error, or I/O error
/// yields an empty cache.
pub fn load(path: &Path) -> Cache {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Cache::default();
    };
    parse(&text).unwrap_or_default()
}

fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let (fmt, fp) = header.split_once('\t')?;
    if fmt != FORMAT || fp != format!("{:016x}", rules_fingerprint()) {
        return None;
    }
    let mut cache = Cache::default();
    let mut rel: Option<String> = None;
    let mut hash = 0u64;
    let mut a = FileAnalysis::default();
    let mut closed = true;
    for line in lines {
        let mut parts = line.split('\t');
        let tag = parts.next()?;
        let rest: Vec<&str> = parts.collect();
        match tag {
            "file" => {
                if rel.is_some() {
                    // Previous block never hit `end`: discard everything.
                    return None;
                }
                rel = Some(unesc(rest.first()?));
                hash = u64::from_str_radix(rest.get(1)?, 16).ok()?;
                a = FileAnalysis::default();
                closed = false;
            }
            "finding" => {
                let id = *rest.first()?;
                let rule = RULES.iter().find(|r| r.id == id)?.id;
                let status = match *rest.get(3)? {
                    "active" => Status::Active,
                    "suppressed" => Status::Suppressed,
                    "baselined" => Status::Active, // baseline re-applies per run
                    _ => return None,
                };
                a.findings.push(Finding {
                    rule,
                    file: rel.clone()?,
                    line: rest.get(1)?.parse().ok()?,
                    col: rest.get(2)?.parse().ok()?,
                    message: unesc(rest.get(4)?),
                    status,
                });
            }
            "sup" => {
                a.suppressions.push(Suppression {
                    line: rest.first()?.parse().ok()?,
                    rules: rest
                        .get(1)?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                });
            }
            "hot" => a.hot_lines.push(rest.first()?.parse().ok()?),
            "fn" => {
                a.summaries.push(FnSummary {
                    key: unesc(rest.first()?),
                    bare: unesc(rest.get(1)?),
                    file: rel.clone()?,
                    line: rest.get(2)?.parse().ok()?,
                    is_test: *rest.get(3)? == "1",
                    has_acquire_fence: *rest.get(4)? == "1",
                    has_release_fence: *rest.get(5)? == "1",
                    ..FnSummary::default()
                });
            }
            "call" => {
                a.summaries.last_mut()?.calls.push(CallSite {
                    callee: unesc(rest.first()?),
                    line: rest.get(1)?.parse().ok()?,
                    locks_held: locks_from_str(rest.get(2).copied().unwrap_or("")),
                });
            }
            "acq" => {
                a.summaries.last_mut()?.lock_acqs.push(LockAcq {
                    id: lock_from_str(rest.first()?)?,
                    line: rest.get(1)?.parse().ok()?,
                    col: rest.get(2)?.parse().ok()?,
                    held_before: locks_from_str(rest.get(3).copied().unwrap_or("")),
                });
            }
            "atom" => {
                let kind = match *rest.get(1)? {
                    "store" => AtomicKind::Store,
                    "load" => AtomicKind::Load,
                    "rmw" => AtomicKind::Rmw,
                    _ => return None,
                };
                a.summaries.last_mut()?.atomics.push(AtomicOp {
                    field: unesc(rest.first()?),
                    kind,
                    ordering: unesc(rest.get(2)?),
                    gating: *rest.get(3)? == "1",
                    after_write: *rest.get(4)? == "1",
                    line: rest.get(5)?.parse().ok()?,
                    col: rest.get(6)?.parse().ok()?,
                });
            }
            "alloc" => {
                a.summaries.last_mut()?.allocs.push(AllocSite {
                    what: unesc(rest.first()?),
                    line: rest.get(1)?.parse().ok()?,
                    col: rest.get(2)?.parse().ok()?,
                });
            }
            "cast" => {
                a.summaries.last_mut()?.casts.push(CastSite {
                    ty: unesc(rest.first()?),
                    line: rest.get(1)?.parse().ok()?,
                    col: rest.get(2)?.parse().ok()?,
                });
            }
            "hiter" => {
                let sink = unesc(rest.get(2)?);
                a.summaries.last_mut()?.hash_iters.push(HashIterSite {
                    line: rest.first()?.parse().ok()?,
                    col: rest.get(1)?.parse().ok()?,
                    sink: (!sink.is_empty()).then_some(sink),
                    desc: unesc(rest.get(3)?),
                });
            }
            "blockop" => {
                a.summaries.last_mut()?.blocking.push(BlockSite {
                    what: unesc(rest.first()?),
                    line: rest.get(1)?.parse().ok()?,
                    col: rest.get(2)?.parse().ok()?,
                    held: lock_from_str(rest.get(3)?)?,
                });
            }
            "udecl" => {
                a.summaries
                    .last_mut()?
                    .unordered_decls
                    .push((unesc(rest.first()?), rest.get(1)?.parse().ok()?));
            }
            "end" => {
                let r = rel.take()?;
                a.stats = ScanStats {
                    suppressed: rest.first()?.parse().ok()?,
                };
                let count: usize = rest.get(1)?.parse().ok()?;
                if a.findings.len() != count {
                    return None;
                }
                let done = std::mem::take(&mut a);
                cache.hashes.insert(r.clone(), hash);
                cache.analyses.insert(r, done);
                closed = true;
            }
            _ => return None,
        }
    }
    // A trailing unterminated block (crash mid-write) poisons nothing:
    // it was never inserted. But a dangling `rel` means truncation.
    if !closed {
        return None;
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;
    use crate::rules::FileKind;

    fn sample_analysis() -> FileAnalysis {
        let src = "use std::collections::HashMap;\n\
                   use std::sync::Mutex;\n\
                   // oftec-lint: hot\n\
                   pub fn hot_path(n: usize) -> usize { n }\n\
                   pub struct S { map: Mutex<HashMap<u32, u32>> }\n\
                   impl S {\n\
                       // oftec-lint: allow(L008, exercised by the cache round-trip test)\n\
                       pub fn count(&self) -> usize {\n\
                           let g = self.map.lock();\n\
                           let _ = g;\n\
                           0\n\
                       }\n\
                   }\n";
        analyze_source("crates/serve/src/x.rs", src, "serve", FileKind::Lib)
    }

    #[test]
    fn round_trips_analysis_byte_identically() {
        let a = sample_analysis();
        let rel = "crates/serve/src/x.rs".to_string();
        let mut serialized = String::new();
        serialized.push_str(&format!("{FORMAT}\t{:016x}\n", rules_fingerprint()));
        write_file(&mut serialized, &rel, 0xabcd, &a);
        let mut cache = parse(&serialized).expect("parse back");
        assert!(cache.hit(&rel, 0xabcd));
        assert!(!cache.hit(&rel, 0xabce), "hash mismatch must miss");
        let b = cache.take(&rel).expect("entry");

        // Round-tripped analysis must reproduce the serialized form
        // exactly — this is what makes warm-cache output byte-identical.
        let mut reserialized = String::new();
        reserialized.push_str(&format!("{FORMAT}\t{:016x}\n", rules_fingerprint()));
        write_file(&mut reserialized, &rel, 0xabcd, &b);
        assert_eq!(serialized, reserialized);
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.summaries.len(), b.summaries.len());
        assert_eq!(a.hot_lines, b.hot_lines);
        assert_eq!(a.stats.suppressed, b.stats.suppressed);
    }

    #[test]
    fn header_mismatch_and_corruption_yield_empty() {
        assert!(parse("bogus\t123\n").is_none());
        let good_header = format!("{FORMAT}\t{:016x}\n", rules_fingerprint());
        assert!(parse(&format!("{good_header}file\tx.rs\tnothex\n")).is_none());
        // Truncated block (no `end`).
        assert!(parse(&format!("{good_header}file\tx.rs\t00000000000000ab\n")).is_none());
        // Empty cache is fine.
        assert!(parse(&good_header).is_some());
    }

    #[test]
    fn escaping_survives_tabs_and_newlines() {
        let s = "a\tb\nc\\d\u{1f}e";
        assert_eq!(unesc(&esc(s)), s);
    }
}
