//! The tool is subject to its own gate: a full workspace run must report
//! no active findings in `crates/lint/`, and with the checked-in baseline
//! the whole workspace must be clean under `--deny all`.

use oftec_lint::{run, DenySet, RunConfig, Status};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn lint_is_clean_on_its_own_source() {
    let root = workspace_root();
    let config = RunConfig {
        root: root.clone(),
        baseline: root.join("lint-baseline.toml"),
        deny: DenySet::All,
    };
    let report = run(&config).expect("workspace scan succeeds");
    assert!(report.files_scanned > 0, "scan walked no files");

    let own: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/lint/") && f.status == Status::Active)
        .map(|f| format!("{}:{}:{} {} {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        own.is_empty(),
        "oftec-lint flags its own source:\n{}",
        own.join("\n")
    );
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = workspace_root();
    let deny = DenySet::All;
    let config = RunConfig {
        root: root.clone(),
        baseline: root.join("lint-baseline.toml"),
        deny: deny.clone(),
    };
    let report = run(&config).expect("workspace scan succeeds");
    let denied: Vec<String> = report
        .denied(&deny)
        .map(|f| format!("{}:{}:{} {} {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        denied.is_empty() && report.stale.is_empty(),
        "gate violations:\n{}\nstale baseline entries: {}",
        denied.join("\n"),
        report.stale.len()
    );
}
