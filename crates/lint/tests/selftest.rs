//! The tool is subject to its own gate: a full workspace run must report
//! no active findings in `crates/lint/`, and with the checked-in baseline
//! the whole workspace must be clean under `--deny all`. The run itself
//! is under the determinism contract: byte-identical reports at any
//! thread count, and warm-cache runs replay the cold run exactly.

use oftec_lint::{render_jsonl, run, DenySet, RunConfig, Status};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn config(root: &Path) -> RunConfig {
    RunConfig {
        root: root.to_path_buf(),
        baseline: root.join("lint-baseline.toml"),
        deny: DenySet::All,
        threads: None,
        cache: None,
    }
}

#[test]
fn lint_is_clean_on_its_own_source() {
    let root = workspace_root();
    let report = run(&config(&root)).expect("workspace scan succeeds");
    assert!(report.files_scanned > 0, "scan walked no files");

    let own: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/lint/") && f.status == Status::Active)
        .map(|f| format!("{}:{}:{} {} {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        own.is_empty(),
        "oftec-lint flags its own source:\n{}",
        own.join("\n")
    );
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = workspace_root();
    let deny = DenySet::All;
    let report = run(&config(&root)).expect("workspace scan succeeds");
    let denied: Vec<String> = report
        .denied(&deny)
        .map(|f| format!("{}:{}:{} {} {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        denied.is_empty() && report.stale.is_empty(),
        "gate violations:\n{}\nstale baseline entries: {}",
        denied.join("\n"),
        report.stale.len()
    );
}

#[test]
fn report_is_byte_identical_across_thread_counts_and_cache_states() {
    let root = workspace_root();
    let tmp = std::env::temp_dir().join(format!("oftec-lint-selftest-{}", std::process::id()));
    let cache_path = tmp.join("cache.v1");

    let mut serial = config(&root);
    serial.threads = Some(1);
    let baseline_report = render_jsonl(&run(&serial).expect("serial run"));

    let mut wide = config(&root);
    wide.threads = Some(8);
    wide.cache = Some(cache_path.clone());
    let cold = render_jsonl(&run(&wide).expect("cold 8-thread run"));
    assert_eq!(
        baseline_report, cold,
        "8-thread report diverges from the serial report"
    );
    assert!(cache_path.exists(), "cold run populated no cache");

    let warm = render_jsonl(&run(&wide).expect("warm 8-thread run"));
    assert_eq!(cold, warm, "warm-cache report diverges from the cold run");
    let _ = std::fs::remove_dir_all(&tmp);
}
