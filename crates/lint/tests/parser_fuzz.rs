//! Fuzz suite for the lint lexer and parser: arbitrary bytes, mutated
//! real workspace sources, and generated token soup must never panic,
//! always terminate, and keep token spans ordered and in-bounds. The
//! analyses built on top (symbol resolution, dataflow summaries, the
//! file-local semantic rules) are driven through the same inputs via
//! `analyze_source`, since `Expr::Opaque` recovery bugs tend to surface
//! one layer up.

use oftec_lint::engine::analyze_source;
use oftec_lint::lexer::{lex, Tok, TokKind};
use oftec_lint::parser::parse_file;
use oftec_lint::rules::FileKind;
use proptest::prelude::*;

/// The span invariant every lex must uphold, on any input: ordered,
/// non-empty, in-bounds (char-indexed) spans whose slice reproduces the
/// token text (up to the `r#` fence of raw identifiers; `Str`/`Char`
/// tokens carry empty text by design).
fn assert_span_round_trip(src: &str, toks: &[Tok]) {
    let chars: Vec<char> = src.chars().collect();
    let mut prev_hi = 0u32;
    for t in toks {
        assert!(t.lo >= prev_hi, "token spans out of order in {src:?}");
        assert!(t.lo < t.hi, "empty token span in {src:?}");
        assert!((t.hi as usize) <= chars.len(), "span past EOF in {src:?}");
        if !t.text.is_empty() {
            let slice: String = chars[t.lo as usize..t.hi as usize].iter().collect();
            assert!(
                slice.ends_with(&t.text),
                "span slice {slice:?} does not cover token text {:?}",
                t.text
            );
        }
        prev_hi = t.hi;
    }
}

/// Full pipeline on one input: lex, span check, parse, analyze. Panics
/// (and therefore proptest failures) are the only failure mode — any
/// input is a legal input.
fn drive(src: &str) {
    let toks = lex(src);
    assert_span_round_trip(src, &toks);
    let code: Vec<Tok> = toks
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let _ = parse_file(&code);
    let _ = analyze_source("crates/serve/src/fuzz.rs", src, "serve", FileKind::Lib);
}

/// Rust-ish fragments the soup generator splices together. Deliberately
/// includes every construct the parser special-cases: raw strings with
/// `#` fences, lifetimes next to char literals, turbofish, nested use
/// groups, attributes, and unbalanced delimiters.
const FRAGMENTS: &[&str] = &[
    "fn f(x: u32) -> u32 { x }",
    "let g = m.lock();",
    "for (k, v) in map.iter() {",
    "}",
    "{",
    "impl<'a, T: Ord> S<'a, T> ",
    "use std::collections::{HashMap, BTreeMap as Ordered, hash_map::Entry};",
    "r#\"raw \" string\"#",
    "r##\"nested \"# fence\"##",
    "'a",
    "'x'",
    "'\\n'",
    "b'\\''",
    "struct P { f: Mutex<HashMap<u32, Vec<u8>>> }",
    ".collect::<BTreeMap<_, _>>()",
    "x as u32",
    "#[cfg(test)] mod t ",
    "#![allow(dead_code)]",
    "match x { Some(_) => 1, None => 2 }",
    "static N: AtomicU64 = AtomicU64::new(0);",
    "self.flag.store(true, Ordering::Relaxed);",
    "// oftec-lint: allow(L001, fuzz)",
    "/* block ",
    "*/",
    "\"unterminated",
    "::<",
    ">>",
    "=>",
    "..=",
    "($:tt)",
    "\u{fffd}\u{1f600}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes (lossily decoded) never panic the pipeline.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0usize..512)) {
        let src = String::from_utf8_lossy(&bytes);
        drive(&src);
    }

    /// Random splices of Rust-ish fragments never panic and always
    /// terminate, covering deep nesting and unbalanced delimiters.
    #[test]
    fn fragment_soup_never_panics(
        picks in proptest::collection::vec((0usize..30, 0usize..3), 0usize..64)
    ) {
        let mut src = String::new();
        for (idx, sep) in picks {
            src.push_str(FRAGMENTS[idx % FRAGMENTS.len()]);
            src.push_str([" ", "\n", ""][sep]);
        }
        drive(&src);
    }

    /// Real workspace sources, mutated by deleting, duplicating, or
    /// corrupting a random slice, never panic. This is the highest-yield
    /// generator: it produces almost-valid Rust that exercises the
    /// recovery paths instead of the opaque fallback.
    #[test]
    fn mutated_workspace_sources_never_panic(
        file_idx in 0usize..4,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..0.25,
        op in 0usize..4,
    ) {
        let manifest = env!("CARGO_MANIFEST_DIR");
        let paths = [
            format!("{manifest}/src/lexer.rs"),
            format!("{manifest}/src/engine.rs"),
            format!("{manifest}/../serve/src/cache.rs"),
            format!("{manifest}/../telemetry/src/recorder.rs"),
        ];
        let src = std::fs::read_to_string(&paths[file_idx]).unwrap_or_default();
        let chars: Vec<char> = src.chars().collect();
        let n = chars.len();
        let start = ((n as f64) * start_frac) as usize;
        let len = (((n as f64) * len_frac) as usize).min(n.saturating_sub(start));
        let mutated: String = match op {
            // Truncate at `start`.
            0 => chars[..start].iter().collect(),
            // Delete the slice.
            1 => chars[..start]
                .iter()
                .chain(&chars[(start + len).min(n)..])
                .collect(),
            // Duplicate the slice in place.
            2 => chars[..start + len]
                .iter()
                .chain(&chars[start..])
                .collect(),
            // Overwrite the slice with fence-sensitive noise.
            _ => {
                let mut s: String = chars[..start].iter().collect();
                for i in 0..len {
                    s.push(['"', '\'', '#', '{', '<', 'r'][i % 6]);
                }
                s.extend(&chars[(start + len).min(n)..]);
                s
            }
        };
        drive(&mutated);
    }
}

/// Regression: raw strings with `#` fences must be lexed as one token —
/// an early lexer draft resynchronized on the inner quote, splitting the
/// remainder of the file into garbage tokens.
#[test]
fn raw_string_fences_lex_as_single_tokens() {
    let src = "let a = r#\"has \" quote\"#; let b = r##\"has \"# inner\"##; a.unwrap();";
    let toks = lex(src);
    assert_span_round_trip(src, &toks);
    let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
    assert_eq!(strs, 2, "each raw string is exactly one token");
    // The unwrap after the raw strings is still visible to the rules.
    assert!(toks.iter().any(|t| t.text == "unwrap"));
}

/// Regression: a lifetime tick followed by an identifier must not be
/// confused with an unterminated char literal (`'a>` vs `'a'`), which
/// once swallowed the rest of the generic parameter list.
#[test]
fn lifetime_vs_char_literal_disambiguation() {
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    let toks = lex(src);
    assert_span_round_trip(src, &toks);
    let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
    let chars_ = toks.iter().filter(|t| t.kind == TokKind::Char).count();
    assert_eq!((lifetimes, chars_), (2, 1));
    // And the parser still sees the function.
    let code: Vec<Tok> = toks;
    let file = parse_file(&code);
    let mut names = Vec::new();
    oftec_lint::ast::for_each_fn(&file.items, &mut |def| names.push(def.name.clone()));
    assert_eq!(names, ["f"]);
}

/// Degenerate deeply nested input terminates quickly (recursion guard)
/// instead of overflowing the stack.
#[test]
fn pathological_nesting_terminates() {
    for unit in ["(", "{", "[", "<", "use a::{"] {
        let src = unit.repeat(2_000);
        drive(&src);
    }
}
