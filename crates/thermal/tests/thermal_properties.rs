//! Property-based physics checks of the thermal network.
//!
//! The folded steady-state operator is an M-matrix away from runaway, so
//! strong structural properties hold: monotonicity in injected power,
//! affine superposition (zero leakage), floor at ambient, and energy
//! conservation for arbitrary workloads.

use oftec_floorplan::alpha21264;
use oftec_power::{ExponentialLeakage, LeakageModel, McpatBudget};
use oftec_thermal::{HybridCoolingModel, OperatingPoint, PackageConfig};
use oftec_units::{AngularVelocity, Current, Power, Temperature};
use proptest::prelude::*;

fn zero_leakage(n: usize) -> LeakageModel {
    LeakageModel::new(vec![
        ExponentialLeakage::new(
            Power::ZERO,
            Temperature::from_celsius(45.0),
            0.0,
        );
        n
    ])
}

fn unit_powers() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..4.0f64, 15)
}

fn op(rpm: f64, amps: f64) -> OperatingPoint {
    OperatingPoint::new(AngularVelocity::from_rpm(rpm), Current::from_amperes(amps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn temperatures_floor_at_ambient_without_tec(powers in unit_powers()) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model = HybridCoolingModel::fan_only(&fp, &cfg, powers, &zero_leakage(15));
        let sol = model.solve(op(3000.0, 0.0)).unwrap();
        // Passive conduction cannot cool below ambient anywhere.
        for &t in sol.node_temperatures() {
            prop_assert!(t >= cfg.ambient.kelvin() - 1e-6);
        }
    }

    #[test]
    fn monotone_in_power(powers in unit_powers(), extra in 0.5..5.0f64, which in 0usize..15) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let leak = zero_leakage(15);
        let base = HybridCoolingModel::fan_only(&fp, &cfg, powers.clone(), &leak);
        let mut more = powers;
        more[which] += extra;
        let bumped = HybridCoolingModel::fan_only(&fp, &cfg, more, &leak);
        let o = op(2500.0, 0.0);
        let t0 = base.solve(o).unwrap();
        let t1 = bumped.solve(o).unwrap();
        // M-matrix monotonicity: more power anywhere heats everywhere
        // (weakly).
        for (a, b) in t1.node_temperatures().iter().zip(t0.node_temperatures()) {
            prop_assert!(a + 1e-9 >= *b);
        }
        prop_assert!(t1.max_chip_temperature() >= t0.max_chip_temperature());
    }

    #[test]
    fn affine_superposition_without_leakage(
        p1 in unit_powers(),
        p2 in unit_powers(),
    ) {
        // With zero leakage and no TEC current the solve is linear in the
        // injected power: ΔT(p1 + p2) = ΔT(p1) + ΔT(p2).
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let leak = zero_leakage(15);
        let o = op(3500.0, 0.0);
        let amb = cfg.ambient.kelvin();
        let solve = |p: Vec<f64>| {
            HybridCoolingModel::fan_only(&fp, &cfg, p, &leak)
                .solve(o)
                .unwrap()
                .node_temperatures()
                .to_vec()
        };
        let sum: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();
        let ta = solve(p1);
        let tb = solve(p2);
        let tc = solve(sum);
        for ((a, b), c) in ta.iter().zip(&tb).zip(&tc) {
            let lhs = c - amb;
            let rhs = (a - amb) + (b - amb);
            prop_assert!((lhs - rhs).abs() < 1e-6 * lhs.abs().max(1.0));
        }
    }

    #[test]
    fn energy_conserved_for_random_workloads(
        powers in unit_powers(),
        rpm in 1500.0..5000.0f64,
        amps in 0.0..3.0f64,
    ) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
        let model = HybridCoolingModel::with_tec(&fp, &cfg, powers.clone(), &leak);
        let o = op(rpm, amps);
        let Ok(sol) = model.solve(o) else {
            // Extremely hot random workloads may legitimately run away.
            return Ok(());
        };
        // Everything injected (dynamic + leakage + TEC electrical) leaves
        // through the solution's power accounting: recompute outflow from
        // the fan conductance ΔT across sink-ambient plus PCB path.
        let injected = powers.iter().sum::<f64>()
            + sol.breakdown().leakage.watts()
            + sol.breakdown().tec.watts();
        // The sink and PCB ambient couplings are internal; use the model's
        // objective bookkeeping instead: q_out computed from temperatures.
        let (sink_start, sink_len) = model.layer_range("sink").unwrap();
        let g_fan = cfg.fan.conductance(o.fan_speed).w_per_k();
        let sink_t = &sol.node_temperatures()[sink_start..sink_start + sink_len];
        let sink_avg = sink_t.iter().sum::<f64>() / sink_len as f64;
        let out_sink = g_fan * (sink_avg - cfg.ambient.kelvin());
        // PCB path is small; allow it as slack.
        prop_assert!(
            (out_sink - injected).abs() < 0.15 * injected.max(1.0),
            "sink outflow {} vs injected {}",
            out_sink,
            injected
        );
    }

    #[test]
    fn runaway_margin_positive_iff_solvable(
        rpm in 0.0..800.0f64,
    ) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
        let powers = vec![2.5; 15];
        let model = HybridCoolingModel::with_tec(&fp, &cfg, powers, &leak);
        let o = op(rpm, 1.0);
        let solvable = model.solve(o).is_ok();
        let margin = model.runaway_margin(o);
        // Spectral margin and solve outcome must agree (the margin is the
        // definitive test; the solve adds a temperature cap, so a positive
        // margin with failed solve is possible only near the cap — accept
        // margin presence ⇒ matrix PD).
        if solvable {
            prop_assert!(margin.is_some(), "solvable at {rpm} RPM but no margin");
        }
        if margin.is_none() {
            prop_assert!(!solvable, "no margin at {rpm} RPM but solvable");
        }
    }
}
