//! Validation of the grid simulator against closed-form 1-D physics.
//!
//! With uniform power over the whole die, adiabatic lateral boundaries
//! (the model's default), and the PCB escape path disabled, the package
//! reduces to a one-dimensional series ladder: chip → TIM1 → (TEC film)
//! → spreader → TIM2 → sink → ambient. That ladder has a closed form,
//! which the full 2.5-D grid solution must approach (it can only sit
//! slightly above, due to spreading resistance where the stack widens).

use oftec_floorplan::alpha21264;
use oftec_power::{ExponentialLeakage, LeakageModel};
use oftec_thermal::{HybridCoolingModel, OperatingPoint, PackageConfig};
use oftec_units::{AngularVelocity, Power, Temperature};

fn zero_leakage(n: usize) -> LeakageModel {
    LeakageModel::new(vec![
        ExponentialLeakage::new(
            Power::ZERO,
            Temperature::from_celsius(45.0),
            0.0
        );
        n
    ])
}

/// Series ladder prediction of the average chip temperature.
fn ladder_prediction(
    cfg: &PackageConfig,
    fp: &oftec_floorplan::Floorplan,
    p_total: f64,
    omega: AngularVelocity,
) -> f64 {
    let die = fp.die_area();
    let spreader = cfg.spreader_edge * cfg.spreader_edge;
    let sink = cfg.sink_edge * cfg.sink_edge;
    // Heat enters mid-chip (the chip cells are volumetric sources), so
    // count half the chip's vertical resistance.
    let r_chip_half = 0.5
        / cfg
            .chip_conductivity
            .conductance(die, cfg.chip_thickness)
            .w_per_k();
    let r_tim1 = 1.0
        / cfg
            .tim_conductivity
            .conductance(die, cfg.tim1_thickness)
            .w_per_k();
    let r_spreader = 1.0
        / cfg
            .metal_conductivity
            .conductance(spreader, cfg.spreader_thickness)
            .w_per_k();
    let r_tim2 = 1.0
        / cfg
            .tim_conductivity
            .conductance(spreader, cfg.tim2_thickness)
            .w_per_k();
    let r_sink = 1.0
        / cfg
            .metal_conductivity
            .conductance(sink, cfg.sink_thickness)
            .w_per_k();
    let r_fan = 1.0 / cfg.fan.conductance(omega).w_per_k();
    cfg.ambient.kelvin() + p_total * (r_chip_half + r_tim1 + r_spreader + r_tim2 + r_sink + r_fan)
}

#[test]
fn grid_average_matches_the_series_ladder() {
    let fp = alpha21264();
    let cfg = PackageConfig {
        // Close the PCB escape so all heat goes up the ladder. The
        // chip-PCB interface stays (slightly) positive to anchor the PCB
        // nodes — with no ambient coupling they float to chip temperature
        // and carry zero heat, which is exactly the adiabatic condition.
        pcb_ambient_convection: 0.0,
        chip_pcb_interface: 1.0,
        ..PackageConfig::dac14()
    };
    let total = 30.0;
    // Uniform areal power.
    let die = fp.die_area().square_meters();
    let dyn_p: Vec<f64> = fp
        .units()
        .iter()
        .map(|u| total * u.rect().area().square_meters() / die)
        .collect();
    let model = HybridCoolingModel::fan_only(&fp, &cfg, dyn_p, &zero_leakage(15));
    let omega = AngularVelocity::from_rpm(3000.0);
    let sol = model.solve(OperatingPoint::fan_only(omega)).unwrap();

    let avg_chip =
        sol.chip_temperatures().iter().sum::<f64>() / sol.chip_temperatures().len() as f64;
    let predicted = ladder_prediction(&cfg, &fp, total, omega);

    // The ladder ignores the constriction where heat funnels from the
    // 30 mm spreader into the 60 mm sink footprint and the die→spreader
    // spreading; the grid result must sit above the ladder but within the
    // spreading-resistance budget (~0.35 K/W · 30 W ≈ 10 K here).
    assert!(
        avg_chip >= predicted - 0.2,
        "grid {avg_chip:.3} K below the ladder bound {predicted:.3} K"
    );
    assert!(
        avg_chip - predicted < 12.0,
        "grid {avg_chip:.3} K too far above the ladder {predicted:.3} K"
    );
    // Uniform power, near-uniform temperatures: the spread across the die
    // must be small compared to the rise above ambient.
    let spread = sol.max_chip_temperature().kelvin() - sol.min_chip_temperature().kelvin();
    let rise = avg_chip - cfg.ambient.kelvin();
    assert!(
        spread < 0.35 * rise,
        "spread {spread:.2} K vs rise {rise:.2} K"
    );
}

#[test]
fn fan_conductance_dominates_the_total_resistance() {
    // Sanity of the Table 1 stack: the ω-dependent sink-to-ambient step is
    // the largest single resistance (the premise of fan-centric cooling).
    let fp = alpha21264();
    let cfg = PackageConfig::dac14();
    let die = fp.die_area();
    let r_tim1 = 1.0
        / cfg
            .tim_conductivity
            .conductance(die, cfg.tim1_thickness)
            .w_per_k();
    let r_fan_max = 1.0 / cfg.fan.conductance(cfg.fan.omega_max).w_per_k();
    let r_fan_still = 1.0 / cfg.fan.g_hs_still;
    assert!(r_fan_still > 10.0 * r_tim1);
    assert!(r_fan_max > r_tim1);
}
