//! Property-based checks of the reduced-order solve path.
//!
//! Three contracts over random workloads × operating points:
//!
//! 1. **Agreement**: a certified reduced solve matches the full CG solve
//!    within the 0.1 K accuracy budget (the certificate is a residual
//!    bound, so this holds for *any* package the build accepts).
//! 2. **Fallback**: with an unsatisfiable residual tolerance every
//!    reduced attempt falls back to the full path — counted, and with
//!    bitwise-identical results to calling the full model directly.
//! 3. **Determinism**: reduced solves are bit-identical at 1 and 8
//!    executor threads (the basis fold is serial per solve; threading
//!    only distributes independent operating points).

use oftec_floorplan::alpha21264;
use oftec_power::{LeakageModel, McpatBudget};
use oftec_thermal::{
    CoolingModel, HybridCoolingModel, OperatingPoint, PackageConfig, ReducedCoolingModel,
    ReductionOptions,
};
use oftec_units::{AngularVelocity, Current};
use proptest::prelude::*;

fn leakage() -> LeakageModel {
    McpatBudget::alpha21264_22nm().distribute(&alpha21264())
}

fn unit_powers() -> impl Strategy<Value = Vec<f64>> {
    // Moderate per-unit dynamic power keeps most of the sampled grid out
    // of thermal runaway while still spanning distinct workloads.
    proptest::collection::vec(0.2..3.0f64, 15)
}

fn op(rpm: f64, amps: f64) -> OperatingPoint {
    OperatingPoint::new(AngularVelocity::from_rpm(rpm), Current::from_amperes(amps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn reduced_agrees_with_full_on_random_packages(
        powers in unit_powers(),
        rpm in 1800.0..5000.0f64,
        amps in 0.0..2.5f64,
    ) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model = HybridCoolingModel::with_tec(&fp, &cfg, powers, &leakage());
        let Ok(red) = model.build_reduced(&ReductionOptions::default()) else {
            // A build can legitimately fail when the random workload
            // leaves too few feasible snapshot points.
            return Ok(());
        };
        let wrapper = ReducedCoolingModel::new(&model, Some(&red));
        let o = op(rpm, amps);
        match (wrapper.solve(o), model.solve(o)) {
            (Ok(fast), Ok(full)) => {
                let err = (fast.max_chip_temperature().kelvin()
                    - full.max_chip_temperature().kelvin())
                .abs();
                prop_assert!(
                    err < 0.1,
                    "die-temp error {err} K at ω={rpm} RPM, I={amps} A"
                );
            }
            // The reduced path never claims a steady state the full path
            // rejects (anomalies fall back), so outcomes agree.
            (Ok(_), Err(e)) => prop_assert!(false, "reduced solved where full failed: {e}"),
            (Err(_), Ok(_)) => prop_assert!(false, "reduced failed where full solved"),
            (Err(_), Err(_)) => {}
        }
    }

    #[test]
    fn impossible_tolerance_always_falls_back(
        powers in unit_powers(),
        rpm in 2200.0..4800.0f64,
        amps in 0.0..2.0f64,
    ) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model = HybridCoolingModel::with_tec(&fp, &cfg, powers, &leakage());
        let Ok(red) = model.build_reduced(&ReductionOptions {
            residual_rtol: 1e-16,
            ..ReductionOptions::default()
        }) else {
            return Ok(());
        };
        let wrapper = ReducedCoolingModel::new(&model, Some(&red));
        let o = op(rpm, amps);
        oftec_telemetry::set_collecting(true);
        let (outcome, buf) = oftec_telemetry::capture(|| wrapper.solve(o));
        prop_assert_eq!(buf.counter("reduction.fallbacks"), 1);
        prop_assert_eq!(buf.counter("reduction.solves"), 0);
        // The fallback is the full path: results (or errors) match the
        // full model bitwise.
        match (outcome, model.solve(o)) {
            (Ok(fast), Ok(full)) => {
                prop_assert_eq!(
                    fast.max_chip_temperature().kelvin().to_bits(),
                    full.max_chip_temperature().kelvin().to_bits()
                );
                for (a, b) in fast
                    .node_temperatures()
                    .iter()
                    .zip(full.node_temperatures())
                {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "fallback and full path disagree on solvability"),
        }
    }

    #[test]
    fn reduced_solves_are_bit_identical_across_thread_counts(
        powers in unit_powers(),
        seed in 0u64..1000,
    ) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model = HybridCoolingModel::with_tec(&fp, &cfg, powers, &leakage());
        let Ok(red) = model.build_reduced(&ReductionOptions::default()) else {
            return Ok(());
        };
        let wrapper = ReducedCoolingModel::new(&model, Some(&red));
        // A deterministic fan of operating points from the seed.
        let ops: Vec<OperatingPoint> = (0..12)
            .map(|i| {
                let x = ((seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i)
                    >> 33) as f64)
                    / (1u64 << 31) as f64;
                op(2000.0 + 2800.0 * x.fract(), 2.0 * ((x * 7.0).fract()))
            })
            .collect();
        let solve_all = |threads: usize| -> Vec<Option<Vec<u64>>> {
            oftec_parallel::par_map_indexed_with(threads, &ops, |_, &o| {
                wrapper.solve(o).ok().map(|sol| {
                    sol.node_temperatures()
                        .iter()
                        .map(|t| t.to_bits())
                        .collect()
                })
            })
        };
        let serial = solve_all(1);
        let parallel = solve_all(8);
        prop_assert_eq!(serial, parallel);
    }
}
