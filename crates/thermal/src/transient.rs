//! Transient RC integration (backward Euler).
//!
//! Supports the paper's §6.2 observation (after reference \[8\]) that the
//! Peltier effect appears immediately while Joule heat arrives with the
//! package's thermal delay, so briefly overdriving `I_TEC` buys extra
//! transient cooling — the basis of the transient-boost controller in the
//! core crate.

use crate::model::folded_preconditioner;
use crate::model::{HybridCoolingModel, OperatingPoint};
use crate::{ThermalError, ThermalSolution};
use oftec_linalg::{solve_cg, IterativeParams};
use oftec_units::Temperature;

/// Controls for [`HybridCoolingModel::simulate_transient`].
#[derive(Debug, Clone, Copy)]
pub struct TransientOptions {
    /// Time step in seconds (backward Euler is unconditionally stable, so
    /// this trades accuracy for speed only).
    pub dt_seconds: f64,
    /// Record the chip state every `record_every` steps (≥ 1).
    pub record_every: usize,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            dt_seconds: 5e-3,
            record_every: 1,
        }
    }
}

/// A recorded transient trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientTrace {
    /// Sample times in seconds.
    pub times: Vec<f64>,
    /// Maximum chip temperature at each sample.
    pub max_chip: Vec<Temperature>,
    /// Final full node-temperature state (Kelvin).
    pub final_state: Vec<f64>,
}

impl TransientTrace {
    /// The hottest chip temperature seen anywhere in the trace, or
    /// absolute zero on an empty trace (cannot happen for `steps ≥ 1`).
    pub fn peak(&self) -> Temperature {
        self.max_chip
            .iter()
            .copied()
            .fold(Temperature::ABSOLUTE_ZERO, Temperature::max)
    }

    /// The final recorded maximum chip temperature, or absolute zero on
    /// an empty trace (cannot happen for `steps ≥ 1`) — the same
    /// degenerate value [`TransientTrace::peak`] reports.
    pub fn last(&self) -> Temperature {
        self.max_chip
            .last()
            .copied()
            .unwrap_or(Temperature::ABSOLUTE_ZERO)
    }
}

impl HybridCoolingModel {
    /// Integrates the network from `initial` (a previously solved state,
    /// or `None` for an all-ambient start) over `steps` backward-Euler
    /// steps at the given operating point.
    ///
    /// Each step solves `(C/Δt + G_folded)·T⁺ = C/Δt·T + b`, which keeps
    /// the matrix symmetric positive definite even *past* the runaway
    /// boundary — transient simulation can ride through states that have
    /// no steady solution (that is the point of the transient boost).
    ///
    /// # Errors
    ///
    /// - [`ThermalError::InvalidOperatingPoint`] on bound violations,
    /// - [`ThermalError::Runaway`] if temperatures pass the runaway cap
    ///   during integration,
    /// - [`ThermalError::Solver`] on numerical failure.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or the options are non-positive.
    pub fn simulate_transient(
        &self,
        op: OperatingPoint,
        initial: Option<&ThermalSolution>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError> {
        self.simulate_transient_from(op, initial.map(|sol| sol.node_temperatures()), steps, opts)
    }

    /// Like [`HybridCoolingModel::simulate_transient`], but starting from
    /// a raw node-temperature state (e.g. the `final_state` of a previous
    /// trace) — the building block for closed-loop controller simulation,
    /// where the operating point changes between windows.
    ///
    /// # Errors
    ///
    /// Same as [`HybridCoolingModel::simulate_transient`]; additionally
    /// [`ThermalError::Config`] if `initial` has the wrong length.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or the options are non-positive.
    pub fn simulate_transient_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError> {
        assert!(steps > 0, "need at least one step");
        assert!(opts.dt_seconds > 0.0, "time step must be positive");
        assert!(opts.record_every >= 1, "record_every must be ≥ 1");
        self.validate_operating_point(op)?;
        if let Some(init) = initial {
            if init.len() != self.network().n_nodes {
                return Err(ThermalError::Config(format!(
                    "initial state has {} nodes, expected {}",
                    init.len(),
                    self.network().n_nodes
                )));
            }
        }

        let net = self.network();
        let n = net.n_nodes;
        let fan_g = self.config().fan.conductance(op.fan_speed).w_per_k();
        let t_amb = self.config().ambient.kelvin();
        let i_tec = op.tec_current.amperes();
        let (chip_start, chip_cells) = self.chip_range();

        // Folded static matrix and RHS, as in the steady solve — assembled
        // from the cached skeleton instead of a fresh triplet sort.
        let skeleton = self.skeleton();
        let (mut matrix, mut rhs_static) = skeleton.assemble(fan_g);
        {
            let values = matrix.values_mut();
            for (cell, lk) in self.cell_leak().iter().enumerate() {
                let node = chip_start + cell;
                values[skeleton.diag_index(node)] += -lk.a;
                rhs_static[node] += self.dyn_power_cell(cell) + lk.b - lk.a * lk.t_ref;
            }
        }
        self.fold_tec_in_place(matrix.values_mut(), &mut rhs_static, i_tec);

        // Add C/Δt to the diagonal.
        let inv_dt = 1.0 / opts.dt_seconds;
        {
            let values = matrix.values_mut();
            for i in 0..n {
                values[skeleton.diag_index(i)] += net.capacitance[i] * inv_dt;
            }
        }
        // The stepping matrix is constant along the trajectory, so the
        // ILU(0) factorization is paid once and reused at every step.
        let precond = folded_preconditioner(&matrix, &skeleton.diagonal_of(&matrix))?;
        let params = IterativeParams {
            rtol: 1e-9,
            atol: 1e-12,
            max_iter: 20 * n,
        };

        let mut state: Vec<f64> = match initial {
            Some(init) => init.to_vec(),
            None => vec![t_amb; n],
        };
        let cap = self.config().runaway_cap.kelvin();

        let _span = oftec_telemetry::span("transient.simulate");
        oftec_telemetry::counter_add("transient.steps", steps as u64);
        let mut times = Vec::new();
        let mut max_chip = Vec::new();
        let mut rhs = vec![0.0; n];
        for step in 1..=steps {
            for i in 0..n {
                rhs[i] = rhs_static[i] + net.capacitance[i] * inv_dt * state[i];
            }
            let summary = solve_cg(&matrix, &rhs, Some(&state), precond.as_ref(), &params)
                .map_err(ThermalError::from)?;
            state = summary.x;
            let hottest = state[chip_start..chip_start + chip_cells]
                .iter()
                .fold(f64::NEG_INFINITY, |m, &t| m.max(t));
            if hottest > cap {
                return Err(ThermalError::Runaway(
                    "transient trajectory crossed the runaway cap",
                ));
            }
            if step % opts.record_every == 0 || step == steps {
                times.push(step as f64 * opts.dt_seconds);
                max_chip.push(Temperature::from_kelvin(hottest));
            }
        }
        Ok(TransientTrace {
            times,
            max_chip,
            final_state: state,
        })
    }

    /// Per-cell dynamic power accessor for the transient path.
    fn dyn_power_cell(&self, cell: usize) -> f64 {
        self.dyn_power_slice()[cell]
    }

    /// Integrates the network under a **time-varying workload**: one
    /// backward-Euler step per sample of `trace` (at the trace's own
    /// sampling interval), with the dynamic power re-distributed into the
    /// chip cells at every step. This is the paper's Figure 5 pipeline
    /// run in the time domain instead of collapsing the trace to its
    /// per-unit maximum.
    ///
    /// The trace's unit order must match the model's floorplan (as
    /// produced by [`oftec_power::Benchmark::synthesize_trace`] on the
    /// same floorplan).
    ///
    /// # Errors
    ///
    /// - [`ThermalError::Config`] if the trace's unit names differ from
    ///   the model's, or the trace is empty.
    /// - Otherwise as [`HybridCoolingModel::simulate_transient`].
    pub fn simulate_power_trace(
        &self,
        op: OperatingPoint,
        trace: &oftec_power::PowerTrace,
        initial: Option<&ThermalSolution>,
        record_every: usize,
    ) -> Result<TransientTrace, ThermalError> {
        assert!(record_every >= 1, "record_every must be ≥ 1");
        self.validate_operating_point(op)?;
        if trace.is_empty() {
            return Err(ThermalError::Config("empty power trace".into()));
        }
        if trace.unit_names() != self.unit_names() {
            return Err(ThermalError::Config(
                "trace unit names do not match the model's floorplan".into(),
            ));
        }

        let net = self.network();
        let n = net.n_nodes;
        let fan_g = self.config().fan.conductance(op.fan_speed).w_per_k();
        let t_amb = self.config().ambient.kelvin();
        let i_tec = op.tec_current.amperes();
        let (chip_start, chip_cells) = self.chip_range();
        let dt = trace.dt_seconds();

        // Folded matrix and the workload-independent part of the RHS,
        // assembled from the cached skeleton.
        let skeleton = self.skeleton();
        let (mut matrix, mut rhs_base) = skeleton.assemble(fan_g);
        {
            let values = matrix.values_mut();
            for (cell, lk) in self.cell_leak().iter().enumerate() {
                let node = chip_start + cell;
                values[skeleton.diag_index(node)] += -lk.a;
                rhs_base[node] += lk.b - lk.a * lk.t_ref;
            }
        }
        self.fold_tec_in_place(matrix.values_mut(), &mut rhs_base, i_tec);
        let inv_dt = 1.0 / dt;
        {
            let values = matrix.values_mut();
            for i in 0..n {
                values[skeleton.diag_index(i)] += net.capacitance[i] * inv_dt;
            }
        }
        let precond = folded_preconditioner(&matrix, &skeleton.diagonal_of(&matrix))?;
        let params = IterativeParams {
            rtol: 1e-9,
            atol: 1e-12,
            max_iter: 20 * n,
        };

        let mut state: Vec<f64> = match initial {
            Some(sol) => sol.node_temperatures().to_vec(),
            None => vec![t_amb; n],
        };
        let cap = self.config().runaway_cap.kelvin();
        let _span = oftec_telemetry::span("transient.simulate");
        oftec_telemetry::counter_add("transient.steps", trace.len() as u64);
        let mut times = Vec::new();
        let mut max_chip = Vec::new();
        let mut rhs = vec![0.0; n];
        for step in 0..trace.len() {
            let cells = self.distribute_unit_power(trace.sample(step));
            for i in 0..n {
                rhs[i] = rhs_base[i] + net.capacitance[i] * inv_dt * state[i];
            }
            for (cell, p) in cells.iter().enumerate() {
                rhs[chip_start + cell] += p;
            }
            let summary = solve_cg(&matrix, &rhs, Some(&state), precond.as_ref(), &params)
                .map_err(ThermalError::from)?;
            state = summary.x;
            let hottest = state[chip_start..chip_start + chip_cells]
                .iter()
                .fold(f64::NEG_INFINITY, |m, &t| m.max(t));
            if hottest > cap {
                return Err(ThermalError::Runaway(
                    "trace-driven trajectory crossed the runaway cap",
                ));
            }
            if (step + 1) % record_every == 0 || step + 1 == trace.len() {
                times.push((step + 1) as f64 * dt);
                max_chip.push(Temperature::from_kelvin(hottest));
            }
        }
        Ok(TransientTrace {
            times,
            max_chip,
            final_state: state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OperatingPoint, PackageConfig};
    use oftec_floorplan::alpha21264;
    use oftec_power::McpatBudget;
    use oftec_units::{AngularVelocity, Current};

    fn setup(total_dyn: f64) -> HybridCoolingModel {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let die = fp.die_area().square_meters();
        // Core-heavy split (like the benchmarks): 60% in the execution
        // cluster, the rest by area — keeps the hot spot under TEC cover.
        let mut dyn_p: Vec<f64> = fp
            .units()
            .iter()
            .map(|u| 0.4 * total_dyn * u.rect().area().square_meters() / die)
            .collect();
        dyn_p[fp.unit_index("IntExec").unwrap()] += 0.45 * total_dyn;
        dyn_p[fp.unit_index("FPMul").unwrap()] += 0.15 * total_dyn;
        let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
        HybridCoolingModel::with_tec(&fp, &cfg, dyn_p, &leak)
    }

    fn op(rpm: f64, amps: f64) -> OperatingPoint {
        OperatingPoint::new(AngularVelocity::from_rpm(rpm), Current::from_amperes(amps))
    }

    #[test]
    fn transient_approaches_steady_state() {
        let model = setup(20.0);
        let o = op(3000.0, 1.0);
        let steady = model.solve(o).unwrap();
        // Long integration with big steps: must land on the steady state.
        let trace = model
            .simulate_transient(
                o,
                None,
                400,
                &TransientOptions {
                    dt_seconds: 0.5,
                    record_every: 50,
                },
            )
            .unwrap();
        let dt = (trace.last().kelvin() - steady.max_chip_temperature().kelvin()).abs();
        assert!(dt < 0.2, "transient missed steady state by {dt} K");
    }

    #[test]
    fn heating_is_monotone_from_ambient() {
        let model = setup(25.0);
        let trace = model
            .simulate_transient(
                op(3000.0, 0.5),
                None,
                50,
                &TransientOptions {
                    dt_seconds: 0.1,
                    record_every: 5,
                },
            )
            .unwrap();
        for w in trace.max_chip.windows(2) {
            assert!(w[1] >= w[0], "temperature dipped while heating");
        }
        assert_eq!(trace.times.len(), trace.max_chip.len());
    }

    #[test]
    fn peltier_boost_cools_faster_than_steady_current() {
        // From a hot steady state, stepping the current up by 1 A must
        // lower the chip temperature within the first second (the paper's
        // transient-boost premise): the Peltier term acts instantly, while
        // the extra Joule heat needs to diffuse through the stack.
        let model = setup(26.0);
        let base = op(2500.0, 1.0);
        let steady = model.solve(base).unwrap();
        let boosted = op(2500.0, 2.0);
        let trace = model
            .simulate_transient(
                boosted,
                Some(&steady),
                100,
                &TransientOptions {
                    dt_seconds: 0.01,
                    record_every: 10,
                },
            )
            .unwrap();
        let t0 = steady.max_chip_temperature().kelvin();
        let after = trace.max_chip.first().unwrap().kelvin();
        assert!(
            after < t0,
            "boost did not cool within 0.1 s: {after} vs {t0}"
        );
    }

    #[test]
    fn transient_survives_past_runaway_boundary_briefly() {
        // An operating point with no steady state can still be integrated
        // for a short while from a cool start.
        let model = setup(50.0);
        let bad = op(5.0, 0.0);
        assert!(model.solve(bad).is_err());
        let trace = model
            .simulate_transient(
                bad,
                None,
                20,
                &TransientOptions {
                    dt_seconds: 0.01,
                    record_every: 5,
                },
            )
            .unwrap();
        // Heating, not converged, but finite.
        assert!(trace.last().kelvin() < model.config().runaway_cap.kelvin());
    }

    #[test]
    fn trace_driven_simulation_stays_below_the_max_power_envelope() {
        // Driving the network with the actual time-varying trace must
        // never exceed the steady solution of the per-unit maximum vector
        // (the paper's conservative input to OFTEC).
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let bench = oftec_power::Benchmark::Basicmath;
        let trace = bench.synthesize_trace(&fp, 300);
        let max_vec = trace.max_per_unit();
        let leak = oftec_power::McpatBudget::alpha21264_22nm().distribute(&fp);
        let model = HybridCoolingModel::with_tec(&fp, &cfg, max_vec, &leak);

        let o = op(3000.0, 0.5);
        let envelope = model.solve(o).unwrap();
        // Start from the envelope steady state: the trace's lower actual
        // power can only cool from there.
        let driven = model
            .simulate_power_trace(o, &trace, Some(&envelope), 50)
            .unwrap();
        assert!(
            driven.peak() <= envelope.max_chip_temperature(),
            "driven peak {} exceeded envelope {}",
            driven.peak(),
            envelope.max_chip_temperature()
        );
        assert_eq!(driven.times.len(), 6);
    }

    #[test]
    fn trace_unit_mismatch_rejected() {
        let model = setup(10.0);
        let mut t = oftec_power::PowerTrace::new(vec!["bogus".into()], 1e-3);
        t.push_sample(vec![1.0]);
        let err = model
            .simulate_power_trace(op(2000.0, 0.0), &t, None, 1)
            .unwrap_err();
        assert!(matches!(err, ThermalError::Config(_)));
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let model = setup(10.0);
        let _ = model.simulate_transient(op(2000.0, 0.0), None, 0, &TransientOptions::default());
    }
}
