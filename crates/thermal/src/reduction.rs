//! Reduced-order steady-state evaluation (POD/Galerkin projection).
//!
//! For a fixed package, the steady system `(A + D(θ))·T = b(θ)` varies
//! with the operating point `θ = (ω, I_TEC)` only through a handful of
//! diagonal entries (the fan's sink-to-ambient conductance, the Peltier
//! feedback) and RHS entries (fan-coupled ambient inflow, Joule
//! generation). The solution manifold swept out over the feasible
//! `(ω, I)` rectangle is therefore low-dimensional, and a basis built
//! from a few dozen full solves captures it to well under 0.1 K.
//!
//! [`HybridCoolingModel::build_reduced`] performs that build once:
//!
//! 1. **Snapshots** — warm-started full solves over a deterministic
//!    `(ω desc, I asc)` grid; infeasible (runaway) corners are skipped.
//! 2. **POD basis** — eigendecomposition of the snapshot Gram matrix
//!    ([`oftec_linalg::sym_eigen`]), keeping modes above
//!    [`ReductionOptions::basis_tol`], at most
//!    [`ReductionOptions::max_basis`].
//! 3. **Projection** — the operating-point-independent `k×k` blocks
//!    `VᵀA₀V`, `VᵀD_fan V`, `VᵀD_tec V` and reduced RHS vectors are
//!    precomputed, so a per-point evaluation is: fold three `k×k`
//!    matrices, one dense Cholesky solve, reconstruct `T̂ = V·y`.
//!
//! Every accepted reduced solution is certified against the **full**
//! operator: the residual `‖(A + D(θ))T̂ − b(θ)‖₂` (computed with the
//! SELL-layout SpMV) must stay below
//! [`ReductionOptions::residual_rtol`]`·‖b(θ)‖₂`, and the temperatures
//! must pass the same physical screens as the full path. Any violation —
//! residual, indefiniteness of the projected system, unphysical or
//! non-finite temperatures — falls back to the full solve through the
//! PR-3 degradation machinery (`reduction.fallbacks` counter + `Warn`
//! event), which also classifies true thermal runaway correctly; the
//! reduced path never claims a runaway itself because positive
//! definiteness of the projected `k×k` system does not certify the full
//! matrix.
//!
//! All of this is sequential, fixed-order arithmetic: results are
//! bit-identical at any `OFTEC_THREADS`.

use crate::error::ThermalError;
use crate::model::{HybridCoolingModel, OperatingPoint};
use crate::solution::ThermalSolution;
use crate::traits::CoolingModel;
use crate::transient::{TransientOptions, TransientTrace};
use oftec_linalg::{
    solve_cg_mixed, sym_eigen, vector, CholeskyFactor, EigenParams, IterativeParams, Matrix,
    SellMatrix,
};
use oftec_telemetry as telemetry;
use oftec_units::{AngularVelocity, Current};

/// Controls for the reduced-order build and the per-point accept test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionOptions {
    /// Fan-speed snapshot count (grid descends from `ω_max`).
    pub omega_snapshots: usize,
    /// TEC-current snapshot count (grid ascends from 0; ignored for
    /// fan-only models).
    pub current_snapshots: usize,
    /// Relative Gram-eigenvalue cutoff: modes with `λ ≤ basis_tol·λ₀`
    /// are dropped.
    pub basis_tol: f64,
    /// Hard cap on the basis size.
    pub max_basis: usize,
    /// Accept threshold for the full-operator residual check:
    /// `‖r‖₂ ≤ residual_rtol·‖b(θ)‖₂`.
    pub residual_rtol: f64,
    /// Solve the snapshot systems with the mixed-precision f32 CG +
    /// f64 refinement kernel instead of the default f64 ILU(0)-CG.
    pub mixed_precision: bool,
}

impl Default for ReductionOptions {
    fn default() -> Self {
        Self {
            omega_snapshots: 7,
            current_snapshots: 5,
            basis_tol: 1e-13,
            max_basis: 40,
            // Empirically, ‖r‖/‖b‖ = 1e-4 bounds the max die-temp error
            // near 1e-4 K on the DAC'14 packages — three orders under the
            // 0.1 K budget — while keeping the fallback rate at zero
            // across the feasible operating rectangle.
            residual_rtol: 1e-4,
            mixed_precision: false,
        }
    }
}

/// Precomputed reduced-order model for one package + workload: POD basis,
/// projected operator blocks, and the full-operator data needed for the
/// per-point residual certificate.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    /// Full node count.
    n: usize,
    /// Basis size.
    k: usize,
    /// POD basis, row-major `n × k` (`basis[node*k + j]`).
    basis: Vec<f64>,
    /// `VᵀA₀V` (steady part, fan at zero).
    m0: Matrix,
    /// `VᵀD_fan V` (unit fan conductance; scaled by `fan_g` per point).
    m_fan: Matrix,
    /// `VᵀD_tec V` (unit current; scaled by `I` per point).
    m_tec: Matrix,
    /// `Vᵀb₀`.
    c0: Vec<f64>,
    /// `Vᵀ(share·t_amb)` on fan nodes (scaled by `fan_g`).
    c_fan: Vec<f64>,
    /// `Vᵀ(R per generation node)` (scaled by `I²`).
    c_joule: Vec<f64>,
    /// Steady matrix `A₀` in SELL layout for the residual SpMV.
    a_steady: SellMatrix,
    /// Steady RHS `b₀`.
    b_steady: Vec<f64>,
    /// Diagonal of `A₀` for the per-point positivity screen.
    diag_steady: Vec<f64>,
    /// Fan-coupled `(node, share)` pairs.
    fan_nodes: Vec<(usize, f64)>,
    /// Peltier absorption `(node, α)` pairs (diagonal gains `+α·I`).
    tec_abs: Vec<(usize, f64)>,
    /// Peltier rejection `(node, α)` pairs (diagonal gains `−α·I`).
    tec_rej: Vec<(usize, f64)>,
    /// Joule generation `(node, R)` pairs (RHS gains `R·I²`).
    joule: Vec<(usize, f64)>,
    /// Ambient temperature (K).
    t_amb: f64,
    /// Options the model was built with.
    options: ReductionOptions,
    /// Snapshots that contributed to the basis.
    snapshots_used: usize,
}

impl ReducedModel {
    /// Basis size `k`.
    pub fn basis_size(&self) -> usize {
        self.k
    }

    /// Number of feasible snapshots the basis was built from.
    pub fn snapshots_used(&self) -> usize {
        self.snapshots_used
    }

    /// The options the model was built with.
    pub fn options(&self) -> &ReductionOptions {
        &self.options
    }

    /// One reduced evaluation; `Err` carries the reject reason and means
    /// the caller must run the full solve instead.
    fn try_solve(
        &self,
        model: &HybridCoolingModel,
        op: OperatingPoint,
    ) -> Result<ThermalSolution, &'static str> {
        let fan_g = model.config().fan.conductance(op.fan_speed).w_per_k();
        if !fan_g.is_finite() || fan_g < 0.0 {
            return Err("non-finite fan conductance");
        }
        let i_tec = op.tec_current.amperes();

        // Cheap full-diagonal positivity screen: only the operating-point
        // nodes can change sign (A₀'s diagonal was verified positive at
        // build time). A non-positive diagonal certifies indefiniteness of
        // the full matrix — let the full path classify it as runaway.
        for &(node, share) in &self.fan_nodes {
            if self.diag_steady[node] + share * fan_g <= 0.0 {
                return Err("non-positive folded diagonal");
            }
        }
        for &(node, alpha) in &self.tec_abs {
            if self.diag_steady[node] + alpha * i_tec <= 0.0 {
                return Err("non-positive folded diagonal");
            }
        }
        for &(node, alpha) in &self.tec_rej {
            if self.diag_steady[node] - alpha * i_tec <= 0.0 {
                return Err("non-positive folded diagonal");
            }
        }

        // Fold the k×k projected system.
        let k = self.k;
        let mut m = self.m0.clone();
        m.axpy(fan_g, &self.m_fan);
        // oftec-lint: allow(L004, TEC-off operating points carry an exact 0.0 current)
        if i_tec != 0.0 {
            m.axpy(i_tec, &self.m_tec);
        }
        let mut c = self.c0.clone();
        for (j, cj) in c.iter_mut().enumerate() {
            *cj += fan_g * self.c_fan[j] + i_tec * i_tec * self.c_joule[j];
        }

        let chol = CholeskyFactor::new(&m).map_err(|_| "projected system not positive definite")?;
        let y = chol.solve(&c).map_err(|_| "projected solve failed")?;

        // Reconstruct T̂ = V·y.
        let mut temps = vec![0.0; self.n];
        for (node, t) in temps.iter_mut().enumerate() {
            *t = vector::dot(&self.basis[node * k..(node + 1) * k], &y);
        }

        // Physical screens, identical to the full path's classification
        // thresholds.
        if temps.iter().any(|t| !t.is_finite()) {
            return Err("non-finite reduced temperatures");
        }
        let cap = model.config().runaway_cap.kelvin();
        if temps.iter().any(|&t| t > cap) {
            return Err("reduced temperatures beyond the runaway cap");
        }
        if temps.iter().any(|&t| t < 150.0) {
            return Err("unphysically cold reduced solution");
        }

        // Residual certificate against the FULL operator:
        // r = A₀·T̂ + D(θ)·T̂ − b(θ).
        let mut r = self.a_steady.matvec(&temps);
        let mut b_norm_sq = 0.0;
        for (ri, &bi) in r.iter_mut().zip(&self.b_steady) {
            *ri -= bi;
            b_norm_sq += bi * bi;
        }
        for &(node, share) in &self.fan_nodes {
            let g = share * fan_g;
            let b_extra = g * self.t_amb;
            r[node] += g * temps[node] - b_extra;
            b_norm_sq += b_extra * (b_extra + 2.0 * self.b_steady[node]);
        }
        for &(node, alpha) in &self.tec_abs {
            r[node] += alpha * i_tec * temps[node];
        }
        for &(node, alpha) in &self.tec_rej {
            r[node] -= alpha * i_tec * temps[node];
        }
        for &(node, rr) in &self.joule {
            let b_extra = rr * i_tec * i_tec;
            r[node] -= b_extra;
            b_norm_sq += b_extra * (b_extra + 2.0 * self.b_steady[node]);
        }
        let r_norm = vector::norm2(&r);
        let b_norm = b_norm_sq.max(0.0).sqrt();
        if !r_norm.is_finite()
            || r_norm > self.options.residual_rtol * b_norm.max(f64::MIN_POSITIVE)
        {
            return Err("reduced residual above tolerance");
        }

        crate::probe::note_reduced(r_norm / b_norm.max(f64::MIN_POSITIVE));
        telemetry::counter_add("reduction.solves", 1);
        // The reduced path performs no Krylov iterations; 0 is its
        // distinctive iteration count.
        Ok(model.package_solution(op, temps, model.cell_leak(), 0))
    }
}

impl HybridCoolingModel {
    /// Builds the reduced-order model: snapshot solves over a
    /// deterministic `(ω, I)` grid, POD basis from the snapshot Gram
    /// matrix, projected operator blocks.
    ///
    /// The build runs sequentially (bit-identical at any `OFTEC_THREADS`)
    /// and costs `omega_snapshots × current_snapshots` warm-started full
    /// solves plus one small dense eigendecomposition — amortized over
    /// every subsequent microsecond-scale evaluation.
    ///
    /// # Errors
    ///
    /// [`ThermalError::Config`] when the options are inconsistent or too
    /// few grid points are feasible (fewer than 2 non-runaway snapshots).
    pub fn build_reduced(&self, options: &ReductionOptions) -> Result<ReducedModel, ThermalError> {
        let _span = telemetry::span("reduction.build");
        telemetry::counter_add("reduction.builds", 1);
        if options.omega_snapshots < 2 {
            return Err(ThermalError::Config(
                "reduction needs at least 2 fan-speed snapshots".into(),
            ));
        }
        if options.current_snapshots == 0 {
            return Err(ThermalError::Config(
                "reduction needs at least 1 current snapshot".into(),
            ));
        }
        if !(options.basis_tol.is_finite()
            && options.basis_tol >= 0.0
            && options.residual_rtol.is_finite()
            && options.residual_rtol > 0.0
            && options.max_basis >= 2)
        {
            return Err(ThermalError::Config(
                "reduction tolerances must be finite and positive (max_basis ≥ 2)".into(),
            ));
        }

        let n = self.node_count();
        let omega_max = self.config().fan.omega_max.rad_per_s();
        let i_max = self
            .tec_folding()
            .map(|t| t.max_current.amperes())
            .unwrap_or(0.0);
        let n_currents = if self.has_tec() {
            options.current_snapshots
        } else {
            1
        };

        // Snapshot sweep: ω descends from ω_max (the most feasible corner)
        // so the warm-start chain starts where a steady state certainly
        // exists; I ascends from 0 within each ω.
        let mut snapshots: Vec<Vec<f64>> = Vec::new();
        let mut skipped = 0usize;
        let mut warm: Option<Vec<f64>> = None;
        for wi in 0..options.omega_snapshots {
            // ω from ω_max down to 0.2·ω_max: below that the paper's
            // packages are runaway-prone for any interesting workload.
            let frac = 1.0 - 0.8 * wi as f64 / (options.omega_snapshots - 1) as f64;
            let omega = AngularVelocity::from_rad_per_s(omega_max * frac);
            for ci in 0..n_currents {
                let amps = if n_currents == 1 {
                    0.0
                } else {
                    i_max * ci as f64 / (n_currents - 1) as f64
                };
                let op = OperatingPoint::new(omega, Current::from_amperes(amps));
                match self.snapshot_solve(op, warm.as_deref(), options.mixed_precision) {
                    Ok(temps) => {
                        warm = Some(temps.clone());
                        snapshots.push(temps);
                    }
                    Err(_) => skipped += 1,
                }
            }
        }
        if skipped > 0 {
            telemetry::counter_add("reduction.snapshots_skipped", skipped as u64);
        }
        let s = snapshots.len();
        if s < 2 {
            telemetry::counter_add("reduction.build_failures", 1);
            return Err(ThermalError::Config(format!(
                "reduced-order build found only {s} feasible snapshots"
            )));
        }

        // POD via the Gram matrix: G = SᵀS, G = U Λ Uᵀ,
        // v_j = S·u_j / sqrt(λ_j).
        let mut gram = Matrix::zeros(s, s);
        for i in 0..s {
            for j in i..s {
                let g = vector::dot(&snapshots[i], &snapshots[j]);
                gram[(i, j)] = g;
                gram[(j, i)] = g;
            }
        }
        let (lambda, u) = sym_eigen(&gram, &EigenParams::default()).map_err(|e| {
            telemetry::counter_add("reduction.build_failures", 1);
            ThermalError::Config(format!("snapshot Gram eigendecomposition failed: {e}"))
        })?;
        let lambda0 = lambda.first().copied().unwrap_or(0.0);
        if lambda0 <= 0.0 {
            telemetry::counter_add("reduction.build_failures", 1);
            return Err(ThermalError::Config(
                "snapshot Gram matrix has no positive eigenvalue".into(),
            ));
        }
        let k = lambda
            .iter()
            .take(options.max_basis)
            .take_while(|&&l| l > options.basis_tol * lambda0 && l > 0.0)
            .count();
        let mut basis = vec![0.0; n * k];
        for j in 0..k {
            let inv_sqrt = 1.0 / lambda[j].sqrt();
            for (i, snap) in snapshots.iter().enumerate() {
                let w = u[(i, j)] * inv_sqrt;
                for (node, &sv) in snap.iter().enumerate() {
                    basis[node * k + j] += w * sv;
                }
            }
        }

        // Steady full-operator data.
        let (a0, b_steady) = self.skeleton().steady_parts();
        let diag_steady = a0.diagonal();
        if diag_steady.iter().any(|&d| d <= 0.0) {
            telemetry::counter_add("reduction.build_failures", 1);
            return Err(ThermalError::Config(
                "steady network matrix has a non-positive diagonal".into(),
            ));
        }
        let a_steady = SellMatrix::from_csr(&a0);
        let fan_nodes = self.skeleton().fan_couplings().to_vec();
        let t_amb = self.skeleton().ambient();
        let (mut tec_abs, mut tec_rej, mut joule) = (Vec::new(), Vec::new(), Vec::new());
        if let Some(tec) = self.tec_folding() {
            for (cell, &alpha) in tec.alpha_cell.iter().enumerate() {
                // oftec-lint: allow(L004, cells outside the deployment have exactly zero Seebeck share)
                if alpha == 0.0 {
                    continue;
                }
                tec_abs.push((tec.abs_start + cell, alpha));
                tec_rej.push((tec.rej_start + cell, alpha));
                joule.push((tec.gen_start + cell, tec.r_cell[cell]));
            }
        }

        // Projected blocks.
        let col = |j: usize| -> Vec<f64> { (0..n).map(|node| basis[node * k + j]).collect() };
        let cols: Vec<Vec<f64>> = (0..k).map(col).collect();
        let mut m0 = Matrix::zeros(k, k);
        for j in 0..k {
            let av = a_steady.matvec(&cols[j]);
            for i in 0..k {
                m0[(i, j)] = vector::dot(&cols[i], &av);
            }
        }
        let mut m_fan = Matrix::zeros(k, k);
        let mut m_tec = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                let mut f = 0.0;
                for &(node, share) in &fan_nodes {
                    f += share * cols[i][node] * cols[j][node];
                }
                m_fan[(i, j)] = f;
                let mut t = 0.0;
                for &(node, alpha) in &tec_abs {
                    t += alpha * cols[i][node] * cols[j][node];
                }
                for &(node, alpha) in &tec_rej {
                    t -= alpha * cols[i][node] * cols[j][node];
                }
                m_tec[(i, j)] = t;
            }
        }
        let c0: Vec<f64> = cols.iter().map(|v| vector::dot(v, &b_steady)).collect();
        let c_fan: Vec<f64> = cols
            .iter()
            .map(|v| {
                fan_nodes
                    .iter()
                    .map(|&(node, share)| share * t_amb * v[node])
                    .sum()
            })
            .collect();
        let c_joule: Vec<f64> = cols
            .iter()
            .map(|v| joule.iter().map(|&(node, rr)| rr * v[node]).sum())
            .collect();

        telemetry::event(
            telemetry::Severity::Info,
            "reduction.built",
            &[
                ("snapshots", telemetry::Field::U64(s as u64)),
                ("skipped", telemetry::Field::U64(skipped as u64)),
                ("basis", telemetry::Field::U64(k as u64)),
            ],
        );
        Ok(ReducedModel {
            n,
            k,
            basis,
            m0,
            m_fan,
            m_tec,
            c0,
            c_fan,
            c_joule,
            a_steady,
            b_steady,
            diag_steady,
            fan_nodes,
            tec_abs,
            tec_rej,
            joule,
            t_amb,
            options: *options,
            snapshots_used: s,
        })
    }

    /// One snapshot solve for the reduced-order build: the default fused
    /// path, or the mixed-precision CG kernel when requested.
    fn snapshot_solve(
        &self,
        op: OperatingPoint,
        warm: Option<&[f64]>,
        mixed: bool,
    ) -> Result<Vec<f64>, ThermalError> {
        if !mixed {
            return Ok(self.solve_default(op, warm)?.node_temperatures().to_vec());
        }
        let (matrix, rhs) = self.assemble_steady_system(op)?;
        if matrix.diagonal().iter().any(|&d| d <= 0.0) {
            return Err(ThermalError::Runaway(
                "non-positive diagonal in the folded network matrix",
            ));
        }
        let params = IterativeParams {
            rtol: 1e-10,
            atol: 1e-12,
            max_iter: 20 * self.node_count(),
        };
        let temps = solve_cg_mixed(&matrix, &rhs, warm, &params)
            .map_err(ThermalError::from)?
            .x;
        let cap = self.config().runaway_cap.kelvin();
        if temps.iter().any(|t| !t.is_finite()) || temps.iter().any(|&t| t > cap) {
            return Err(ThermalError::Runaway("snapshot beyond the runaway cap"));
        }
        Ok(temps)
    }
}

/// A [`CoolingModel`] that answers steady-state solves from a
/// [`ReducedModel`] when its certificate holds and falls back to the full
/// model otherwise. Transient simulation always delegates.
///
/// When built without a reduced model (`reduced = None`, e.g. because the
/// build found too few feasible snapshots), every call transparently runs
/// the full path — degraded but correct, per the PR-3 fallback
/// discipline.
#[derive(Debug, Clone, Copy)]
pub struct ReducedCoolingModel<'a> {
    full: &'a HybridCoolingModel,
    reduced: Option<&'a ReducedModel>,
}

impl<'a> ReducedCoolingModel<'a> {
    /// Wraps a full model and an optional reduced companion.
    pub fn new(full: &'a HybridCoolingModel, reduced: Option<&'a ReducedModel>) -> Self {
        Self { full, reduced }
    }

    /// The wrapped full model.
    pub fn full_model(&self) -> &'a HybridCoolingModel {
        self.full
    }

    /// The reduced companion, if one was successfully built.
    pub fn reduced_model(&self) -> Option<&'a ReducedModel> {
        self.reduced
    }

    fn solve_impl(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        if let Some(red) = self.reduced {
            match red.try_solve(self.full, op) {
                Ok(sol) => return Ok(sol),
                Err(reason) => {
                    crate::probe::note_fallback();
                    telemetry::counter_add("reduction.fallbacks", 1);
                    telemetry::event(
                        telemetry::Severity::Warn,
                        "reduction.fallback",
                        &[("reason", telemetry::Field::Str(reason))],
                    );
                }
            }
        }
        self.full.solve_from(op, initial)
    }
}

impl CoolingModel for ReducedCoolingModel<'_> {
    fn config(&self) -> &crate::config::PackageConfig {
        self.full.config()
    }

    fn has_tec(&self) -> bool {
        self.full.has_tec()
    }

    fn validate_operating_point(&self, op: OperatingPoint) -> Result<(), ThermalError> {
        self.full.validate_operating_point(op)
    }

    fn solve(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError> {
        self.full.validate_operating_point(op)?;
        self.solve_impl(op, None)
    }

    fn solve_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        self.full.validate_operating_point(op)?;
        self.solve_impl(op, initial)
    }

    fn simulate_transient_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError> {
        self.full.simulate_transient_from(op, initial, steps, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PackageConfig;
    use oftec_floorplan::alpha21264;
    use oftec_power::{Benchmark, McpatBudget};

    fn model() -> HybridCoolingModel {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let dyn_p = Benchmark::Crc32.max_dynamic_power(&fp).unwrap();
        let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
        HybridCoolingModel::with_tec(&fp, &cfg, dyn_p, &leak)
    }

    fn op(rpm: f64, amps: f64) -> OperatingPoint {
        OperatingPoint::new(AngularVelocity::from_rpm(rpm), Current::from_amperes(amps))
    }

    #[test]
    fn reduced_matches_full_within_tolerance() {
        let m = model();
        let red = m.build_reduced(&ReductionOptions::default()).unwrap();
        assert!(red.basis_size() >= 2);
        let wrapper = ReducedCoolingModel::new(&m, Some(&red));
        for (rpm_v, amps_v) in [(4500.0, 0.0), (3000.0, 1.0), (2400.0, 2.0), (3700.0, 0.4)] {
            let o = op(rpm_v, amps_v);
            let fast = wrapper.solve(o).unwrap();
            let full = m.solve(o).unwrap();
            let err =
                (fast.max_chip_temperature().kelvin() - full.max_chip_temperature().kelvin()).abs();
            assert!(
                err < 0.1,
                "die-temp error {err} K at ω={rpm_v} RPM, I={amps_v} A"
            );
        }
    }

    #[test]
    fn reduced_path_is_counted_and_skips_cg() {
        let m = model();
        let red = m.build_reduced(&ReductionOptions::default()).unwrap();
        let wrapper = ReducedCoolingModel::new(&m, Some(&red));
        telemetry::set_collecting(true);
        let (sol, buf) = telemetry::capture(|| wrapper.solve(op(3500.0, 1.0)).unwrap());
        assert_eq!(sol.solver_iterations(), 0);
        assert_eq!(buf.counter("reduction.solves"), 1);
        assert_eq!(buf.counter("reduction.fallbacks"), 0);
    }

    #[test]
    fn impossible_tolerance_forces_fallback() {
        let m = model();
        let red = m
            .build_reduced(&ReductionOptions {
                residual_rtol: 1e-16,
                ..ReductionOptions::default()
            })
            .unwrap();
        let wrapper = ReducedCoolingModel::new(&m, Some(&red));
        telemetry::set_collecting(true);
        let (sol, buf) = telemetry::capture(|| wrapper.solve(op(3300.0, 0.7)).unwrap());
        assert_eq!(buf.counter("reduction.fallbacks"), 1);
        assert_eq!(buf.counter("reduction.solves"), 0);
        // The fallback ran the real CG path.
        assert!(sol.solver_iterations() > 0);
        let full = m.solve(op(3300.0, 0.7)).unwrap();
        assert_eq!(
            sol.max_chip_temperature().kelvin(),
            full.max_chip_temperature().kelvin()
        );
    }

    #[test]
    fn runaway_points_classify_through_fallback() {
        let m = model();
        let red = m.build_reduced(&ReductionOptions::default()).unwrap();
        let wrapper = ReducedCoolingModel::new(&m, Some(&red));
        let err = wrapper
            .solve(OperatingPoint::new(
                AngularVelocity::ZERO,
                Current::from_amperes(2.0),
            ))
            .unwrap_err();
        assert!(err.is_runaway(), "expected runaway, got {err}");
    }

    #[test]
    fn missing_reduced_model_delegates_to_full() {
        let m = model();
        let wrapper = ReducedCoolingModel::new(&m, None);
        let o = op(3000.0, 1.0);
        let a = wrapper.solve(o).unwrap();
        let b = m.solve(o).unwrap();
        assert_eq!(
            a.max_chip_temperature().kelvin(),
            b.max_chip_temperature().kelvin()
        );
    }

    #[test]
    fn mixed_precision_build_agrees_with_f64_build() {
        let m = model();
        let red64 = m.build_reduced(&ReductionOptions::default()).unwrap();
        let red32 = m
            .build_reduced(&ReductionOptions {
                mixed_precision: true,
                ..ReductionOptions::default()
            })
            .unwrap();
        let w64 = ReducedCoolingModel::new(&m, Some(&red64));
        let w32 = ReducedCoolingModel::new(&m, Some(&red32));
        let o = op(3400.0, 1.2);
        let a = w64.solve(o).unwrap();
        let b = w32.solve(o).unwrap();
        assert!(
            (a.max_chip_temperature().kelvin() - b.max_chip_temperature().kelvin()).abs() < 0.05
        );
    }

    #[test]
    fn build_rejects_bad_options() {
        let m = model();
        assert!(m
            .build_reduced(&ReductionOptions {
                omega_snapshots: 1,
                ..ReductionOptions::default()
            })
            .is_err());
        assert!(m
            .build_reduced(&ReductionOptions {
                residual_rtol: 0.0,
                ..ReductionOptions::default()
            })
            .is_err());
        assert!(m
            .build_reduced(&ReductionOptions {
                basis_tol: f64::NAN,
                ..ReductionOptions::default()
            })
            .is_err());
    }

    #[test]
    fn fan_only_package_reduces_too() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let dyn_p = Benchmark::Crc32.max_dynamic_power(&fp).unwrap();
        let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
        let m = HybridCoolingModel::fan_only(&fp, &cfg, dyn_p, &leak);
        let red = m.build_reduced(&ReductionOptions::default()).unwrap();
        let wrapper = ReducedCoolingModel::new(&m, Some(&red));
        let o = op(3100.0, 0.0);
        let fast = wrapper.solve(o).unwrap();
        let full = m.solve(o).unwrap();
        assert!(
            (fast.max_chip_temperature().kelvin() - full.max_chip_temperature().kelvin()).abs()
                < 0.1
        );
    }
}
