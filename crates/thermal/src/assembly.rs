//! Assembly of the thermal RC network from the package description.
//!
//! Produces the symmetric conductance structure behind Eq. (18)'s matrix
//! **G**: lateral edges within layers, vertical edges between facing cells
//! of adjacent layers (area-overlap weighted, HotSpot grid-model style),
//! and the two ambient couplings (fan-scaled sink top, constant PCB
//! bottom).

use crate::config::{CoolingConfig, PackageConfig};
use crate::stack::{centered_extent, series_halves, LayerRole, LayerSpec};
use oftec_floorplan::{Floorplan, GridDims};
use oftec_linalg::Triplets;
use oftec_units::{Length, ThermalConductivity, VolumetricHeatCapacity};

/// Volumetric heat capacities (J/(m³·K)) used for transient simulation.
mod heat_capacity {
    /// Silicon.
    pub const SILICON: f64 = 1.63e6;
    /// Thermal interface pastes.
    pub const TIM: f64 = 2.0e6;
    /// Copper (spreader, sink).
    pub const COPPER: f64 = 3.45e6;
    /// FR-4 printed circuit board.
    pub const PCB: f64 = 1.5e6;
    /// Bi₂Te₃-class superlattice film.
    pub const TEC_FILM: f64 = 1.2e6;
}

/// A layer plus its node offset in the global unknown vector.
#[derive(Debug, Clone)]
pub(crate) struct LayerGrid {
    pub spec: LayerSpec,
    pub start: usize,
}

impl LayerGrid {
    /// Global node index of cell `(row, col)`.
    pub fn node(&self, row: usize, col: usize) -> usize {
        self.start + self.spec.dims.index(row, col)
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.spec.dims.cells()
    }
}

/// The assembled (ω-independent) network structure.
#[derive(Debug, Clone)]
pub(crate) struct Network {
    pub layers: Vec<LayerGrid>,
    pub n_nodes: usize,
    /// Symmetric conduction edges `(i, j, g)` with `i < j`, in W/K.
    pub edges: Vec<(usize, usize, f64)>,
    /// Constant ambient couplings `(node, g)` in W/K (PCB convection).
    pub ambient_const: Vec<(usize, f64)>,
    /// Fan-scaled ambient couplings `(node, share)`; the node's coupling
    /// is `share · g_HS&fan(ω)` and shares sum to 1 over the sink top.
    pub ambient_fan: Vec<(usize, f64)>,
    /// Per-node heat capacity (J/K) for transient integration.
    pub capacitance: Vec<f64>,
}

impl Network {
    /// Finds the (first) layer with the given role.
    pub fn layer_by_role(&self, role: LayerRole) -> Option<&LayerGrid> {
        self.layers.iter().find(|l| l.spec.role == role)
    }

    /// Assembles the conductance matrix `G(ω)` as triplets, given the
    /// resolved fan conductance in W/K. Diagonals include the ambient
    /// couplings; the matching right-hand-side contribution is produced by
    /// [`Network::ambient_rhs`].
    pub fn conductance_triplets(&self, fan_g: f64) -> Triplets {
        let mut t = Triplets::with_capacity(
            self.n_nodes,
            self.n_nodes,
            4 * self.edges.len() + self.n_nodes,
        );
        // Ensure every diagonal entry exists in the pattern.
        for i in 0..self.n_nodes {
            t.push(i, i, 0.0);
        }
        for &(i, j, g) in &self.edges {
            t.push(i, i, g);
            t.push(j, j, g);
            t.push(i, j, -g);
            t.push(j, i, -g);
        }
        for &(i, g) in &self.ambient_const {
            t.push(i, i, g);
        }
        for &(i, share) in &self.ambient_fan {
            t.push(i, i, share * fan_g);
        }
        t
    }

    /// Right-hand-side contribution of the ambient couplings,
    /// `g_amb,i · T_amb` per node, in W.
    pub fn ambient_rhs(&self, fan_g: f64, t_amb_kelvin: f64) -> Vec<f64> {
        let mut rhs = vec![0.0; self.n_nodes];
        for &(i, g) in &self.ambient_const {
            rhs[i] += g * t_amb_kelvin;
        }
        for &(i, share) in &self.ambient_fan {
            rhs[i] += share * fan_g * t_amb_kelvin;
        }
        rhs
    }

    /// Total constant ambient conductance (PCB path), in W/K.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn constant_ambient_conductance(&self) -> f64 {
        self.ambient_const.iter().map(|(_, g)| g).sum()
    }
}

/// Area overlaps between facing cells of two layers:
/// `(node_a, node_b, overlap_area_m²)`.
fn grid_overlaps(a: &LayerGrid, b: &LayerGrid) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    let (bw, bh) = b.spec.cell_size();
    let bx0 = b.spec.extent.x().meters();
    let by0 = b.spec.extent.y().meters();
    for ra in 0..a.spec.dims.rows {
        for ca in 0..a.spec.dims.cols {
            let cell = a.spec.cell_rect(ra, ca);
            // Candidate b-cell index window.
            let c_lo = (((cell.x().meters() - bx0) / bw).floor().max(0.0)) as usize;
            let c_hi = ((((cell.right().meters() - bx0) / bw).ceil()) as isize)
                .clamp(0, b.spec.dims.cols as isize) as usize;
            let r_lo = (((cell.y().meters() - by0) / bh).floor().max(0.0)) as usize;
            let r_hi = ((((cell.top().meters() - by0) / bh).ceil()) as isize)
                .clamp(0, b.spec.dims.rows as isize) as usize;
            for rb in r_lo..r_hi {
                for cb in c_lo..c_hi {
                    let other = b.spec.cell_rect(rb, cb);
                    let ov = cell.overlap_area(&other).square_meters();
                    if ov > 0.0 {
                        out.push((a.node(ra, ca), b.node(rb, cb), ov));
                    }
                }
            }
        }
    }
    out
}

/// Adds lateral conduction edges within one layer.
fn lateral_edges(layer: &LayerGrid, edges: &mut Vec<(usize, usize, f64)>) {
    let t = layer.spec.thickness.meters();
    // oftec-lint: allow(L004, zero thickness encodes an interface plane, exactly)
    if t == 0.0 {
        return; // interface planes conduct only vertically
    }
    let k = layer.spec.conductivity.w_per_m_k();
    let (cw, ch) = layer.spec.cell_size();
    let dims = layer.spec.dims;
    for r in 0..dims.rows {
        for c in 0..dims.cols {
            let me = layer.node(r, c);
            if c + 1 < dims.cols {
                // Cross-section = thickness × cell height; distance = cw.
                edges.push((me, layer.node(r, c + 1), k * t * ch / cw));
            }
            if r + 1 < dims.rows {
                edges.push((me, layer.node(r + 1, c), k * t * cw / ch));
            }
        }
    }
}

/// Adds vertical edges between adjacent layers using the default rule:
/// series combination of the two half-cell conductances over the overlap
/// area.
fn vertical_edges_default(
    lower: &LayerGrid,
    upper: &LayerGrid,
    extra_interface_h: Option<f64>,
    edges: &mut Vec<(usize, usize, f64)>,
) {
    for (i, j, area) in grid_overlaps(lower, upper) {
        let gl = lower.spec.vertical_half_conductance(area);
        let gu = upper.spec.vertical_half_conductance(area);
        let mut g = series_halves(gl, gu);
        if let Some(h) = extra_interface_h {
            let gi = h * area;
            // oftec-lint: allow(L004, exact zero keeps the series combination well-defined)
            g = if g == 0.0 { 0.0 } else { g * gi / (g + gi) };
        }
        if g > 0.0 {
            edges.push((i.min(j), i.max(j), g));
        }
    }
}

/// Builds the whole network for the given package and cooling
/// configuration. The die-aligned layers (chip, TIM1, TEC sub-layers) all
/// use `cfg.die_dims` so TEC bookkeeping is cell-to-cell.
pub(crate) fn build_network(
    fp: &Floorplan,
    cfg: &PackageConfig,
    cooling: &CoolingConfig,
) -> Network {
    cfg.assert_physical();
    let die_w = fp.width().meters();
    let die_h = fp.height().meters();
    let center = (die_w / 2.0, die_h / 2.0);

    let cv = VolumetricHeatCapacity::from_j_per_m3_k;
    let mut specs: Vec<LayerSpec> = Vec::new();

    specs.push(LayerSpec {
        name: "pcb".into(),
        role: LayerRole::Pcb,
        extent: centered_extent(center, cfg.pcb_edge.meters(), cfg.pcb_edge.meters()),
        dims: cfg.pcb_dims,
        thickness: cfg.pcb_thickness,
        conductivity: cfg.pcb_conductivity,
        heat_capacity: cv(heat_capacity::PCB),
    });
    specs.push(LayerSpec {
        name: "chip".into(),
        role: LayerRole::Chip,
        extent: fp.die_rect(),
        dims: cfg.die_dims,
        thickness: cfg.chip_thickness,
        conductivity: cfg.chip_conductivity,
        heat_capacity: cv(heat_capacity::SILICON),
    });

    // TIM1, plain or fairness-boosted depending on the cooling config.
    let (tim1_thickness, tim1_k): (Length, ThermalConductivity) = match cooling {
        CoolingConfig::FanOnly { equivalent_tec } => cfg.boosted_tim1(equivalent_tec),
        CoolingConfig::FanOnlyPlainTim { total_gap } => (*total_gap, cfg.tim_conductivity),
        CoolingConfig::HybridTec(_) => (cfg.tim1_thickness, cfg.tim_conductivity),
    };
    specs.push(LayerSpec {
        name: "tim1".into(),
        role: LayerRole::Conduct,
        extent: fp.die_rect(),
        dims: cfg.die_dims,
        thickness: tim1_thickness,
        conductivity: tim1_k,
        heat_capacity: cv(heat_capacity::TIM),
    });

    let tec_thickness = match cooling {
        CoolingConfig::HybridTec(dep) => dep.params().thickness,
        _ => Length::ZERO,
    };
    if let CoolingConfig::HybridTec(_) = cooling {
        for (name, role) in [
            ("tec_abs", LayerRole::TecAbsorb),
            ("tec_gen", LayerRole::TecGenerate),
            ("tec_rej", LayerRole::TecReject),
        ] {
            specs.push(LayerSpec {
                name: name.into(),
                role,
                extent: fp.die_rect(),
                dims: cfg.die_dims,
                thickness: Length::ZERO,
                conductivity: cfg.tim_conductivity, // unused (no lateral, no halves)
                heat_capacity: cv(heat_capacity::TEC_FILM),
            });
        }
    }

    specs.push(LayerSpec {
        name: "spreader".into(),
        role: LayerRole::Conduct,
        extent: centered_extent(
            center,
            cfg.spreader_edge.meters(),
            cfg.spreader_edge.meters(),
        ),
        dims: cfg.spreader_dims,
        thickness: cfg.spreader_thickness,
        conductivity: cfg.metal_conductivity,
        heat_capacity: cv(heat_capacity::COPPER),
    });
    specs.push(LayerSpec {
        name: "tim2".into(),
        role: LayerRole::Conduct,
        extent: centered_extent(
            center,
            cfg.spreader_edge.meters(),
            cfg.spreader_edge.meters(),
        ),
        dims: cfg.spreader_dims,
        thickness: cfg.tim2_thickness,
        conductivity: cfg.tim_conductivity,
        heat_capacity: cv(heat_capacity::TIM),
    });
    specs.push(LayerSpec {
        name: "sink".into(),
        role: LayerRole::Sink,
        extent: centered_extent(center, cfg.sink_edge.meters(), cfg.sink_edge.meters()),
        dims: cfg.sink_dims,
        thickness: cfg.sink_thickness,
        conductivity: cfg.metal_conductivity,
        heat_capacity: cv(heat_capacity::COPPER),
    });

    // Assign node offsets.
    let mut layers = Vec::with_capacity(specs.len());
    let mut start = 0;
    for spec in specs {
        let cells = spec.dims.cells();
        layers.push(LayerGrid { spec, start });
        start += cells;
    }
    let n_nodes = start;

    // Capacitances.
    let mut capacitance = vec![0.0; n_nodes];
    for l in &layers {
        let vol_per_cell = l.spec.cell_area() * l.spec.thickness.meters();
        for i in 0..l.cells() {
            capacitance[l.start + i] = if l.spec.is_tec() {
                // The film's heat lives on the gen plane; interface planes
                // get a small positive value to keep the ODE regular.
                match l.spec.role {
                    LayerRole::TecGenerate => {
                        heat_capacity::TEC_FILM * l.spec.cell_area() * tec_thickness.meters()
                    }
                    _ => 1e-6,
                }
            } else {
                l.spec.heat_capacity.j_per_m3_k() * vol_per_cell
            };
        }
    }

    // Edges.
    let mut edges = Vec::new();
    for l in &layers {
        lateral_edges(l, &mut edges);
    }
    // The stack is built a few lines above from a fixed recipe, so every
    // lookup below is an internal invariant, not an input error.
    let find = |role: LayerRole| {
        layers
            .iter()
            .find(|l| l.spec.role == role)
            // oftec-lint: allow(L006, the fixed layer recipe built a few lines up always contains this layer)
            .unwrap_or_else(|| panic!("layer stack recipe is missing its {role:?} layer"))
    };
    let by_name = |name: &str| {
        layers
            .iter()
            .find(|l| l.spec.name == name)
            // oftec-lint: allow(L006, the fixed layer recipe built a few lines up always contains this layer)
            .unwrap_or_else(|| panic!("layer stack recipe is missing the {name:?} layer"))
    };

    let pcb = find(LayerRole::Pcb);
    let chip = find(LayerRole::Chip);
    let tim1 = by_name("tim1");
    let spreader = by_name("spreader");
    let tim2 = by_name("tim2");
    let sink = find(LayerRole::Sink);

    vertical_edges_default(pcb, chip, Some(cfg.chip_pcb_interface), &mut edges);
    vertical_edges_default(chip, tim1, None, &mut edges);

    match cooling {
        CoolingConfig::HybridTec(dep) => {
            assert_eq!(
                dep.dims(),
                cfg.die_dims,
                "TEC deployment grid must match the die grid"
            );
            let abs = find(LayerRole::TecAbsorb);
            let gen = find(LayerRole::TecGenerate);
            let rej = find(LayerRole::TecReject);
            // TIM1 top half into the absorption plane.
            vertical_edges_default(tim1, abs, None, &mut edges);
            // The film itself: covered cells get the pellet conduction
            // (two 2·K halves in series = K_TEC per Figure 4); uncovered
            // cells get passive filler at TIM conductivity.
            let cell_area = abs.spec.cell_area();
            let k_cell = dep.params().thermal_conductance.w_per_k() * dep.devices_per_cell();
            let t_film = dep.params().thickness.meters();
            let g_fill_half = 2.0 * cfg.tim_conductivity.w_per_m_k() * cell_area / t_film;
            for i in 0..abs.cells() {
                let g_half = if dep.is_covered(i) {
                    2.0 * k_cell
                } else {
                    g_fill_half
                };
                edges.push((abs.start + i, gen.start + i, g_half));
                edges.push((gen.start + i, rej.start + i, g_half));
            }
            // Rejection plane into the spreader's bottom half.
            vertical_edges_default(rej, spreader, None, &mut edges);
        }
        CoolingConfig::FanOnly { .. } | CoolingConfig::FanOnlyPlainTim { .. } => {
            vertical_edges_default(tim1, spreader, None, &mut edges);
        }
    }

    vertical_edges_default(spreader, tim2, None, &mut edges);
    vertical_edges_default(tim2, sink, None, &mut edges);

    // Ambient couplings.
    let mut ambient_const = Vec::new();
    for i in 0..pcb.cells() {
        ambient_const.push((
            pcb.start + i,
            cfg.pcb_ambient_convection * pcb.spec.cell_area(),
        ));
    }
    let sink_area = cfg.sink_edge.meters() * cfg.sink_edge.meters();
    let mut ambient_fan = Vec::new();
    for i in 0..sink.cells() {
        ambient_fan.push((sink.start + i, sink.spec.cell_area() / sink_area));
    }

    Network {
        layers,
        n_nodes,
        edges,
        ambient_const,
        ambient_fan,
        capacitance,
    }
}

/// Returns the (validated) grid dims shared by the die-aligned layers.
#[allow(dead_code)]
pub(crate) fn die_dims(cfg: &PackageConfig) -> GridDims {
    cfg.die_dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_floorplan::alpha21264;
    use oftec_tec::{TecDeployment, TecDeviceParams};

    fn tec_cooling(cfg: &PackageConfig) -> CoolingConfig {
        CoolingConfig::HybridTec(TecDeployment::tile_except(
            &alpha21264(),
            cfg.die_dims,
            TecDeviceParams::superlattice_thin_film(),
            &["Icache", "Dcache"],
        ))
    }

    #[test]
    fn node_counts() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let net = build_network(&fp, &cfg, &tec_cooling(&cfg));
        // pcb 16 + chip 64 + tim1 64 + 3×TEC 192 + spreader 36 + tim2 36 + sink 25.
        assert_eq!(net.n_nodes, 16 + 64 + 64 + 192 + 36 + 36 + 25);
        let fan_only = build_network(
            &fp,
            &cfg,
            &CoolingConfig::FanOnly {
                equivalent_tec: TecDeviceParams::superlattice_thin_film(),
            },
        );
        assert_eq!(fan_only.n_nodes, 16 + 64 + 64 + 36 + 36 + 25);
    }

    #[test]
    fn matrix_is_symmetric_and_dominant() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let net = build_network(&fp, &cfg, &tec_cooling(&cfg));
        let g = net.conductance_triplets(5.0).to_csr();
        assert!(g.asymmetry().unwrap() < 1e-12);
        // Pure conduction network: strictly dominant rows are those with
        // ambient coupling; the rest are weakly dominant (margin ≥ 0).
        assert!(g.diagonal_dominance_margin() > -1e-12);
    }

    #[test]
    fn fan_shares_sum_to_one() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let net = build_network(&fp, &cfg, &tec_cooling(&cfg));
        let total: f64 = net.ambient_fan.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ambient_rhs_matches_couplings() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let net = build_network(&fp, &cfg, &tec_cooling(&cfg));
        let rhs = net.ambient_rhs(4.0, 318.15);
        let total: f64 = rhs.iter().sum();
        let expect = (4.0 + net.constant_ambient_conductance()) * 318.15;
        assert!((total - expect).abs() < 1e-6);
    }

    #[test]
    fn overlaps_conserve_area() {
        // tim2 ↔ sink: total overlap must equal the tim2 (smaller) area.
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let net = build_network(&fp, &cfg, &tec_cooling(&cfg));
        let tim2 = net.layers.iter().find(|l| l.spec.name == "tim2").unwrap();
        let sink = net.layer_by_role(LayerRole::Sink).unwrap();
        let total: f64 = grid_overlaps(tim2, sink).iter().map(|(_, _, a)| a).sum();
        let tim2_area = tim2.spec.extent.area().square_meters();
        assert!((total - tim2_area).abs() < 1e-12);
    }

    #[test]
    fn all_edges_positive_and_bounded() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14();
        let net = build_network(&fp, &cfg, &tec_cooling(&cfg));
        for &(i, j, g) in &net.edges {
            assert!(i < j, "edges must be stored i < j");
            assert!(g > 0.0 && g.is_finite(), "edge ({i},{j}) has g = {g}");
        }
    }

    #[test]
    fn capacitances_positive() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let net = build_network(&fp, &cfg, &tec_cooling(&cfg));
        assert!(net.capacitance.iter().all(|&c| c > 0.0));
        // Sink cells hold far more heat than chip cells.
        let chip = net.layer_by_role(LayerRole::Chip).unwrap();
        let sink = net.layer_by_role(LayerRole::Sink).unwrap();
        assert!(net.capacitance[sink.start] > 100.0 * net.capacitance[chip.start]);
    }

    #[test]
    fn covered_cells_conduct_more_than_filler() {
        // With the superlattice parameters, pellet conduction beats the
        // TIM filler — the physical basis of the baseline fairness boost.
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let dep = TecDeployment::tile_except(
            &fp,
            cfg.die_dims,
            TecDeviceParams::superlattice_thin_film(),
            &["Icache", "Dcache"],
        );
        let cell_area = fp.die_area().square_meters() / cfg.die_dims.cells() as f64;
        let k_cell = dep.params().thermal_conductance.w_per_k() * dep.devices_per_cell();
        let g_fill = cfg.tim_conductivity.w_per_m_k() * cell_area / dep.params().thickness.meters();
        assert!(k_cell > g_fill);
    }
}
