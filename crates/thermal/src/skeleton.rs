//! Cached assembly skeleton for the folded network matrix.
//!
//! The sparsity pattern of `G(ω) − A(I_TEC) − D_leak` never changes for a
//! given package: the operating point only rescales a handful of diagonal
//! entries (fan coupling, leakage feedback, Peltier terms) and the RHS.
//! Rebuilding the COO triplet list and re-sorting it into CSR at every
//! solve — as the original path did — therefore wastes the bulk of each
//! call's assembly time on work whose result is already known.
//!
//! [`AssemblySkeleton`] does that work once at model construction: it
//! converts the ω-independent conductance structure to CSR (with the fan
//! conductance folded at zero, so every operating-point-dependent entry is
//! present in the pattern), records the value-array position of each
//! diagonal, and keeps the constant part of the ambient RHS. Each solve
//! then clones the value/RHS arrays (plain `memcpy`) and folds its
//! operating point in place.
//!
//! The in-place folds add the same terms the triplet path accumulated
//! during duplicate merging, so the assembled matrices agree to the last
//! few ulps and every downstream CG solve converges to the same tolerance.

use crate::assembly::Network;
use oftec_linalg::CsrMatrix;

/// Pre-assembled CSR pattern + base values for one thermal network.
#[derive(Debug, Clone)]
pub(crate) struct AssemblySkeleton {
    /// Conduction edges + constant ambient couplings in CSR form, with the
    /// fan conductance folded at zero (pattern-complete for every ω and I).
    base: CsrMatrix,
    /// Value-array position of each node's diagonal entry.
    diag_idx: Vec<usize>,
    /// Constant ambient RHS contribution (PCB convection path), W.
    rhs_const: Vec<f64>,
    /// `base`'s value array with the steady default-path constants folded
    /// in (linearized leakage feedback on chip diagonals); identical to
    /// `base.values()` until [`AssemblySkeleton::fold_steady`] runs.
    steady_values: Vec<f64>,
    /// `rhs_const` with the steady constants folded in (dynamic power +
    /// leakage offset on chip nodes).
    steady_rhs: Vec<f64>,
    /// Fan-scaled ambient couplings `(node, share)`, copied from the
    /// network so per-call folding needs no further lookups.
    fan: Vec<(usize, f64)>,
    /// Ambient temperature (K).
    t_amb: f64,
}

impl AssemblySkeleton {
    /// Builds the skeleton from an assembled network.
    pub fn new(net: &Network, t_amb: f64) -> Self {
        let base = net.conductance_triplets(0.0).to_csr();
        let diag_idx = (0..net.n_nodes)
            .map(|i| {
                base.entry_index(i, i)
                    // oftec-lint: allow(L006, CSR assembly always stores the diagonal; absence is a construction bug, not input)
                    .unwrap_or_else(|| panic!("assembly stored no diagonal entry for node {i}"))
            })
            .collect();
        let rhs_const = net.ambient_rhs(0.0, t_amb);
        let steady_values = base.values().to_vec();
        let steady_rhs = rhs_const.clone();
        Self {
            base,
            diag_idx,
            rhs_const,
            steady_values,
            steady_rhs,
            fan: net.ambient_fan.clone(),
            t_amb,
        }
    }

    /// Folds ω- and I-independent per-node constants into the steady value
    /// and RHS caches, fusing what used to be a per-solve loop into model
    /// construction. The model calls this once with the linearized leakage
    /// diagonals and the chip power injection; the fused fast path
    /// ([`AssemblySkeleton::assemble_steady`]) then starts from the result.
    ///
    /// The folded node sets are disjoint from the fan nodes, so the fused
    /// path produces bit-identical systems to folding leakage after the
    /// fan (the historical order).
    pub fn fold_steady(&mut self, diag_add: &[(usize, f64)], rhs_add: &[(usize, f64)]) {
        for &(node, dv) in diag_add {
            self.steady_values[self.diag_idx[node]] += dv;
        }
        for &(node, dv) in rhs_add {
            self.steady_rhs[node] += dv;
        }
    }

    /// Fused fast path: a scratch matrix/RHS pair that already carries the
    /// steady constants from [`AssemblySkeleton::fold_steady`], with the
    /// fan conductance `fan_g` (W/K) folded in. Callers only fold the
    /// TEC terms afterwards.
    pub fn assemble_steady(&self, fan_g: f64) -> (CsrMatrix, Vec<f64>) {
        let mut matrix = self.base.clone();
        matrix.values_mut().copy_from_slice(&self.steady_values);
        let mut rhs = self.steady_rhs.clone();
        let values = matrix.values_mut();
        for &(node, share) in &self.fan {
            values[self.diag_idx[node]] += share * fan_g;
            rhs[node] += share * fan_g * self.t_amb;
        }
        (matrix, rhs)
    }

    /// The steady system at `fan_g = 0`: matrix `A₀` (conduction + constant
    /// ambient couplings + steady constants) and RHS `b₀`. The reduced-
    /// order build uses this as the operating-point-independent part that
    /// the per-point diagonal updates perturb.
    pub fn steady_parts(&self) -> (CsrMatrix, Vec<f64>) {
        let mut matrix = self.base.clone();
        matrix.values_mut().copy_from_slice(&self.steady_values);
        (matrix, self.steady_rhs.clone())
    }

    /// Fan-scaled ambient couplings `(node, share)`.
    pub fn fan_couplings(&self) -> &[(usize, f64)] {
        &self.fan
    }

    /// Ambient temperature (K).
    pub fn ambient(&self) -> f64 {
        self.t_amb
    }

    /// A scratch copy of the base matrix and ambient RHS with the fan
    /// conductance `fan_g` (W/K) folded in. Callers fold leakage and TEC
    /// terms into the returned pair in place.
    pub fn assemble(&self, fan_g: f64) -> (CsrMatrix, Vec<f64>) {
        let mut matrix = self.base.clone();
        let mut rhs = self.rhs_const.clone();
        let values = matrix.values_mut();
        for &(node, share) in &self.fan {
            values[self.diag_idx[node]] += share * fan_g;
            rhs[node] += share * fan_g * self.t_amb;
        }
        (matrix, rhs)
    }

    /// Value-array position of node `i`'s diagonal entry in any matrix
    /// produced by [`AssemblySkeleton::assemble`].
    #[inline]
    pub fn diag_index(&self, node: usize) -> usize {
        self.diag_idx[node]
    }

    /// Extracts the diagonal of a scratch matrix without per-row binary
    /// searches.
    pub fn diagonal_of(&self, matrix: &CsrMatrix) -> Vec<f64> {
        let values = matrix.values();
        self.diag_idx.iter().map(|&k| values[k]).collect()
    }
}
