//! Solved steady states and their power accounting.

use oftec_units::{Power, Temperature};

/// The three cooling-related power terms of the paper's objective
/// (Eqs. (10)–(13)).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerBreakdown {
    /// Chip leakage `P_leakage` (Eq. (11)) at the solved temperatures.
    pub leakage: Power,
    /// TEC electrical power `P_TEC` (Eq. (12)).
    pub tec: Power,
    /// Fan power `P_fan` (Eq. (13)).
    pub fan: Power,
}

impl PowerBreakdown {
    /// The objective 𝒫 = `P_leakage + P_TEC + P_fan` (Eq. (10)).
    pub fn objective(&self) -> Power {
        self.leakage + self.tec + self.fan
    }

    /// Power spent on cooling proper (TEC + fan, excluding leakage).
    pub fn cooling_only(&self) -> Power {
        self.tec + self.fan
    }

    /// System-level coefficient of performance in the style of the
    /// paper's reference \[8\]: heat removed from the die (dynamic +
    /// leakage) per watt of active cooling power (TEC + fan).
    ///
    /// Returns `None` when no active cooling power is spent.
    pub fn system_cop(&self, dynamic: Power) -> Option<f64> {
        let active = self.cooling_only().watts();
        if active <= 0.0 {
            None
        } else {
            Some((dynamic + self.leakage).watts() / active)
        }
    }
}

/// A converged steady-state thermal solution.
#[derive(Debug, Clone)]
pub struct ThermalSolution {
    temps: Vec<f64>,
    chip_start: usize,
    chip_cells: usize,
    unit_max: Vec<f64>,
    breakdown: PowerBreakdown,
    solver_iterations: usize,
}

impl ThermalSolution {
    pub(crate) fn new(
        temps: Vec<f64>,
        chip_start: usize,
        chip_cells: usize,
        unit_max: Vec<f64>,
        breakdown: PowerBreakdown,
        solver_iterations: usize,
    ) -> Self {
        Self {
            temps,
            chip_start,
            chip_cells,
            unit_max,
            breakdown,
            solver_iterations,
        }
    }

    /// All node temperatures, in Kelvin, in network order.
    pub fn node_temperatures(&self) -> &[f64] {
        &self.temps
    }

    /// Chip-layer cell temperatures, in Kelvin.
    pub fn chip_temperatures(&self) -> &[f64] {
        &self.temps[self.chip_start..self.chip_start + self.chip_cells]
    }

    /// The paper's 𝒯: the maximum chip-cell temperature (Eq. (19)).
    ///
    /// A NaN cell temperature propagates into the result instead of being
    /// silently dropped (as `f64::max` would), so downstream non-finite
    /// guards see poisoned solutions.
    pub fn max_chip_temperature(&self) -> Temperature {
        let max = self
            .chip_temperatures()
            .iter()
            .fold(f64::NEG_INFINITY, |m, &t| {
                if t.is_nan() {
                    f64::NAN
                } else {
                    m.max(t)
                }
            });
        Temperature::from_kelvin(max)
    }

    /// Minimum chip-cell temperature (can sit below ambient when TECs pump
    /// hard). NaN-propagating, like [`ThermalSolution::max_chip_temperature`].
    pub fn min_chip_temperature(&self) -> Temperature {
        let min = self
            .chip_temperatures()
            .iter()
            .fold(
                f64::INFINITY,
                |m, &t| if t.is_nan() { f64::NAN } else { m.min(t) },
            );
        Temperature::from_kelvin(min)
    }

    /// Per-functional-unit maximum temperatures, in floorplan order.
    pub fn unit_max_temperatures(&self) -> Vec<Temperature> {
        self.unit_max
            .iter()
            .map(|&t| Temperature::from_kelvin(t))
            .collect()
    }

    /// The power accounting at this operating point.
    pub fn breakdown(&self) -> PowerBreakdown {
        self.breakdown
    }

    /// The objective 𝒫 (Eq. (10)).
    pub fn objective_power(&self) -> Power {
        self.breakdown.objective()
    }

    /// Conjugate-gradient iterations the solve took (diagnostics).
    pub fn solver_iterations(&self) -> usize {
        self.solver_iterations
    }

    /// Checks the paper's constraint (15): every chip element below
    /// `t_max`.
    pub fn meets_thermal_constraint(&self, t_max: Temperature) -> bool {
        self.max_chip_temperature() < t_max
    }

    /// Fault-injection support: a copy of this solution with every
    /// temperature and power term replaced by NaN — what a numerically
    /// corrupted solver would hand back. Used by robustness harnesses to
    /// prove the guards at the model boundary catch poisoned output; not
    /// part of the semantic API.
    #[doc(hidden)]
    pub fn poisoned_copy(&self) -> Self {
        let nan_power = Power::from_watts(f64::NAN);
        Self {
            temps: vec![f64::NAN; self.temps.len()],
            chip_start: self.chip_start,
            chip_cells: self.chip_cells,
            unit_max: vec![f64::NAN; self.unit_max.len()],
            breakdown: PowerBreakdown {
                leakage: nan_power,
                tec: nan_power,
                fan: nan_power,
            },
            solver_iterations: self.solver_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solution() -> ThermalSolution {
        ThermalSolution::new(
            vec![300.0, 350.0, 370.0, 320.0, 310.0],
            1,
            3,
            vec![370.0, 350.0],
            PowerBreakdown {
                leakage: Power::from_watts(8.0),
                tec: Power::from_watts(3.0),
                fan: Power::from_watts(1.5),
            },
            42,
        )
    }

    #[test]
    fn objective_sums_terms() {
        let s = solution();
        assert_eq!(s.objective_power().watts(), 12.5);
        assert_eq!(s.breakdown().cooling_only().watts(), 4.5);
    }

    #[test]
    fn system_cop() {
        let s = solution();
        // (30 dynamic + 8 leakage) / (3 TEC + 1.5 fan) = 38 / 4.5.
        let cop = s.breakdown().system_cop(Power::from_watts(30.0)).unwrap();
        assert!((cop - 38.0 / 4.5).abs() < 1e-12);
        let idle = PowerBreakdown {
            leakage: Power::from_watts(1.0),
            tec: Power::ZERO,
            fan: Power::ZERO,
        };
        assert!(idle.system_cop(Power::from_watts(10.0)).is_none());
    }

    #[test]
    fn chip_slice_and_extrema() {
        let s = solution();
        assert_eq!(s.chip_temperatures(), &[350.0, 370.0, 320.0]);
        assert_eq!(s.max_chip_temperature().kelvin(), 370.0);
        assert_eq!(s.min_chip_temperature().kelvin(), 320.0);
    }

    #[test]
    fn constraint_check() {
        let s = solution();
        assert!(s.meets_thermal_constraint(Temperature::from_kelvin(371.0)));
        assert!(!s.meets_thermal_constraint(Temperature::from_kelvin(370.0)));
        assert!(!s.meets_thermal_constraint(Temperature::from_kelvin(360.0)));
    }

    #[test]
    fn unit_reduction_exposed() {
        let s = solution();
        let units = s.unit_max_temperatures();
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].kelvin(), 370.0);
        assert_eq!(s.solver_iterations(), 42);
    }
}
