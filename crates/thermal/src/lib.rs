//! Steady-state and transient thermal simulation of a hybrid TEC + fan
//! cooling package — the reproduction's substitute for the paper's
//! modified **Teculator** simulator.
//!
//! # Model
//!
//! The processor package of the paper's Figure 2 is discretized into a
//! grid RC network (Section 4): PCB, chip, TIM1, the TEC layer split into
//! absorption/generation/rejection sub-layers (Figure 4), heat spreader,
//! TIM2, heat sink, and a fan whose speed sets the sink-to-ambient
//! conductance `g_HS&fan(ω) = p·ln(q·ω) + r` (Eq. (9)).
//!
//! Given a fan speed ω and TEC current `I_TEC`, every temperature-dependent
//! source term of the paper is **linear in T**:
//!
//! - chip leakage `a·(T − T_ref) + b` (Eq. (4)),
//! - Peltier absorption `−α·I·T` (Eq. (5)) and rejection `+α·I·T`
//!   (Eq. (6)),
//! - Joule generation `R·I²` (constant, Figure 4),
//!
//! and each touches only the *diagonal* of the KCL system (Eq. (14)), so
//! the folded matrix stays **symmetric**. The solver exploits this:
//! conjugate gradients on the folded matrix either converges (a physical
//! steady state) or hits negative curvature — which is exactly the
//! loss of positive definiteness that constitutes **thermal runaway**
//! (leakage feedback exceeding the package's ability to remove heat).
//!
//! # Examples
//!
//! ```
//! use oftec_floorplan::alpha21264;
//! use oftec_power::{Benchmark, McpatBudget};
//! use oftec_thermal::{HybridCoolingModel, OperatingPoint, PackageConfig};
//! use oftec_units::{AngularVelocity, Current};
//!
//! let fp = alpha21264();
//! let config = PackageConfig::dac14();
//! let dyn_power = Benchmark::Crc32.max_dynamic_power(&fp).unwrap();
//! let leakage = McpatBudget::alpha21264_22nm().distribute(&fp);
//! let model = HybridCoolingModel::with_tec(&fp, &config, dyn_power, &leakage);
//!
//! let op = OperatingPoint::new(
//!     AngularVelocity::from_rpm(3000.0),
//!     Current::from_amperes(1.0),
//! );
//! let sol = model.solve(op).expect("feasible operating point");
//! assert!(sol.max_chip_temperature().celsius() < 90.0);
//! ```

mod assembly;
mod config;
mod error;
mod fan;
mod lumped;
mod model;
mod nonlinear;
pub mod probe;
mod reduction;
mod skeleton;
mod solution;
mod stack;
mod traits;
mod transient;

pub use config::{CoolingConfig, PackageConfig};
pub use error::ThermalError;
pub use fan::FanModel;
pub use lumped::{LumpedModel, LumpedSolution};
pub use model::{HybridCoolingModel, OperatingPoint};
pub use nonlinear::NonlinearOptions;
pub use reduction::{ReducedCoolingModel, ReducedModel, ReductionOptions};
pub use solution::{PowerBreakdown, ThermalSolution};
pub use stack::{LayerRole, LayerSpec};
pub use traits::CoolingModel;
pub use transient::{TransientOptions, TransientTrace};
