//! Fixed-point iteration with the exponential (ground-truth) leakage —
//! the "iteratively calculate ... until the process converges" method the
//! paper's §4 describes before adopting the Taylor shortcut.
//!
//! Each iteration re-linearizes every chip cell's exponential leakage
//! around the previous temperature (tangent line), solves the linear
//! network, and repeats. This is Newton's method on the leakage
//! nonlinearity; near-quadratic convergence when a steady state exists,
//! and clean divergence (caught as runaway) when it does not.

use crate::model::{CellLeak, HybridCoolingModel, OperatingPoint};
use crate::{ThermalError, ThermalSolution};
use oftec_units::Temperature;

/// Controls for [`HybridCoolingModel::solve_nonlinear`].
#[derive(Debug, Clone, Copy)]
pub struct NonlinearOptions {
    /// Convergence threshold on the max chip-cell temperature change (K).
    pub tol_kelvin: f64,
    /// Iteration cap; exceeding it is classified as thermal runaway (the
    /// physical reading of a non-converging leakage fixed point).
    pub max_iterations: usize,
}

impl Default for NonlinearOptions {
    fn default() -> Self {
        Self {
            tol_kelvin: 1e-3,
            max_iterations: 60,
        }
    }
}

impl HybridCoolingModel {
    /// Solves the steady state with the exponential leakage model iterated
    /// to a fixed point (instead of the one-shot Eq. (4) linearization the
    /// paper's optimizer uses).
    ///
    /// Returns the converged solution plus the number of outer
    /// (re-linearization) iterations.
    ///
    /// # Errors
    ///
    /// Same classification as [`HybridCoolingModel::solve`]; additionally,
    /// failure of the outer fixed point to converge is reported as
    /// [`ThermalError::Runaway`].
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve_nonlinear(
        &self,
        op: OperatingPoint,
        opts: &NonlinearOptions,
    ) -> Result<(ThermalSolution, usize), ThermalError> {
        self.validate_operating_point(op)?;

        // Iteration 0: the standard Taylor fit.
        let mut solution = self.solve_linearized(op, self.cell_leak(), None)?;
        let exp_models = self.cell_leak_exp().to_vec();

        for outer in 1..=opts.max_iterations {
            // Tangent-line re-linearization around the current chip temps.
            let chip = solution.chip_temperatures().to_vec();
            let leak: Vec<CellLeak> = exp_models
                .iter()
                .zip(&chip)
                .map(|(m, &t_k)| {
                    let t = Temperature::from_kelvin(t_k);
                    CellLeak {
                        a: m.slope_at(t),
                        b: m.power(t).watts(),
                        t_ref: t_k,
                    }
                })
                .collect();
            let next = self.solve_linearized(op, &leak, Some(solution.node_temperatures()))?;
            let delta = next
                .chip_temperatures()
                .iter()
                .zip(&chip)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            solution = next;
            if delta < opts.tol_kelvin {
                return Ok((solution, outer));
            }
        }
        Err(ThermalError::Runaway(
            "exponential-leakage fixed point did not converge",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackageConfig;
    use oftec_floorplan::alpha21264;
    use oftec_power::McpatBudget;
    use oftec_units::{AngularVelocity, Current};

    fn setup(total_dyn: f64) -> HybridCoolingModel {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let die = fp.die_area().square_meters();
        let dyn_p: Vec<f64> = fp
            .units()
            .iter()
            .map(|u| total_dyn * u.rect().area().square_meters() / die)
            .collect();
        let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
        HybridCoolingModel::with_tec(&fp, &cfg, dyn_p, &leak)
    }

    fn op(rpm: f64, amps: f64) -> OperatingPoint {
        OperatingPoint::new(AngularVelocity::from_rpm(rpm), Current::from_amperes(amps))
    }

    #[test]
    fn converges_quickly_at_healthy_operating_points() {
        let model = setup(22.0);
        let (sol, iters) = model
            .solve_nonlinear(op(3000.0, 1.0), &NonlinearOptions::default())
            .unwrap();
        assert!(iters <= 10, "took {iters} outer iterations");
        assert!(sol.max_chip_temperature().celsius() < 120.0);
    }

    #[test]
    fn agrees_with_linear_model_in_the_fit_window() {
        // At an operating point whose temperatures sit inside the Taylor
        // window, linear and nonlinear solutions must be close.
        let model = setup(18.0);
        let o = op(4000.0, 0.8);
        let lin = model.solve(o).unwrap();
        let (non, _) = model
            .solve_nonlinear(o, &NonlinearOptions::default())
            .unwrap();
        let dt = (lin.max_chip_temperature().kelvin() - non.max_chip_temperature().kelvin()).abs();
        // The Eq. (4) line overestimates the convex exponential in the
        // middle of the 300–390 K window, so a few Kelvin of systematic
        // difference is expected (§4 of the paper accepts this in exchange
        // for a linear network).
        assert!(dt < 6.0, "linear vs nonlinear differ by {dt} K");
    }

    #[test]
    fn nonlinear_leakage_exceeds_reference_when_hot() {
        // At temperatures above the budget's reference, the exponential
        // model must report more leakage than the reference value.
        let model = setup(30.0);
        let (sol, _) = model
            .solve_nonlinear(op(2500.0, 1.0), &NonlinearOptions::default())
            .unwrap();
        assert!(sol.max_chip_temperature().celsius() > 45.0);
        let ref_total = McpatBudget::alpha21264_22nm().total_at_ref.watts();
        assert!(sol.breakdown().leakage.watts() > ref_total);
    }

    #[test]
    fn runaway_detected_nonlinearly() {
        let model = setup(35.0);
        let err = model
            .solve_nonlinear(op(40.0, 0.0), &NonlinearOptions::default())
            .unwrap_err();
        assert!(err.is_runaway(), "expected runaway, got {err}");
    }
}
