//! The model-facing abstraction of the solve pipeline.
//!
//! [`CoolingModel`] captures the surface that Algorithm 1, the sweep
//! grids, and the baselines actually use from
//! [`HybridCoolingModel`](crate::HybridCoolingModel): operating-point
//! validation, steady-state solves (cold and warm-started), and
//! transient simulation. Abstracting it lets the fault-injection
//! harness wrap a real model and perturb its answers (NaN returns,
//! errors, panics) without the optimizer layers knowing the difference.

use crate::config::PackageConfig;
use crate::error::ThermalError;
use crate::model::{HybridCoolingModel, OperatingPoint};
use crate::solution::ThermalSolution;
use crate::transient::{TransientOptions, TransientTrace};

/// A thermal model the OFTEC pipeline can drive.
///
/// `Sync` is required because sweeps and the parallel executor share
/// one model across scoped worker threads.
pub trait CoolingModel: Sync {
    /// Package parameters the model was built from.
    fn config(&self) -> &PackageConfig;

    /// Returns `true` if the model has active TECs (the `I_TEC`
    /// dimension is meaningful).
    fn has_tec(&self) -> bool;

    /// Checks the operating point against the model's physical bounds
    /// without running a solve.
    fn validate_operating_point(&self, op: OperatingPoint) -> Result<(), ThermalError>;

    /// Solves for the steady state at `op`.
    fn solve(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError>;

    /// Solves for the steady state at `op`, warm-starting the iteration
    /// from a previous node-temperature state when one is given.
    fn solve_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError>;

    /// Integrates the transient response at `op` from an initial
    /// node-temperature state (ambient when `None`).
    fn simulate_transient_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError>;
}

/// References delegate, so composed wrappers (`&FaultyModel<...>`) and
/// trait objects (`&dyn CoolingModel`, which is `Sized`) satisfy the
/// generic `M: CoolingModel` bounds of the solver entry points.
impl<M: CoolingModel + ?Sized> CoolingModel for &M {
    fn config(&self) -> &PackageConfig {
        (**self).config()
    }

    fn has_tec(&self) -> bool {
        (**self).has_tec()
    }

    fn validate_operating_point(&self, op: OperatingPoint) -> Result<(), ThermalError> {
        (**self).validate_operating_point(op)
    }

    fn solve(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError> {
        (**self).solve(op)
    }

    fn solve_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        (**self).solve_from(op, initial)
    }

    fn simulate_transient_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError> {
        (**self).simulate_transient_from(op, initial, steps, opts)
    }
}

impl CoolingModel for HybridCoolingModel {
    fn config(&self) -> &PackageConfig {
        HybridCoolingModel::config(self)
    }

    fn has_tec(&self) -> bool {
        HybridCoolingModel::has_tec(self)
    }

    fn validate_operating_point(&self, op: OperatingPoint) -> Result<(), ThermalError> {
        HybridCoolingModel::validate_operating_point(self, op)
    }

    fn solve(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError> {
        HybridCoolingModel::solve(self, op)
    }

    fn solve_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        HybridCoolingModel::solve_from(self, op, initial)
    }

    fn simulate_transient_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError> {
        HybridCoolingModel::simulate_transient_from(self, op, initial, steps, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_floorplan::alpha21264;
    use oftec_power::{Benchmark, McpatBudget};
    use oftec_units::{AngularVelocity, Current};

    fn model() -> HybridCoolingModel {
        let fp = alpha21264();
        let config = PackageConfig::dac14();
        let dynamic = Benchmark::Crc32.max_dynamic_power(&fp).unwrap();
        let leakage = McpatBudget::alpha21264_22nm().distribute(&fp);
        HybridCoolingModel::with_tec(&fp, &config, dynamic, &leakage)
    }

    fn op() -> OperatingPoint {
        OperatingPoint::new(
            AngularVelocity::from_rpm(3000.0),
            Current::from_amperes(1.0),
        )
    }

    #[test]
    fn trait_delegates_to_inherent_methods() {
        let m = model();
        let dynamic: &dyn CoolingModel = &m;
        assert!(dynamic.has_tec());
        dynamic.validate_operating_point(op()).unwrap();
        let via_trait = dynamic.solve(op()).unwrap();
        let via_inherent = m.solve(op()).unwrap();
        assert_eq!(
            via_trait.max_chip_temperature().kelvin(),
            via_inherent.max_chip_temperature().kelvin()
        );
        let warm = dynamic
            .solve_from(op(), Some(via_trait.node_temperatures()))
            .unwrap();
        assert!(
            (warm.max_chip_temperature().kelvin() - via_inherent.max_chip_temperature().kelvin())
                .abs()
                < 1e-6
        );
    }
}
