//! A single-node ("lumped") thermal model — the modeling shortcut of the
//! paper's reference \[11\] that §3 criticizes: "this simplification may
//! leave the hot spots on the chip since the lumped model considers the
//! average temperature for the entire processor die".
//!
//! Implemented faithfully to that related work so the repository can
//! *quantify* the critique: the lumped model collapses the die to one
//! temperature, connected to ambient through the series conductance of
//! the full-area package stack plus `g_HS&fan(ω)`. Compare its verdicts
//! against [`crate::HybridCoolingModel`]'s per-cell maxima in the
//! `lumped_ablation` experiment.

use crate::config::PackageConfig;
use crate::error::ThermalError;
use oftec_floorplan::Floorplan;
use oftec_power::{fit_linear_leakage_over, LeakageModel};
use oftec_units::{AngularVelocity, Power, Temperature};

/// The lumped single-node package model.
#[derive(Debug, Clone)]
pub struct LumpedModel {
    /// Total dynamic power (W).
    total_dynamic: f64,
    /// Linearized total leakage: slope (W/K), value at `t_ref` (W).
    leak_a: f64,
    leak_b: f64,
    t_ref: f64,
    /// Series conductance of the full-area stack from die to sink base
    /// (W/K), excluding the ω-dependent sink-to-ambient step.
    stack_conductance: f64,
    config: PackageConfig,
}

impl LumpedModel {
    /// Builds the lumped model from the same inputs as the grid model.
    /// The die-to-sink path is the series of full-area layer conductances
    /// (vertical only — generous to the lumped model, since it ignores
    /// all spreading resistance).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the floorplan.
    pub fn new(
        floorplan: &Floorplan,
        config: &PackageConfig,
        dynamic_power: &[f64],
        leakage: &LeakageModel,
    ) -> Self {
        assert_eq!(
            dynamic_power.len(),
            floorplan.units().len(),
            "one dynamic power per unit"
        );
        assert_eq!(
            leakage.len(),
            floorplan.units().len(),
            "one leakage model per unit"
        );
        let die_area = floorplan.die_area();
        let spreader_area = config.spreader_edge * config.spreader_edge;

        // Series: chip → TIM1 (die area) → spreader → TIM2 (spreader area)
        // → sink base. Sink-to-ambient is added per ω at solve time.
        let g_chip = config
            .chip_conductivity
            .conductance(die_area, config.chip_thickness);
        let g_tim1 = config
            .tim_conductivity
            .conductance(die_area, config.tim1_thickness);
        let g_spreader = config
            .metal_conductivity
            .conductance(spreader_area, config.spreader_thickness);
        let g_tim2 = config
            .tim_conductivity
            .conductance(spreader_area, config.tim2_thickness);
        let g_sink = config
            .metal_conductivity
            .conductance(config.sink_edge * config.sink_edge, config.sink_thickness);
        let stack = g_chip
            .series(g_tim1)
            .series(g_spreader)
            .series(g_tim2)
            .series(g_sink);

        // Total-die leakage linearization (Eq. (4) on the aggregate).
        let mut leak_a = 0.0;
        let mut leak_b = 0.0;
        for unit in leakage.units() {
            let lin = fit_linear_leakage_over(
                unit,
                Temperature::from_kelvin(oftec_power::taylor::FIT_RANGE_KELVIN.0),
                Temperature::from_kelvin(oftec_power::taylor::FIT_RANGE_KELVIN.1),
                oftec_power::taylor::FIT_SAMPLES,
                config.leakage_fit_t_ref,
            );
            leak_a += lin.a;
            leak_b += lin.b;
        }

        Self {
            total_dynamic: dynamic_power.iter().sum(),
            leak_a,
            leak_b,
            t_ref: config.leakage_fit_t_ref.kelvin(),
            stack_conductance: stack.w_per_k(),
            config: config.clone(),
        }
    }

    /// The die-to-sink series conductance (diagnostics).
    pub fn stack_conductance_w_per_k(&self) -> f64 {
        self.stack_conductance
    }

    /// Solves the single-node steady state at fan speed `omega`:
    /// `g_eff(ω)·(T − T_amb) = P_dyn + a·(T − T_ref) + b`, closed form.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Runaway`] when the leakage slope meets or
    /// exceeds the effective conductance (no stable solution), and
    /// [`ThermalError::InvalidOperatingPoint`] for ω outside
    /// `[0, ω_max]`.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve(&self, omega: AngularVelocity) -> Result<LumpedSolution, ThermalError> {
        let w = omega.rad_per_s();
        let w_max = self.config.fan.omega_max.rad_per_s();
        if !w.is_finite() || w < -1e-9 || w > w_max * (1.0 + 1e-9) {
            return Err(ThermalError::InvalidOperatingPoint(format!(
                "fan speed {w:.3} rad/s outside [0, {w_max:.3}]"
            )));
        }
        let g_fan = self.config.fan.conductance(omega).w_per_k();
        let g_eff = self.stack_conductance * g_fan / (self.stack_conductance + g_fan);
        if self.leak_a >= g_eff {
            return Err(ThermalError::Runaway(
                "lumped leakage slope exceeds the package conductance",
            ));
        }
        let t_amb = self.config.ambient.kelvin();
        // g(T − T_amb) = P_dyn + a(T − T_ref) + b.
        let t = (g_eff * t_amb + self.total_dynamic + self.leak_b - self.leak_a * self.t_ref)
            / (g_eff - self.leak_a);
        if t > self.config.runaway_cap.kelvin() {
            return Err(ThermalError::Runaway(
                "lumped temperature beyond the runaway cap",
            ));
        }
        let leakage = self.leak_a * (t - self.t_ref) + self.leak_b;
        Ok(LumpedSolution {
            temperature: Temperature::from_kelvin(t),
            leakage: Power::from_watts(leakage),
            fan: self.config.fan.power(omega),
        })
    }
}

/// The lumped model's (single) steady state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LumpedSolution {
    /// The one die temperature the model knows about.
    pub temperature: Temperature,
    /// Total leakage at that temperature.
    pub leakage: Power,
    /// Fan power.
    pub fan: Power,
}

impl LumpedSolution {
    /// Cooling-objective analogue (no TEC term — the lumped related work
    /// has no TECs).
    pub fn objective_power(&self) -> Power {
        self.leakage + self.fan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HybridCoolingModel;
    use oftec_floorplan::alpha21264;
    use oftec_power::{Benchmark, McpatBudget};

    fn setup(b: Benchmark) -> (LumpedModel, HybridCoolingModel) {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14();
        let dyn_p = b.max_dynamic_power(&fp).unwrap();
        let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
        let lumped = LumpedModel::new(&fp, &cfg, &dyn_p, &leak);
        let grid = HybridCoolingModel::fan_only(&fp, &cfg, dyn_p, &leak);
        (lumped, grid)
    }

    fn rpm(v: f64) -> AngularVelocity {
        AngularVelocity::from_rpm(v)
    }

    #[test]
    fn lumped_tracks_average_not_peak() {
        let (lumped, grid) = setup(Benchmark::BitCount);
        let omega = rpm(5000.0);
        let l = lumped.solve(omega).unwrap();
        let g = grid.solve(crate::OperatingPoint::fan_only(omega)).unwrap();
        // The lumped temperature must underestimate the grid's hot spot…
        assert!(
            l.temperature < g.max_chip_temperature(),
            "lumped {} vs grid max {}",
            l.temperature,
            g.max_chip_temperature()
        );
        // …while staying in the same regime as the grid's *average*.
        let avg = g.chip_temperatures().iter().sum::<f64>() / g.chip_temperatures().len() as f64;
        assert!((l.temperature.kelvin() - avg).abs() < 10.0);
    }

    #[test]
    fn lumped_misses_the_hot_benchmark_failures() {
        // The ref. [11] critique, quantified: on the hot benchmarks the
        // grid model shows T_max ≥ 90 °C at full fan, while the lumped
        // model happily reports a safe die.
        for b in [Benchmark::BitCount, Benchmark::Fft, Benchmark::Quicksort] {
            let (lumped, grid) = setup(b);
            let omega = rpm(5000.0);
            let l = lumped.solve(omega).unwrap();
            let g = grid.solve(crate::OperatingPoint::fan_only(omega)).unwrap();
            assert!(g.max_chip_temperature().celsius() > 90.0, "{b:?}");
            assert!(
                l.temperature.celsius() < 90.0,
                "{b:?}: lumped should (wrongly) report feasible"
            );
        }
    }

    #[test]
    fn lumped_runaway_at_still_air() {
        let (lumped, _) = setup(Benchmark::Quicksort);
        // At ω = 0 the effective conductance collapses and leakage
        // feedback dominates within the cap.
        let result = lumped.solve(AngularVelocity::ZERO);
        assert!(result.is_err(), "still air must fail: {result:?}");
    }

    #[test]
    fn conductance_and_bounds() {
        let (lumped, _) = setup(Benchmark::Crc32);
        assert!(lumped.stack_conductance_w_per_k() > 1.0);
        assert!(lumped.solve(rpm(6000.0)).is_err());
    }
}
