//! Package layer descriptions and grid geometry helpers.

use oftec_floorplan::{GridDims, Rect};
use oftec_units::{Length, ThermalConductivity, VolumetricHeatCapacity};

/// What a layer does in the network, beyond conducting heat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LayerRole {
    /// Conducts only (PCB, TIMs, spreader) — the paper's `L_conduct`.
    Conduct,
    /// The silicon die: injects dynamic power and temperature-dependent
    /// leakage — `L_chip`.
    Chip,
    /// TEC cold-side interface plane — `L_TEC,Abs` (zero thickness).
    TecAbsorb,
    /// TEC mid-plane carrying the Joule generation — `L_TEC,Gen`
    /// (zero thickness; the film's conduction is attached to its edges).
    TecGenerate,
    /// TEC hot-side interface plane — `L_TEC,Rej` (zero thickness).
    TecReject,
    /// The heat sink: couples to ambient through `g_HS&fan(ω)`.
    Sink,
    /// The PCB: couples to ambient through a small constant conductance.
    Pcb,
}

/// One layer of the package stack, with its own lateral extent and grid.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LayerSpec {
    /// Human-readable name ("chip", "TIM1", ...).
    pub name: String,
    /// Role in the network.
    pub role: LayerRole,
    /// Lateral extent in package coordinates (layers are usually centered
    /// on the die).
    pub extent: Rect,
    /// Grid resolution over the extent.
    pub dims: GridDims,
    /// Layer thickness; zero for TEC interface planes.
    pub thickness: Length,
    /// Material conductivity (used for lateral conduction and vertical
    /// half-cell resistances; ignored for zero-thickness planes).
    pub conductivity: ThermalConductivity,
    /// Volumetric heat capacity (transient mode).
    pub heat_capacity: VolumetricHeatCapacity,
}

impl LayerSpec {
    /// Cell width and height.
    pub fn cell_size(&self) -> (f64, f64) {
        (
            self.extent.width().meters() / self.dims.cols as f64,
            self.extent.height().meters() / self.dims.rows as f64,
        )
    }

    /// Area of one cell in m².
    pub fn cell_area(&self) -> f64 {
        let (w, h) = self.cell_size();
        w * h
    }

    /// Rectangle of cell `(row, col)` in package coordinates.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell_rect(&self, row: usize, col: usize) -> Rect {
        assert!(row < self.dims.rows && col < self.dims.cols, "cell range");
        let (w, h) = self.cell_size();
        Rect::from_meters(
            self.extent.x().meters() + col as f64 * w,
            self.extent.y().meters() + row as f64 * h,
            w,
            h,
        )
    }

    /// Vertical half-cell conductance (from the cell's mid-plane to its
    /// face) over `area` m²: `k·A/(t/2)`. `None` for zero-thickness
    /// interface planes, which contribute no series resistance.
    pub fn vertical_half_conductance(&self, area: f64) -> Option<f64> {
        let t = self.thickness.meters();
        // oftec-lint: allow(L004, zero thickness encodes an interface plane, exactly)
        if t == 0.0 {
            None
        } else {
            Some(self.conductivity.w_per_m_k() * area / (t / 2.0))
        }
    }

    /// Returns `true` if this layer is one of the TEC sub-layers.
    pub fn is_tec(&self) -> bool {
        matches!(
            self.role,
            LayerRole::TecAbsorb | LayerRole::TecGenerate | LayerRole::TecReject
        )
    }
}

/// Builds a layer extent of the given width/height centered on `center`.
pub(crate) fn centered_extent(center: (f64, f64), width: f64, height: f64) -> Rect {
    Rect::from_meters(
        center.0 - width / 2.0,
        center.1 - height / 2.0,
        width,
        height,
    )
}

/// Series combination of two optional half-conductances (W/K). `None`
/// means "no resistance contribution" (an interface plane).
///
/// # Panics
///
/// Panics if both are `None` — two adjacent interface planes must be
/// joined by an explicit edge conductance instead.
pub(crate) fn series_halves(a: Option<f64>, b: Option<f64>) -> f64 {
    match (a, b) {
        (Some(x), Some(y)) => {
            // oftec-lint: allow(L004, exact zero short-circuits the series combination to avoid 0/0)
            if x == 0.0 || y == 0.0 {
                0.0
            } else {
                x * y / (x + y)
            }
        }
        (Some(x), None) | (None, Some(x)) => x,
        // oftec-lint: allow(L006, documented invariant: adjacent interface planes must declare an edge conductance)
        (None, None) => panic!("two adjacent interface planes need an explicit edge conductance"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(extent_mm: f64, dims: usize, thick_um: f64, k: f64) -> LayerSpec {
        LayerSpec {
            name: "test".into(),
            role: LayerRole::Conduct,
            extent: centered_extent((0.0, 0.0), extent_mm * 1e-3, extent_mm * 1e-3),
            dims: GridDims::new(dims, dims),
            thickness: Length::from_um(thick_um),
            conductivity: ThermalConductivity::from_w_per_m_k(k),
            heat_capacity: VolumetricHeatCapacity::from_j_per_m3_k(1e6),
        }
    }

    #[test]
    fn cell_geometry() {
        let l = layer(16.0, 4, 100.0, 100.0);
        let (w, h) = l.cell_size();
        assert!((w - 4e-3).abs() < 1e-12);
        assert!((h - 4e-3).abs() < 1e-12);
        assert!((l.cell_area() - 16e-6).abs() < 1e-15);
        let r = l.cell_rect(0, 0);
        assert!((r.x().meters() + 8e-3).abs() < 1e-12);
        assert!((r.y().meters() + 8e-3).abs() < 1e-12);
        let r33 = l.cell_rect(3, 3);
        assert!((r33.right().meters() - 8e-3).abs() < 1e-12);
    }

    #[test]
    fn half_conductance() {
        let l = layer(10.0, 2, 20.0, 1.75);
        // k·A/(t/2) = 1.75 · A / 1e-5.
        let a = 25e-6;
        let g = l.vertical_half_conductance(a).unwrap();
        assert!((g - 1.75 * a / 1e-5).abs() < 1e-9);
    }

    #[test]
    fn interface_plane_has_no_half() {
        let l = layer(10.0, 2, 0.0, 1.75);
        assert!(l.vertical_half_conductance(1e-6).is_none());
    }

    #[test]
    fn series_combination_rules() {
        assert!((series_halves(Some(2.0), Some(2.0)) - 1.0).abs() < 1e-12);
        assert_eq!(series_halves(Some(3.0), None), 3.0);
        assert_eq!(series_halves(None, Some(4.0)), 4.0);
        assert_eq!(series_halves(Some(0.0), Some(5.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "interface planes")]
    fn double_interface_panics() {
        let _ = series_halves(None, None);
    }

    #[test]
    fn tec_role_detection() {
        let mut l = layer(10.0, 2, 0.0, 1.0);
        assert!(!l.is_tec());
        l.role = LayerRole::TecGenerate;
        assert!(l.is_tec());
    }
}
