//! Package configuration — Table 1 of the paper plus discretization and
//! boundary-condition choices.

use crate::FanModel;
use oftec_floorplan::GridDims;
use oftec_tec::{TecDeployment, TecDeviceParams};
use oftec_units::{Length, Temperature, ThermalConductivity};

/// Which cooling assembly sits on the die.
#[derive(Debug, Clone)]
pub enum CoolingConfig {
    /// The paper's hybrid assembly: TEC sub-layers between TIM1 and the
    /// spreader, plus the fan.
    HybridTec(TecDeployment),
    /// Fan-only baseline. Per the paper's fairness rule (§6.1), TIM1 is
    /// replaced by the series-equivalent of TIM1 + the (passive) TEC film,
    /// because the TEC pellets conduct better than thermal paste.
    FanOnly {
        /// TEC parameters used only to compute the equivalent TIM
        /// conductivity boost.
        equivalent_tec: TecDeviceParams,
    },
    /// Fan-only with the die-to-spreader gap filled entirely with thermal
    /// paste (no fairness boost) — the "unfair" baseline the paper argues
    /// against; kept for ablations. `total_gap` is the full gap thickness
    /// (TIM1 + the volume TECs would occupy).
    FanOnlyPlainTim {
        /// Total die-to-spreader gap filled with paste.
        total_gap: oftec_units::Length,
    },
}

impl CoolingConfig {
    /// Returns `true` if the configuration includes active TECs.
    pub fn has_tec(&self) -> bool {
        matches!(self, CoolingConfig::HybridTec(_))
    }

    /// The paper's plain baseline geometry: the full TIM1 + TEC gap of the
    /// given package filled with paste.
    pub fn fan_only_plain(config: &PackageConfig, tec: &TecDeviceParams) -> Self {
        CoolingConfig::FanOnlyPlainTim {
            total_gap: config.tim1_thickness + tec.thickness,
        }
    }
}

/// All geometric, material, and boundary parameters of the package.
///
/// Defaults ([`PackageConfig::dac14`]) reproduce the paper's §6.1 setup:
/// Table 1 layer stack, 45 °C ambient, 90 °C limit, the Eq. (9) fan fit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PackageConfig {
    /// Ambient air temperature (the paper uses 45 °C).
    pub ambient: Temperature,
    /// Fan / heat-sink model.
    pub fan: FanModel,

    /// Chip thickness (Table 1: 15 µm).
    pub chip_thickness: Length,
    /// Chip thermal conductivity (Table 1: 100 W/(m·K)).
    pub chip_conductivity: ThermalConductivity,
    /// TIM1 thickness (Table 1: 20 µm).
    pub tim1_thickness: Length,
    /// TIM conductivity, used for both TIMs and for the passive filler in
    /// uncovered TEC-layer cells (Table 1: 1.75 W/(m·K)).
    pub tim_conductivity: ThermalConductivity,
    /// Heat-spreader edge (Table 1: 30 mm square).
    pub spreader_edge: Length,
    /// Heat-spreader thickness (Table 1: 1 mm).
    pub spreader_thickness: Length,
    /// Spreader/sink conductivity (Table 1: 400 W/(m·K)).
    pub metal_conductivity: ThermalConductivity,
    /// TIM2 thickness (Table 1: 20 µm).
    pub tim2_thickness: Length,
    /// Heat-sink edge (Table 1: 60 mm square).
    pub sink_edge: Length,
    /// Heat-sink base thickness (Table 1: 7 mm).
    pub sink_thickness: Length,
    /// PCB edge (Figure 2; not in Table 1 — 40 mm assumed).
    pub pcb_edge: Length,
    /// PCB thickness (1 mm assumed).
    pub pcb_thickness: Length,
    /// PCB in-plane conductivity (FR-4 with copper planes, ~5 W/(m·K)).
    pub pcb_conductivity: ThermalConductivity,

    /// Chip-to-PCB interface coefficient (C4 bumps + substrate), W/(m²·K).
    pub chip_pcb_interface: f64,
    /// PCB-to-ambient natural-convection coefficient, W/(m²·K).
    pub pcb_ambient_convection: f64,

    /// Grid over the die (chip, TIM1, and TEC sub-layers).
    pub die_dims: GridDims,
    /// Grid over the spreader and TIM2.
    pub spreader_dims: GridDims,
    /// Grid over the heat sink.
    pub sink_dims: GridDims,
    /// Grid over the PCB.
    pub pcb_dims: GridDims,

    /// Temperature cap above which a formally-converged solution is still
    /// classified as thermal runaway (silicon would long be destroyed).
    pub runaway_cap: Temperature,
    /// Expansion point `T_ref` for the Eq. (4) leakage linearization
    /// ("usually set as the average temperature of the chip", §4).
    pub leakage_fit_t_ref: Temperature,
}

impl PackageConfig {
    /// The paper's configuration: Table 1 stack, 45 °C ambient, Eq. (9)
    /// fan constants, 16×16 die grid.
    pub fn dac14() -> Self {
        Self {
            ambient: Temperature::from_celsius(45.0),
            fan: FanModel::dac14(),
            chip_thickness: Length::from_um(15.0),
            chip_conductivity: ThermalConductivity::from_w_per_m_k(100.0),
            tim1_thickness: Length::from_um(20.0),
            tim_conductivity: ThermalConductivity::from_w_per_m_k(1.75),
            spreader_edge: Length::from_mm(30.0),
            spreader_thickness: Length::from_mm(1.0),
            metal_conductivity: ThermalConductivity::from_w_per_m_k(400.0),
            tim2_thickness: Length::from_um(20.0),
            sink_edge: Length::from_mm(60.0),
            sink_thickness: Length::from_mm(7.0),
            pcb_edge: Length::from_mm(40.0),
            pcb_thickness: Length::from_mm(1.0),
            pcb_conductivity: ThermalConductivity::from_w_per_m_k(5.0),
            chip_pcb_interface: 300.0,
            pcb_ambient_convection: 50.0,
            die_dims: GridDims::new(16, 16),
            spreader_dims: GridDims::new(10, 10),
            sink_dims: GridDims::new(8, 8),
            pcb_dims: GridDims::new(6, 6),
            runaway_cap: Temperature::from_celsius(250.0),
            leakage_fit_t_ref: Temperature::from_kelvin(345.0),
        }
    }

    /// A coarse variant (8×8 die grid) for fast tests and sweeps.
    pub fn dac14_coarse() -> Self {
        Self {
            die_dims: GridDims::new(8, 8),
            spreader_dims: GridDims::new(6, 6),
            sink_dims: GridDims::new(5, 5),
            pcb_dims: GridDims::new(4, 4),
            ..Self::dac14()
        }
    }

    /// Effective conductivity of the fairness-boosted TIM1 used by the
    /// fan-only baseline: the series stack of TIM1 and the passive TEC
    /// film over the combined thickness (§6.1: "the conductivity of the
    /// TIM1 layer in the baselines is set equal to the overall
    /// conductivity of TIM1 plus the TEC").
    pub fn boosted_tim1(&self, tec: &TecDeviceParams) -> (Length, ThermalConductivity) {
        let t1 = self.tim1_thickness.meters();
        let k1 = self.tim_conductivity.w_per_m_k();
        let t2 = tec.thickness.meters();
        let k2 = tec.effective_conductivity();
        let total = t1 + t2;
        let k_eff = total / (t1 / k1 + t2 / k2);
        (
            Length::from_meters(total),
            ThermalConductivity::from_w_per_m_k(k_eff),
        )
    }

    /// Validates dimensional sanity.
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions or inverted layer extents.
    pub fn assert_physical(&self) {
        self.fan.assert_physical();
        for (what, v) in [
            ("chip thickness", self.chip_thickness.meters()),
            ("TIM1 thickness", self.tim1_thickness.meters()),
            ("spreader edge", self.spreader_edge.meters()),
            ("spreader thickness", self.spreader_thickness.meters()),
            ("TIM2 thickness", self.tim2_thickness.meters()),
            ("sink edge", self.sink_edge.meters()),
            ("sink thickness", self.sink_thickness.meters()),
            ("PCB edge", self.pcb_edge.meters()),
            ("PCB thickness", self.pcb_thickness.meters()),
        ] {
            assert!(v > 0.0, "{what} must be positive");
        }
        assert!(
            self.sink_edge >= self.spreader_edge,
            "heat sink must be at least as large as the spreader"
        );
        assert!(
            self.runaway_cap > self.ambient,
            "runaway cap must exceed ambient"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac14_matches_table1() {
        let c = PackageConfig::dac14();
        c.assert_physical();
        assert_eq!(c.chip_thickness, Length::from_um(15.0));
        assert_eq!(c.chip_conductivity.w_per_m_k(), 100.0);
        assert_eq!(c.tim1_thickness, Length::from_um(20.0));
        assert_eq!(c.tim_conductivity.w_per_m_k(), 1.75);
        assert_eq!(c.spreader_edge, Length::from_mm(30.0));
        assert_eq!(c.spreader_thickness, Length::from_mm(1.0));
        assert_eq!(c.metal_conductivity.w_per_m_k(), 400.0);
        assert_eq!(c.sink_edge, Length::from_mm(60.0));
        assert_eq!(c.sink_thickness, Length::from_mm(7.0));
        assert_eq!(c.ambient, Temperature::from_celsius(45.0));
    }

    #[test]
    fn boosted_tim_beats_full_gap_paste() {
        // The fairness rule compares equal geometry: a die-to-spreader gap
        // of TIM1 + TEC thickness. Filling part of it with the (more
        // conductive) TEC film must beat filling it all with paste.
        let c = PackageConfig::dac14();
        let tec = TecDeviceParams::superlattice_thin_film();
        let (t, k) = c.boosted_tim1(&tec);
        assert!(t > c.tim1_thickness);
        let g_all_paste = c.tim_conductivity.w_per_m_k() / t.meters();
        let g_boost = k.w_per_m_k() / t.meters();
        assert!(
            g_boost > g_all_paste,
            "boost failed: {g_boost} ≤ {g_all_paste} (W/m²K per unit area)"
        );
    }

    #[test]
    fn cooling_config_kind() {
        let dep = TecDeployment::tile_all(
            &oftec_floorplan::alpha21264(),
            GridDims::new(4, 4),
            TecDeviceParams::superlattice_thin_film(),
        );
        assert!(CoolingConfig::HybridTec(dep).has_tec());
        assert!(!CoolingConfig::FanOnly {
            equivalent_tec: TecDeviceParams::superlattice_thin_film()
        }
        .has_tec());
        assert!(!CoolingConfig::FanOnlyPlainTim {
            total_gap: Length::from_um(30.0)
        }
        .has_tec());
    }

    #[test]
    #[should_panic(expected = "at least as large")]
    fn sink_smaller_than_spreader_rejected() {
        let mut c = PackageConfig::dac14();
        c.sink_edge = Length::from_mm(10.0);
        c.assert_physical();
    }
}
