//! Error type of the thermal simulator.

use oftec_linalg::LinalgError;

/// Errors from building or solving the thermal model.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// No steady state exists at the requested operating point: leakage
    /// feedback exceeds the package's heat-removal capability (the paper's
    /// "thermal runaway" — objective values tending to infinity in
    /// Figure 6(a)(b)). Holds a short description of how it was detected.
    Runaway(&'static str),
    /// The operating point violates a physical bound (negative current,
    /// fan speed above `ω_max`, ...).
    InvalidOperatingPoint(String),
    /// Model construction was inconsistent (mismatched vector lengths,
    /// unknown units, ...).
    Config(String),
    /// The linear solver failed for a reason other than indefiniteness.
    Solver(LinalgError),
    /// An input or intermediate value was NaN/inf where a finite value is
    /// required (conductances, powers, warm-start states, ...).
    NonFinite(String),
}

impl core::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Runaway(how) => write!(f, "thermal runaway: {how}"),
            Self::InvalidOperatingPoint(what) => write!(f, "invalid operating point: {what}"),
            Self::Config(what) => write!(f, "model configuration error: {what}"),
            Self::Solver(e) => write!(f, "thermal solver failure: {e}"),
            Self::NonFinite(what) => write!(f, "non-finite value in {what}"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ThermalError {
    fn from(e: LinalgError) -> Self {
        match e {
            // Loss of positive definiteness IS the runaway signal.
            LinalgError::NotPositiveDefinite(_) => {
                ThermalError::Runaway("thermal network matrix is not positive definite")
            }
            LinalgError::Breakdown("non-positive curvature in CG") => {
                ThermalError::Runaway("negative curvature in the folded network matrix")
            }
            LinalgError::Singular(_) => ThermalError::Runaway("thermal network matrix is singular"),
            LinalgError::NonFinite(what) => ThermalError::NonFinite(what.to_string()),
            other => ThermalError::Solver(other),
        }
    }
}

impl ThermalError {
    /// Returns `true` for the thermal-runaway condition.
    pub fn is_runaway(&self) -> bool {
        matches!(self, Self::Runaway(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runaway_classification_from_linalg() {
        let e: ThermalError = LinalgError::NotPositiveDefinite(3).into();
        assert!(e.is_runaway());
        let e: ThermalError = LinalgError::Breakdown("non-positive curvature in CG").into();
        assert!(e.is_runaway());
        let e: ThermalError = LinalgError::Singular(0).into();
        assert!(e.is_runaway());
        let e: ThermalError = LinalgError::DimensionMismatch(2, 3).into();
        assert!(!e.is_runaway());
    }

    #[test]
    fn display() {
        assert!(ThermalError::Runaway("x").to_string().contains("runaway"));
        assert!(ThermalError::Config("bad".into())
            .to_string()
            .contains("configuration"));
    }
}
