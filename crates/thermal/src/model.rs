//! The hybrid cooling model: package + TECs + workload, solvable at any
//! `(ω, I_TEC)` operating point.

use crate::assembly::{build_network, Network};
use crate::config::{CoolingConfig, PackageConfig};
use crate::error::ThermalError;
use crate::skeleton::AssemblySkeleton;
use crate::solution::{PowerBreakdown, ThermalSolution};
use crate::stack::LayerRole;
use oftec_floorplan::{Floorplan, GridMap};
use oftec_linalg::{
    solve_cg, CsrMatrix, Ilu0Preconditioner, IterativeParams, JacobiPreconditioner, Preconditioner,
};
use oftec_power::{fit_linear_leakage_over, ExponentialLeakage, LeakageModel};
use oftec_tec::{TecDeployment, TecDeviceParams};
use oftec_telemetry as telemetry;
use oftec_units::{AngularVelocity, Current, Power, Temperature};

/// One point of OFTEC's two-variable design space.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OperatingPoint {
    /// Fan speed ω.
    pub fan_speed: AngularVelocity,
    /// TEC driving current `I_TEC` (ignored by fan-only models, which
    /// require it to be zero).
    pub tec_current: Current,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(fan_speed: AngularVelocity, tec_current: Current) -> Self {
        Self {
            fan_speed,
            tec_current,
        }
    }

    /// Fan-only operating point (zero TEC current).
    pub fn fan_only(fan_speed: AngularVelocity) -> Self {
        Self::new(fan_speed, Current::ZERO)
    }
}

/// Per-cell linearized leakage `p = a·(T − t_ref) + b`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CellLeak {
    pub a: f64,
    pub b: f64,
    pub t_ref: f64,
}

/// A ready-to-solve thermal model of the full cooling assembly for one
/// workload (per-unit dynamic power vector) — the reproduction's
/// "Teculator" instance.
///
/// Construction pre-assembles everything ω- and I-independent; each
/// [`HybridCoolingModel::solve`] call folds the operating point into the
/// diagonal, solves one symmetric sparse system, and classifies the
/// outcome (steady state vs. thermal runaway).
#[derive(Debug, Clone)]
pub struct HybridCoolingModel {
    network: Network,
    config: PackageConfig,
    gridmap: GridMap,
    unit_names: Vec<String>,
    chip_start: usize,
    chip_cells: usize,
    /// Per-chip-cell dynamic power (W).
    dyn_power: Vec<f64>,
    /// Per-chip-cell linearized leakage (paper default path).
    cell_leak: Vec<CellLeak>,
    /// Per-chip-cell exponential leakage (ground truth, nonlinear mode).
    cell_leak_exp: Vec<ExponentialLeakage>,
    /// TEC bookkeeping; `None` for fan-only models.
    tec: Option<TecFolding>,
    /// Pre-assembled CSR pattern + base values; every solve folds its
    /// operating point into a scratch copy instead of re-sorting triplets.
    skeleton: AssemblySkeleton,
}

/// TEC sub-layer folding data.
#[derive(Debug, Clone)]
pub(crate) struct TecFolding {
    pub(crate) abs_start: usize,
    pub(crate) gen_start: usize,
    pub(crate) rej_start: usize,
    /// Per die-cell module Seebeck aggregate α (V/K); zero when uncovered.
    pub(crate) alpha_cell: Vec<f64>,
    /// Per die-cell module resistance aggregate R (Ω); zero when uncovered.
    pub(crate) r_cell: Vec<f64>,
    pub(crate) max_current: Current,
}

impl HybridCoolingModel {
    /// Builds a model with an explicit cooling configuration.
    ///
    /// `dynamic_power` is the per-functional-unit power vector in watts
    /// (floorplan order) — in the paper's flow, the per-unit maximum of a
    /// PTscalar trace. `leakage` provides one exponential model per unit;
    /// it is linearized here with the paper's Eq. (4) fit around
    /// `config.leakage_fit_t_ref`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Config`] on mismatched vector lengths or a
    /// TEC deployment grid that differs from `config.die_dims`.
    pub fn new(
        floorplan: &Floorplan,
        config: &PackageConfig,
        cooling: CoolingConfig,
        dynamic_power: Vec<f64>,
        leakage: &LeakageModel,
    ) -> Result<Self, ThermalError> {
        let n_units = floorplan.units().len();
        if dynamic_power.len() != n_units {
            return Err(ThermalError::Config(format!(
                "dynamic power has {} entries for {} units",
                dynamic_power.len(),
                n_units
            )));
        }
        if leakage.len() != n_units {
            return Err(ThermalError::Config(format!(
                "leakage model has {} entries for {} units",
                leakage.len(),
                n_units
            )));
        }
        if dynamic_power.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(ThermalError::Config(
                "dynamic power must be finite and non-negative".into(),
            ));
        }
        if let CoolingConfig::HybridTec(dep) = &cooling {
            if dep.dims() != config.die_dims {
                return Err(ThermalError::Config(
                    "TEC deployment grid must match config.die_dims".into(),
                ));
            }
        }

        let network = build_network(floorplan, config, &cooling);
        let gridmap = GridMap::new(floorplan, config.die_dims);
        let chip = network
            .layer_by_role(LayerRole::Chip)
            .ok_or_else(|| ThermalError::Config("network has no chip layer".into()))?;
        let chip_start = chip.start;
        let chip_cells = chip.cells();

        // Distribute dynamic power into cells.
        let dyn_cells = gridmap.distribute(&dynamic_power);

        // Linearize each unit's leakage (Eq. (4), 10 points over 300–390 K)
        // and spread it into cells by area share.
        let t_ref = config.leakage_fit_t_ref;
        let mut cell_a = vec![0.0; chip_cells];
        let mut cell_b = vec![0.0; chip_cells];
        let mut cell_p_ref = vec![0.0; chip_cells];
        let mut beta = vec![0.0; chip_cells];
        for (ui, unit_leak) in leakage.units().iter().enumerate() {
            let lin = fit_linear_leakage_over(
                unit_leak,
                Temperature::from_kelvin(oftec_power::taylor::FIT_RANGE_KELVIN.0),
                Temperature::from_kelvin(oftec_power::taylor::FIT_RANGE_KELVIN.1),
                oftec_power::taylor::FIT_SAMPLES,
                t_ref,
            );
            for &(cell, frac) in gridmap.unit_cells(ui) {
                cell_a[cell] += lin.a * frac;
                cell_b[cell] += lin.b * frac;
                cell_p_ref[cell] += unit_leak.p_ref().watts() * frac;
                // All cells of a unit share its β; cells on unit borders
                // blend by power share.
                beta[cell] += unit_leak.beta() * unit_leak.p_ref().watts() * frac;
            }
        }
        let cell_leak: Vec<CellLeak> = (0..chip_cells)
            .map(|i| CellLeak {
                a: cell_a[i],
                b: cell_b[i],
                t_ref: t_ref.kelvin(),
            })
            .collect();
        let cell_leak_exp: Vec<ExponentialLeakage> = (0..chip_cells)
            .map(|i| {
                let p = cell_p_ref[i];
                let b = if p > 0.0 { beta[i] / p } else { 0.0 };
                ExponentialLeakage::new(
                    Power::from_watts(p),
                    // Exponential reference temperature comes from the
                    // budget; all units share it in practice.
                    leakage.units().first().map_or(t_ref, |u| u.t_ref()),
                    b,
                )
            })
            .collect();

        // TEC folding arrays.
        let tec = if let CoolingConfig::HybridTec(dep) = &cooling {
            let tec_layer = |role: LayerRole| {
                network.layer_by_role(role).ok_or_else(|| {
                    ThermalError::Config(format!("TEC network is missing its {role:?} layer"))
                })
            };
            let abs = tec_layer(LayerRole::TecAbsorb)?;
            let gen = tec_layer(LayerRole::TecGenerate)?;
            let rej = tec_layer(LayerRole::TecReject)?;
            let params: &TecDeviceParams = dep.params();
            let scale = dep.devices_per_cell();
            let alpha_cell = dep
                .coverage()
                .iter()
                .map(|&cov| {
                    if cov {
                        params.seebeck.volts_per_kelvin() * scale
                    } else {
                        0.0
                    }
                })
                .collect();
            let r_cell = dep
                .coverage()
                .iter()
                .map(|&cov| {
                    if cov {
                        params.electrical_resistance.ohms() * scale
                    } else {
                        0.0
                    }
                })
                .collect();
            Some(TecFolding {
                abs_start: abs.start,
                gen_start: gen.start,
                rej_start: rej.start,
                alpha_cell,
                r_cell,
                max_current: params.max_current,
            })
        } else {
            None
        };

        let mut skeleton = AssemblySkeleton::new(&network, config.ambient.kelvin());
        // Fuse the ω/I-independent chip terms (linearized leakage feedback,
        // dynamic power, leakage offset) into the skeleton once: the default
        // solve path then skips the per-call chip loop entirely. The chip
        // nodes are disjoint from the fan-coupled sink nodes, so the fused
        // fold order is bit-identical to the historical fan-then-leakage
        // order.
        let diag_add: Vec<(usize, f64)> = cell_leak
            .iter()
            .enumerate()
            .map(|(cell, lk)| (chip_start + cell, -lk.a))
            .collect();
        let rhs_add: Vec<(usize, f64)> = cell_leak
            .iter()
            .enumerate()
            .map(|(cell, lk)| (chip_start + cell, dyn_cells[cell] + lk.b - lk.a * lk.t_ref))
            .collect();
        skeleton.fold_steady(&diag_add, &rhs_add);

        Ok(Self {
            network,
            config: config.clone(),
            gridmap,
            unit_names: floorplan
                .units()
                .iter()
                .map(|u| u.name().to_owned())
                .collect(),
            chip_start,
            chip_cells,
            dyn_power: dyn_cells,
            cell_leak,
            cell_leak_exp,
            tec,
            skeleton,
        })
    }

    /// Convenience: the paper's deployment (TECs everywhere except
    /// `Icache`/`Dcache`, superlattice thin-film parameters).
    ///
    /// # Panics
    ///
    /// Panics if construction fails (cannot happen with a floorplan that
    /// matches the power/leakage vectors).
    pub fn with_tec(
        floorplan: &Floorplan,
        config: &PackageConfig,
        dynamic_power: Vec<f64>,
        leakage: &LeakageModel,
    ) -> Self {
        let dep = TecDeployment::tile_except(
            floorplan,
            config.die_dims,
            TecDeviceParams::superlattice_thin_film(),
            &["Icache", "Dcache"],
        );
        match Self::new(
            floorplan,
            config,
            CoolingConfig::HybridTec(dep),
            dynamic_power,
            leakage,
        ) {
            Ok(model) => model,
            // oftec-lint: allow(L006, documented panicking constructor; the deployment recipe is consistent by construction)
            Err(e) => panic!("consistent inputs: {e}"),
        }
    }

    /// Convenience: the paper's fan-only baseline (fairness-boosted TIM1).
    ///
    /// # Panics
    ///
    /// Panics if construction fails (cannot happen with a floorplan that
    /// matches the power/leakage vectors).
    pub fn fan_only(
        floorplan: &Floorplan,
        config: &PackageConfig,
        dynamic_power: Vec<f64>,
        leakage: &LeakageModel,
    ) -> Self {
        match Self::new(
            floorplan,
            config,
            CoolingConfig::FanOnly {
                equivalent_tec: TecDeviceParams::superlattice_thin_film(),
            },
            dynamic_power,
            leakage,
        ) {
            Ok(model) => model,
            // oftec-lint: allow(L006, documented panicking constructor; the fan-only recipe is consistent by construction)
            Err(e) => panic!("consistent inputs: {e}"),
        }
    }

    /// The package configuration.
    pub fn config(&self) -> &PackageConfig {
        &self.config
    }

    /// Returns `true` if the model has active TECs.
    pub fn has_tec(&self) -> bool {
        self.tec.is_some()
    }

    /// Unit names in floorplan order (matches
    /// [`ThermalSolution::unit_max_temperatures`]).
    pub fn unit_names(&self) -> &[String] {
        &self.unit_names
    }

    /// Total node count of the network (diagnostics).
    pub fn node_count(&self) -> usize {
        self.network.n_nodes
    }

    /// Names of the package layers, bottom to top (e.g. `pcb`, `chip`,
    /// `tim1`, `tec_abs`, …, `sink`).
    pub fn layer_names(&self) -> Vec<&str> {
        self.network
            .layers
            .iter()
            .map(|l| l.spec.name.as_str())
            .collect()
    }

    /// Node range `(start, len)` of the named layer in the solution's
    /// [`crate::ThermalSolution::node_temperatures`] vector, or `None` for
    /// an unknown layer.
    ///
    /// # Examples
    ///
    /// ```
    /// # use oftec_floorplan::alpha21264;
    /// # use oftec_power::{Benchmark, McpatBudget};
    /// # use oftec_thermal::{HybridCoolingModel, OperatingPoint, PackageConfig};
    /// # use oftec_units::{AngularVelocity, Current};
    /// # let fp = alpha21264();
    /// # let cfg = PackageConfig::dac14_coarse();
    /// # let dyn_p = Benchmark::Crc32.max_dynamic_power(&fp).unwrap();
    /// # let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    /// let model = HybridCoolingModel::with_tec(&fp, &cfg, dyn_p, &leak);
    /// let sol = model
    ///     .solve(OperatingPoint::new(
    ///         AngularVelocity::from_rpm(3000.0),
    ///         Current::from_amperes(1.0),
    ///     ))
    ///     .unwrap();
    /// let (start, len) = model.layer_range("sink").unwrap();
    /// let sink = &sol.node_temperatures()[start..start + len];
    /// // The sink sits between ambient and the chip.
    /// assert!(sink.iter().all(|&t| t > 318.0 && t < 360.0));
    /// ```
    pub fn layer_range(&self, name: &str) -> Option<(usize, usize)> {
        self.network
            .layers
            .iter()
            .find(|l| l.spec.name == name)
            .map(|l| (l.start, l.cells()))
    }

    /// Total dynamic power injected into the chip layer.
    pub fn total_dynamic_power(&self) -> Power {
        Power::from_watts(self.dyn_power.iter().sum())
    }

    /// The per-cell linearized leakage currently baked into the default
    /// solve path.
    pub(crate) fn cell_leak(&self) -> &[CellLeak] {
        &self.cell_leak
    }

    /// The per-cell exponential leakage models (ground truth).
    pub(crate) fn cell_leak_exp(&self) -> &[ExponentialLeakage] {
        &self.cell_leak_exp
    }

    pub(crate) fn network(&self) -> &Network {
        &self.network
    }

    /// The cached assembly skeleton (shared by the steady and transient
    /// solve paths).
    pub(crate) fn skeleton(&self) -> &AssemblySkeleton {
        &self.skeleton
    }

    /// Per-chip-cell dynamic power (W).
    pub(crate) fn dyn_power_slice(&self) -> &[f64] {
        &self.dyn_power
    }

    /// Distributes a per-unit power sample into chip cells (W per cell).
    pub(crate) fn distribute_unit_power(&self, unit_powers: &[f64]) -> Vec<f64> {
        self.gridmap.distribute(unit_powers)
    }

    /// Folds the TEC operating point into the matrix diagonal and RHS:
    /// `+α·I` on absorption nodes, `−α·I` on rejection nodes (Eqs. (5)–(6)
    /// moved to the left-hand side), `R·I²` injected at generation nodes.
    pub(crate) fn fold_tec_into(
        &self,
        triplets: &mut oftec_linalg::Triplets,
        rhs: &mut [f64],
        i_tec: f64,
    ) {
        if let Some(tec) = &self.tec {
            // oftec-lint: allow(L004, TEC-off operating points carry an exact 0.0 current)
            if i_tec != 0.0 {
                for cell in 0..self.chip_cells {
                    let alpha = tec.alpha_cell[cell];
                    // oftec-lint: allow(L004, cells outside the deployment have exactly zero Seebeck share)
                    if alpha == 0.0 {
                        continue;
                    }
                    triplets.push(tec.abs_start + cell, tec.abs_start + cell, alpha * i_tec);
                    triplets.push(tec.rej_start + cell, tec.rej_start + cell, -alpha * i_tec);
                    rhs[tec.gen_start + cell] += tec.r_cell[cell] * i_tec * i_tec;
                }
            }
        }
    }

    /// In-place counterpart of [`HybridCoolingModel::fold_tec_into`] for
    /// skeleton-assembled matrices: the same Peltier diagonal terms and
    /// Joule RHS injection, written through the cached diagonal indices.
    pub(crate) fn fold_tec_in_place(&self, values: &mut [f64], rhs: &mut [f64], i_tec: f64) {
        if let Some(tec) = &self.tec {
            // oftec-lint: allow(L004, TEC-off operating points carry an exact 0.0 current)
            if i_tec != 0.0 {
                for cell in 0..self.chip_cells {
                    let alpha = tec.alpha_cell[cell];
                    // oftec-lint: allow(L004, cells outside the deployment have exactly zero Seebeck share)
                    if alpha == 0.0 {
                        continue;
                    }
                    values[self.skeleton.diag_index(tec.abs_start + cell)] += alpha * i_tec;
                    values[self.skeleton.diag_index(tec.rej_start + cell)] += -alpha * i_tec;
                    rhs[tec.gen_start + cell] += tec.r_cell[cell] * i_tec * i_tec;
                }
            }
        }
    }

    pub(crate) fn chip_range(&self) -> (usize, usize) {
        (self.chip_start, self.chip_cells)
    }

    /// Validates an operating point against the physical bounds
    /// (constraints (16)–(17) of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidOperatingPoint`] on violation.
    pub fn validate_operating_point(&self, op: OperatingPoint) -> Result<(), ThermalError> {
        let w = op.fan_speed.rad_per_s();
        let w_max = self.config.fan.omega_max.rad_per_s();
        if !w.is_finite() || w < -1e-9 || w > w_max * (1.0 + 1e-9) {
            return Err(ThermalError::InvalidOperatingPoint(format!(
                "fan speed {w:.3} rad/s outside [0, {w_max:.3}]"
            )));
        }
        let i = op.tec_current.amperes();
        match &self.tec {
            Some(t) => {
                let i_max = t.max_current.amperes();
                if !i.is_finite() || i < -1e-9 || i > i_max * (1.0 + 1e-9) {
                    return Err(ThermalError::InvalidOperatingPoint(format!(
                        "TEC current {i:.3} A outside [0, {i_max:.3}]"
                    )));
                }
            }
            None => {
                // oftec-lint: allow(L004, a fan-only stack rejects only a truly nonzero TEC current)
                if i != 0.0 {
                    return Err(ThermalError::InvalidOperatingPoint(
                        "fan-only model cannot drive a TEC current".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Stability margin of the operating point: the smallest eigenvalue
    /// (W/K) of the folded network matrix. Positive values mean a stable
    /// steady state exists, with the magnitude measuring the distance to
    /// the thermal-runaway boundary (λ_min → 0 as the leakage feedback
    /// consumes the package's conductance; `None` = already past it).
    ///
    /// This is the spectral formalization of the "dark red region" of the
    /// paper's Figure 6(a)(b).
    pub fn runaway_margin(&self, op: OperatingPoint) -> Option<f64> {
        self.validate_operating_point(op).ok()?;
        let fan_g = self.config.fan.conductance(op.fan_speed).w_per_k();
        let (mut matrix, mut rhs) = self.skeleton.assemble(fan_g);
        {
            let values = matrix.values_mut();
            for (cell, lk) in self.cell_leak.iter().enumerate() {
                values[self.skeleton.diag_index(self.chip_start + cell)] += -lk.a;
            }
        }
        self.fold_tec_in_place(matrix.values_mut(), &mut rhs, op.tec_current.amperes());
        if self.skeleton.diagonal_of(&matrix).iter().any(|&d| d <= 0.0) {
            return None;
        }
        oftec_linalg::smallest_eigenvalue(&matrix, &oftec_linalg::EigenParams::default())
            .ok()
            .map(|(lambda, _)| lambda)
            .filter(|l| *l > 0.0)
    }

    /// Solves the steady state at `op` with the paper's linearized leakage
    /// (the default OFTEC path).
    ///
    /// # Errors
    ///
    /// - [`ThermalError::Runaway`] when no (physical) steady state exists,
    /// - [`ThermalError::InvalidOperatingPoint`] on bound violations,
    /// - [`ThermalError::Solver`] on unrelated numerical failure.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError> {
        self.validate_operating_point(op)?;
        self.solve_default(op, None)
    }

    /// Like [`HybridCoolingModel::solve`], but warm-starting the CG
    /// iteration from a previous node-temperature state (e.g. the
    /// [`ThermalSolution::node_temperatures`] of a neighboring operating
    /// point). Sweeps that chain solves along one axis converge in a few
    /// iterations per point instead of starting from scratch.
    ///
    /// # Errors
    ///
    /// Same as [`HybridCoolingModel::solve`]; additionally
    /// [`ThermalError::Config`] if `initial` has the wrong length.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        self.validate_operating_point(op)?;
        if let Some(init) = initial {
            if init.len() != self.network.n_nodes {
                return Err(ThermalError::Config(format!(
                    "warm start has {} nodes, expected {}",
                    init.len(),
                    self.network.n_nodes
                )));
            }
            if !init.iter().all(|t| t.is_finite()) {
                return Err(ThermalError::NonFinite(
                    "warm-start temperature state".into(),
                ));
            }
        }
        self.solve_default(op, initial)
    }

    /// Fused steady solve for the default (paper-linearized) leakage: the
    /// chip terms were folded into the skeleton at construction, so each
    /// call is a value-array `memcpy` plus the fan and TEC folds — no
    /// per-cell chip loop. Produces bit-identical systems to
    /// [`HybridCoolingModel::solve_linearized`] with `self.cell_leak`
    /// (the folded node sets are disjoint).
    pub(crate) fn solve_default(
        &self,
        op: OperatingPoint,
        warm_start: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        let (matrix, rhs) = self.assemble_steady_system(op)?;
        let diag = self.skeleton.diagonal_of(&matrix);
        self.finish_steady_solve(op, &matrix, &rhs, &diag, &self.cell_leak, warm_start, true)
    }

    /// Assembles the fully folded steady system (fan + TEC + fused chip
    /// constants) at `op` without solving it. The reduced-order build uses
    /// this for its snapshot systems.
    pub(crate) fn assemble_steady_system(
        &self,
        op: OperatingPoint,
    ) -> Result<(CsrMatrix, Vec<f64>), ThermalError> {
        let fan_g = self.config.fan.conductance(op.fan_speed).w_per_k();
        if !fan_g.is_finite() || fan_g < 0.0 {
            return Err(ThermalError::NonFinite(format!(
                "fan conductance {fan_g} W/K at {:.1} RPM",
                op.fan_speed.rpm()
            )));
        }
        let (mut matrix, mut rhs) = self.skeleton.assemble_steady(fan_g);
        self.fold_tec_in_place(matrix.values_mut(), &mut rhs, op.tec_current.amperes());
        Ok((matrix, rhs))
    }

    /// The TEC folding bookkeeping, if this model has TECs.
    pub(crate) fn tec_folding(&self) -> Option<&TecFolding> {
        self.tec.as_ref()
    }

    /// Reference solve that reassembles the triplet list and re-sorts it
    /// into CSR at every call — the pre-skeleton behavior. Kept as the
    /// baseline for the `sweep_scaling` benchmark and as a cross-check
    /// that the cached path assembles the same system.
    ///
    /// # Errors
    ///
    /// Same as [`HybridCoolingModel::solve`].
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve_reference(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError> {
        self.validate_operating_point(op)?;
        let fan_g = self.config.fan.conductance(op.fan_speed).w_per_k();
        let t_amb = self.config.ambient.kelvin();
        let leak = &self.cell_leak;

        let mut triplets = self.network.conductance_triplets(fan_g);
        let mut rhs = self.network.ambient_rhs(fan_g, t_amb);
        for (cell, lk) in leak.iter().enumerate() {
            let node = self.chip_start + cell;
            triplets.push(node, node, -lk.a);
            rhs[node] += self.dyn_power[cell] + lk.b - lk.a * lk.t_ref;
        }
        self.fold_tec_into(&mut triplets, &mut rhs, op.tec_current.amperes());
        let matrix = triplets.to_csr();
        let diag = matrix.diagonal();
        self.finish_steady_solve(op, &matrix, &rhs, &diag, leak, None, false)
    }

    /// Core linearized solve: folds the operating point and the given
    /// per-cell leakage lines into a scratch copy of the cached skeleton
    /// and solves by CG.
    pub(crate) fn solve_linearized(
        &self,
        op: OperatingPoint,
        leak: &[CellLeak],
        warm_start: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        let fan_g = self.config.fan.conductance(op.fan_speed).w_per_k();
        let i_tec = op.tec_current.amperes();
        if !fan_g.is_finite() || fan_g < 0.0 {
            return Err(ThermalError::NonFinite(format!(
                "fan conductance {fan_g} W/K at {:.1} RPM",
                op.fan_speed.rpm()
            )));
        }

        let (mut matrix, mut rhs) = self.skeleton.assemble(fan_g);

        // Chip layer: dynamic power + linearized leakage.
        {
            let values = matrix.values_mut();
            for (cell, lk) in leak.iter().enumerate() {
                let node = self.chip_start + cell;
                values[self.skeleton.diag_index(node)] += -lk.a;
                rhs[node] += self.dyn_power[cell] + lk.b - lk.a * lk.t_ref;
            }
        }

        // TEC sub-layers: Peltier feedback on the diagonals, Joule
        // generation on the RHS (Figure 4 / Eqs. (5)–(7)).
        self.fold_tec_in_place(matrix.values_mut(), &mut rhs, i_tec);

        let diag = self.skeleton.diagonal_of(&matrix);
        self.finish_steady_solve(op, &matrix, &rhs, &diag, leak, warm_start, true)
    }

    /// Shared back half of the steady solves: runaway screen,
    /// preconditioned CG, physical classification, solution packaging.
    ///
    /// `use_ilu` selects the preconditioner: the cached path factors the
    /// folded matrix with ILU(0) — for this SPD, diagonally dominant
    /// network matrix that is an incomplete Cholesky factorization, which
    /// cuts the CG iteration count by roughly an order of magnitude — and
    /// falls back to Jacobi if the factorization breaks down (a TEC fold
    /// can weaken diagonal dominance to a zero pivot). The reference path
    /// keeps plain Jacobi: it is the defined pre-skeleton baseline for the
    /// `sweep_scaling` benchmark.
    #[allow(clippy::too_many_arguments)]
    fn finish_steady_solve(
        &self,
        op: OperatingPoint,
        matrix: &CsrMatrix,
        rhs: &[f64],
        diag: &[f64],
        leak: &[CellLeak],
        warm_start: Option<&[f64]>,
        use_ilu: bool,
    ) -> Result<ThermalSolution, ThermalError> {
        let n = self.network.n_nodes;
        let _span = telemetry::span("thermal.solve");
        telemetry::counter_add("thermal.solves", 1);

        // Fast runaway screen: any non-positive diagonal certifies the
        // folded (symmetric) matrix is not positive definite.
        if diag.iter().any(|&d| d <= 0.0) {
            telemetry::counter_add("thermal.runaway", 1);
            return Err(ThermalError::Runaway(
                "non-positive diagonal in the folded network matrix",
            ));
        }

        let precond: Box<dyn Preconditioner> = if use_ilu {
            folded_preconditioner(matrix, diag)?
        } else {
            Box::new(JacobiPreconditioner::from_diagonal(diag).map_err(ThermalError::from)?)
        };
        let params = IterativeParams {
            rtol: 1e-10,
            atol: 1e-12,
            max_iter: 20 * n,
        };
        let summary = match solve_cg(matrix, rhs, warm_start, precond.as_ref(), &params) {
            Ok(summary) => summary,
            Err(oftec_linalg::LinalgError::NotConverged { iterations, .. }) if use_ilu => {
                // Degradation chain, second rung: a stalled ILU(0)-CG run
                // (near-breakdown pivots can produce a weak factorization)
                // is retried cold with the plain Jacobi preconditioner
                // before giving up — same surfacing discipline as the
                // preconditioner fallback above.
                telemetry::counter_add("thermal.cg_retry", 1);
                telemetry::event(
                    telemetry::Severity::Warn,
                    "thermal.cg_retry",
                    &[
                        ("from", telemetry::Field::Str("ilu0")),
                        ("to", telemetry::Field::Str("jacobi")),
                        ("iterations", telemetry::Field::U64(iterations as u64)),
                    ],
                );
                let jacobi =
                    JacobiPreconditioner::from_diagonal(diag).map_err(ThermalError::from)?;
                solve_cg(matrix, rhs, None, &jacobi, &params).map_err(ThermalError::from)?
            }
            Err(e) => return Err(ThermalError::from(e)),
        };
        let temps = summary.x;

        // Physical classification.
        let cap = self.config.runaway_cap.kelvin();
        if temps.iter().any(|t| !t.is_finite()) {
            telemetry::counter_add("thermal.runaway", 1);
            return Err(ThermalError::Runaway("non-finite temperatures"));
        }
        if temps.iter().any(|&t| t > cap) {
            telemetry::counter_add("thermal.runaway", 1);
            return Err(ThermalError::Runaway("temperatures beyond the runaway cap"));
        }
        if temps.iter().any(|&t| t < 150.0) {
            return Err(ThermalError::Solver(oftec_linalg::LinalgError::Breakdown(
                "unphysically cold solution",
            )));
        }

        Ok(self.package_solution(op, temps, leak, summary.iterations))
    }

    /// Builds the public solution object: power accounting + reductions.
    pub(crate) fn package_solution(
        &self,
        op: OperatingPoint,
        temps: Vec<f64>,
        leak: &[CellLeak],
        iterations: usize,
    ) -> ThermalSolution {
        let chip_temps = &temps[self.chip_start..self.chip_start + self.chip_cells];

        let leakage_w: f64 = leak
            .iter()
            .zip(chip_temps)
            .map(|(lk, &t)| lk.a * (t - lk.t_ref) + lk.b)
            .sum();

        let i = op.tec_current.amperes();
        let tec_w: f64 = match &self.tec {
            // oftec-lint: allow(L004, TEC-off operating points carry an exact 0.0 current)
            Some(tec) if i != 0.0 => (0..self.chip_cells)
                .map(|cell| {
                    let alpha = tec.alpha_cell[cell];
                    // oftec-lint: allow(L004, cells outside the deployment have exactly zero Seebeck share)
                    if alpha == 0.0 {
                        return 0.0;
                    }
                    let dt = temps[tec.rej_start + cell] - temps[tec.abs_start + cell];
                    alpha * dt * i + tec.r_cell[cell] * i * i
                })
                .sum(),
            _ => 0.0,
        };

        let breakdown = PowerBreakdown {
            leakage: Power::from_watts(leakage_w),
            tec: Power::from_watts(tec_w),
            fan: self.config.fan.power(op.fan_speed),
        };
        let unit_max = self.gridmap.unit_max(chip_temps);
        ThermalSolution::new(
            temps,
            self.chip_start,
            self.chip_cells,
            unit_max,
            breakdown,
            iterations,
        )
    }
}

/// Strongest available preconditioner for a folded network matrix: ILU(0)
/// — which for this symmetric positive-definite, diagonally dominant
/// system coincides with an incomplete Cholesky factorization — with a
/// Jacobi fallback if the factorization hits a zero pivot (a strong TEC
/// fold can erode diagonal dominance near the runaway boundary).
pub(crate) fn folded_preconditioner(
    matrix: &CsrMatrix,
    diag: &[f64],
) -> Result<Box<dyn Preconditioner>, ThermalError> {
    match Ilu0Preconditioner::new(matrix) {
        Ok(ic) => {
            telemetry::counter_add("precond.ilu0", 1);
            Ok(Box::new(ic))
        }
        Err(e) => {
            // This degradation used to be silent; surface it — Jacobi
            // typically costs ~10× the CG iterations on these networks.
            telemetry::counter_add("precond.jacobi_fallback", 1);
            telemetry::event(
                telemetry::Severity::Warn,
                "precond.fallback",
                &[
                    ("from", telemetry::Field::Str("ilu0")),
                    ("to", telemetry::Field::Str("jacobi")),
                    ("reason", telemetry::Field::Str(&e.to_string())),
                ],
            );
            Ok(Box::new(
                JacobiPreconditioner::from_diagonal(diag).map_err(ThermalError::from)?,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_floorplan::alpha21264;
    use oftec_power::McpatBudget;

    fn uniform_power(fp: &Floorplan, total: f64) -> Vec<f64> {
        let die = fp.die_area().square_meters();
        fp.units()
            .iter()
            .map(|u| total * u.rect().area().square_meters() / die)
            .collect()
    }

    fn leakage(fp: &Floorplan) -> LeakageModel {
        McpatBudget::alpha21264_22nm().distribute(fp)
    }

    fn rpm(v: f64) -> AngularVelocity {
        AngularVelocity::from_rpm(v)
    }

    fn amps(v: f64) -> Current {
        Current::from_amperes(v)
    }

    #[test]
    fn zero_power_die_sits_at_ambient() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        // No dynamic power and (essentially) no leakage.
        let tiny = McpatBudget {
            total_at_ref: Power::from_watts(1e-9),
            ..McpatBudget::alpha21264_22nm()
        }
        .distribute(&fp);
        let model = HybridCoolingModel::fan_only(&fp, &cfg, uniform_power(&fp, 0.0), &tiny);
        let sol = model.solve(OperatingPoint::fan_only(rpm(2000.0))).unwrap();
        let t = sol.max_chip_temperature();
        assert!(
            (t.kelvin() - cfg.ambient.kelvin()).abs() < 0.01,
            "expected ambient, got {t}"
        );
    }

    #[test]
    fn energy_balance_without_tec() {
        // All injected power must leave through the two ambient paths:
        // Σ g_amb,i (T_i − T_amb) = P_total.
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::fan_only(&fp, &cfg, uniform_power(&fp, 25.0), &leakage(&fp));
        let op = OperatingPoint::fan_only(rpm(3000.0));
        let sol = model.solve(op).unwrap();
        let temps = sol.node_temperatures();
        let fan_g = cfg.fan.conductance(op.fan_speed).w_per_k();
        let net = model.network();
        let mut outflow = 0.0;
        for &(i, g) in &net.ambient_const {
            outflow += g * (temps[i] - cfg.ambient.kelvin());
        }
        for &(i, share) in &net.ambient_fan {
            outflow += share * fan_g * (temps[i] - cfg.ambient.kelvin());
        }
        let injected = 25.0 + sol.breakdown().leakage.watts();
        assert!(
            (outflow - injected).abs() < 1e-6 * injected,
            "outflow {outflow} vs injected {injected}"
        );
    }

    #[test]
    fn energy_balance_with_tec() {
        // With TECs, the network also absorbs the TEC electrical power.
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, uniform_power(&fp, 25.0), &leakage(&fp));
        let op = OperatingPoint::new(rpm(3000.0), amps(1.5));
        let sol = model.solve(op).unwrap();
        let temps = sol.node_temperatures();
        let fan_g = cfg.fan.conductance(op.fan_speed).w_per_k();
        let net = model.network();
        let mut outflow = 0.0;
        for &(i, g) in &net.ambient_const {
            outflow += g * (temps[i] - cfg.ambient.kelvin());
        }
        for &(i, share) in &net.ambient_fan {
            outflow += share * fan_g * (temps[i] - cfg.ambient.kelvin());
        }
        let injected = 25.0 + sol.breakdown().leakage.watts() + sol.breakdown().tec.watts();
        assert!(
            (outflow - injected).abs() < 1e-6 * injected.abs().max(1.0),
            "outflow {outflow} vs injected {injected}"
        );
    }

    #[test]
    fn more_fan_is_cooler() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::fan_only(&fp, &cfg, uniform_power(&fp, 30.0), &leakage(&fp));
        let slow = model
            .solve(OperatingPoint::fan_only(rpm(1500.0)))
            .unwrap()
            .max_chip_temperature();
        let fast = model
            .solve(OperatingPoint::fan_only(rpm(5000.0)))
            .unwrap()
            .max_chip_temperature();
        assert!(fast < slow);
    }

    /// Realistic core-heavy power: 60% in the execution cluster, the rest
    /// spread by area. TECs cover only the non-cache region, so tests of
    /// TEC *cooling* must put the hot spot under TEC coverage (with
    /// uniform power the hottest cells can sit in the uncovered caches,
    /// which TEC power only heats — physically correct but not what these
    /// tests probe).
    fn core_heavy_power(fp: &Floorplan, total: f64) -> Vec<f64> {
        let mut p = uniform_power(fp, 0.4 * total);
        let exec = fp.unit_index("IntExec").unwrap();
        p[exec] += 0.45 * total;
        let fpmul = fp.unit_index("FPMul").unwrap();
        p[fpmul] += 0.15 * total;
        p
    }

    #[test]
    fn moderate_tec_current_cools_the_die() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, core_heavy_power(&fp, 30.0), &leakage(&fp));
        let passive = model
            .solve(OperatingPoint::new(rpm(3000.0), amps(0.0)))
            .unwrap()
            .max_chip_temperature();
        let active = model
            .solve(OperatingPoint::new(rpm(3000.0), amps(1.5)))
            .unwrap()
            .max_chip_temperature();
        assert!(
            active < passive,
            "TEC at 1.5 A did not cool: {active} vs {passive}"
        );
    }

    #[test]
    fn excessive_current_heats_the_die() {
        // Joule heating quadratic vs Peltier linear: far past the optimum,
        // more current makes things worse (the paper's "too much current"
        // regime).
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, core_heavy_power(&fp, 30.0), &leakage(&fp));
        let at = |i: f64| {
            model
                .solve(OperatingPoint::new(rpm(4000.0), amps(i)))
                .unwrap()
                .max_chip_temperature()
                .kelvin()
        };
        let t2 = at(2.0);
        let t5 = at(5.0);
        assert!(t5 > t2, "5 A ({t5} K) should be hotter than 2 A ({t2} K)");
    }

    #[test]
    fn still_air_runs_away() {
        // ω = 0 with a hot workload: leakage feedback has no escape path —
        // the TEC-only configuration of the paper, which always fails.
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, uniform_power(&fp, 35.0), &leakage(&fp));
        let err = model
            .solve(OperatingPoint::new(AngularVelocity::ZERO, amps(2.0)))
            .unwrap_err();
        assert!(err.is_runaway(), "expected runaway, got {err}");
    }

    #[test]
    fn operating_point_validation() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, uniform_power(&fp, 10.0), &leakage(&fp));
        assert!(model
            .solve(OperatingPoint::new(rpm(6000.0), amps(1.0)))
            .is_err());
        assert!(model
            .solve(OperatingPoint::new(rpm(2000.0), amps(9.0)))
            .is_err());
        let fan_model =
            HybridCoolingModel::fan_only(&fp, &cfg, uniform_power(&fp, 10.0), &leakage(&fp));
        assert!(fan_model
            .solve(OperatingPoint::new(rpm(2000.0), amps(1.0)))
            .is_err());
    }

    #[test]
    fn construction_validation() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let err = HybridCoolingModel::new(
            &fp,
            &cfg,
            CoolingConfig::FanOnlyPlainTim {
                total_gap: cfg.tim1_thickness,
            },
            vec![1.0; 3], // wrong length
            &leakage(&fp),
        )
        .unwrap_err();
        assert!(matches!(err, ThermalError::Config(_)));
    }

    #[test]
    fn hot_unit_is_hottest_on_die() {
        // Put all power in IntExec; its unit max must dominate.
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let mut dyn_p = vec![0.0; fp.units().len()];
        dyn_p[fp.unit_index("IntExec").unwrap()] = 20.0;
        let model = HybridCoolingModel::with_tec(&fp, &cfg, dyn_p, &leakage(&fp));
        let sol = model
            .solve(OperatingPoint::new(rpm(4000.0), amps(0.5)))
            .unwrap();
        let units = sol.unit_max_temperatures();
        let hottest = units
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(model.unit_names()[hottest], "IntExec");
    }

    #[test]
    fn runaway_margin_shrinks_toward_the_boundary() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, uniform_power(&fp, 30.0), &leakage(&fp));
        let at = |rpm_v: f64| model.runaway_margin(OperatingPoint::new(rpm(rpm_v), amps(1.0)));
        let healthy = at(4000.0).expect("healthy point has a margin");
        let risky = at(300.0).expect("still stable at 300 RPM");
        assert!(
            healthy > risky,
            "margin must shrink as ω drops: {healthy} vs {risky}"
        );
        // Past the boundary there is no margin.
        assert!(at(2.0).is_none(), "still air must have no margin");
    }

    #[test]
    fn warm_start_agrees_with_cold_start() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, uniform_power(&fp, 20.0), &leakage(&fp));
        let op = OperatingPoint::new(rpm(2500.0), amps(1.0));
        let cold = model.solve(op).unwrap();
        let warm = model
            .solve_linearized(op, model.cell_leak(), Some(cold.node_temperatures()))
            .unwrap();
        assert!(warm.solver_iterations() <= 2);
        assert!(
            (warm.max_chip_temperature().kelvin() - cold.max_chip_temperature().kelvin()).abs()
                < 1e-6
        );
    }

    #[test]
    fn solve_from_rejects_wrong_length_warm_start() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, uniform_power(&fp, 20.0), &leakage(&fp));
        let op = OperatingPoint::new(rpm(2500.0), amps(1.0));
        let err = model.solve_from(op, Some(&[300.0; 3])).unwrap_err();
        assert!(matches!(err, ThermalError::Config(_)));
        // A correct-length warm start is accepted.
        let cold = model.solve(op).unwrap();
        assert!(model.solve_from(op, Some(cold.node_temperatures())).is_ok());
    }

    #[test]
    fn jacobi_fallback_is_counted() {
        // Eliminating row 1 of this matrix zeroes U(1,1); row 2 then needs
        // it as a pivot, so ILU(0) breaks down — but the diagonal is all
        // ones, a valid Jacobi preconditioner. Exactly the
        // silent-degradation path that must now be recorded.
        let mut t = oftec_linalg::Triplets::new(3, 3);
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 1), (2, 2)] {
            t.push(r, c, 1.0);
        }
        let singular = t.to_csr();
        let mut t = oftec_linalg::Triplets::new(2, 2);
        t.push(0, 0, 4.0);
        t.push(1, 1, 2.0);
        let spd = t.to_csr();

        telemetry::set_collecting(true);
        let (result, buf) = telemetry::capture(|| {
            folded_preconditioner(&singular, &[1.0, 1.0, 1.0]).unwrap();
            folded_preconditioner(&spd, &[4.0, 2.0]).unwrap();
        });
        let () = result;
        assert_eq!(buf.counter("precond.jacobi_fallback"), 1);
        assert_eq!(buf.counter("precond.ilu0"), 1);
    }

    #[test]
    fn cached_assembly_matches_reference_path() {
        let fp = alpha21264();
        let cfg = PackageConfig::dac14_coarse();
        let model =
            HybridCoolingModel::with_tec(&fp, &cfg, uniform_power(&fp, 25.0), &leakage(&fp));
        for (omega, current) in [(1000.0, 0.0), (2500.0, 1.0), (4000.0, 2.5)] {
            let op = OperatingPoint::new(rpm(omega), amps(current));
            let cached = model.solve(op).unwrap();
            let reference = model.solve_reference(op).unwrap();
            for (a, b) in cached
                .node_temperatures()
                .iter()
                .zip(reference.node_temperatures())
            {
                assert!(
                    (a - b).abs() < 1e-6,
                    "cached {a} vs reference {b} at ω={omega}, I={current}"
                );
            }
        }
    }
}
