//! Per-thread solve-path probe for request-scoped tracing.
//!
//! The serving engine needs to know, per request, whether a solve took
//! the reduced path, fell back to the full path, and what the certified
//! residual ratio was — without the thermal crate knowing anything about
//! requests. The probe is a thread-local set of monotone counters that
//! the reduced-solve machinery bumps as it runs; the caller reads a
//! [`snapshot`] before and after a solve and attributes the delta to that
//! request. No clocks, no locks, no atomics: a `Cell` per thread keeps
//! this clock-free (the thermal crate is on the lint wall-clock denylist)
//! and bit-identical at any `OFTEC_THREADS` — the executor runs each work
//! item on exactly one worker thread, so before/after deltas never mix
//! items.

use std::cell::Cell;

/// Monotone per-thread counts of solve-path events. Obtain with
/// [`snapshot`] and subtract field-wise to attribute events to one solve.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveProbe {
    /// Reduced-order solves whose residual certificate passed.
    pub reduced: u64,
    /// Reduced attempts that failed certification and fell back.
    pub fallbacks: u64,
    /// Residual-ratio observations (one per certified reduced solve).
    pub residual_events: u64,
    /// Most recent certified residual ratio `‖r‖ / max(‖b‖, ε)`.
    pub last_residual: f64,
}

thread_local! {
    static PROBE: Cell<SolveProbe> = const { Cell::new(SolveProbe::new()) };
}

impl SolveProbe {
    const fn new() -> Self {
        Self {
            reduced: 0,
            fallbacks: 0,
            residual_events: 0,
            last_residual: 0.0,
        }
    }

    /// Field-wise counter delta `self - earlier` (for the monotone
    /// counts; `last_residual` is carried from `self`).
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            reduced: self.reduced.wrapping_sub(earlier.reduced),
            fallbacks: self.fallbacks.wrapping_sub(earlier.fallbacks),
            residual_events: self.residual_events.wrapping_sub(earlier.residual_events),
            last_residual: self.last_residual,
        }
    }
}

/// This thread's current probe counters.
pub fn snapshot() -> SolveProbe {
    PROBE.with(Cell::get)
}

/// Records one certified reduced solve with residual ratio `ratio`.
pub(crate) fn note_reduced(ratio: f64) {
    PROBE.with(|p| {
        let mut v = p.get();
        v.reduced += 1;
        v.residual_events += 1;
        v.last_residual = ratio;
        p.set(v);
    });
}

/// Records one reduced-solve certification failure (full-path fallback).
pub(crate) fn note_fallback() {
    PROBE.with(|p| {
        let mut v = p.get();
        v.fallbacks += 1;
        p.set(v);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_attribute_events_between_snapshots() {
        let before = snapshot();
        note_reduced(1.5e-6);
        note_reduced(2.5e-6);
        note_fallback();
        let delta = snapshot().since(&before);
        assert_eq!(delta.reduced, 2);
        assert_eq!(delta.fallbacks, 1);
        assert_eq!(delta.residual_events, 2);
        assert!((delta.last_residual - 2.5e-6).abs() < 1e-18);
    }

    #[test]
    fn probe_is_thread_local() {
        note_reduced(9.0);
        let other = std::thread::spawn(snapshot).join().unwrap_or_default();
        assert_eq!(other.reduced, 0, "fresh thread starts at zero");
    }
}
