//! The forced-convection cooler: fan power law and the speed-dependent
//! heat-sink conductance — Eqs. (8) and (9) of the paper.

use oftec_units::{AngularVelocity, Power, ThermalConductance};

/// Fan and heat-sink aggregate model.
///
/// - `P_fan = c·ω³` (Eq. (8), laminar regime) with `c` in J·s²;
/// - `g_HS&fan(ω) = p·ln(q·ω) + r` (Eq. (9), HotSpot-5 curve fit),
///   clamped below by the still-air heat-sink conductance `g_HS`.
///
/// # Examples
///
/// ```
/// use oftec_thermal::FanModel;
/// use oftec_units::AngularVelocity;
///
/// let fan = FanModel::dac14();
/// let w = AngularVelocity::from_rpm(2000.0);
/// assert!(fan.conductance(w).w_per_k() > 4.0);
/// assert!(fan.power(w).watts() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FanModel {
    /// Cubic power-law constant `c` (J·s²).
    pub c: f64,
    /// Logarithmic fit slope `p` (W/K).
    pub p: f64,
    /// Dimensional normalizer `q` (s); the paper sets it to 1 s.
    pub q: f64,
    /// Logarithmic fit offset `r` (W/K).
    pub r: f64,
    /// Still-air heat-sink conductance `g_HS` (W/K), the floor of Eq. (9).
    pub g_hs_still: f64,
    /// Physical speed limit `ω_max`.
    pub omega_max: AngularVelocity,
}

impl FanModel {
    /// The constants the paper uses in §6.1:
    /// `c = 1.6e-7 J·s²` (from its reference \[11\]), `p = 0.97`, `q = 1 s`,
    /// `r = −0.25`, `g_HS = 0.525 W/K`, `ω_max = 5000 RPM`.
    pub fn dac14() -> Self {
        Self {
            c: 1.6e-7,
            p: 0.97,
            q: 1.0,
            r: -0.25,
            g_hs_still: 0.525,
            omega_max: AngularVelocity::from_rpm(5000.0),
        }
    }

    /// Fan power `c·ω³` (Eq. (8)).
    pub fn power(&self, omega: AngularVelocity) -> Power {
        omega.fan_power(self.c)
    }

    /// Combined heat-sink + fan conductance to ambient (Eq. (9)), clamped
    /// below by the still-air value. Monotone non-decreasing in ω.
    pub fn conductance(&self, omega: AngularVelocity) -> ThermalConductance {
        let w = omega.rad_per_s();
        let fitted = if w > 0.0 {
            self.p * (self.q * w).ln() + self.r
        } else {
            f64::NEG_INFINITY
        };
        ThermalConductance::from_w_per_k(fitted.max(self.g_hs_still))
    }

    /// The speed below which Eq. (9) is clamped to the still-air
    /// conductance.
    pub fn clamp_speed(&self) -> AngularVelocity {
        AngularVelocity::from_rad_per_s(((self.g_hs_still - self.r) / self.p).exp() / self.q)
    }

    /// Validates the model: positive constants and a monotone fit.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on unphysical values.
    pub fn assert_physical(&self) {
        assert!(self.c > 0.0, "fan power constant must be positive");
        assert!(self.p > 0.0, "conductance fit slope must be positive");
        assert!(self.q > 0.0, "normalizer must be positive");
        assert!(
            self.g_hs_still > 0.0,
            "still-air conductance must be positive"
        );
        assert!(
            self.omega_max.rad_per_s() > 0.0,
            "fan speed limit must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let f = FanModel::dac14();
        f.assert_physical();
        assert_eq!(f.c, 1.6e-7);
        assert!((f.omega_max.rad_per_s() - 523.6).abs() < 0.1);
    }

    #[test]
    fn power_at_known_speeds() {
        let f = FanModel::dac14();
        // 5000 RPM = 523.6 rad/s → 1.6e-7 · 523.6³ ≈ 23.0 W.
        assert!((f.power(AngularVelocity::from_rpm(5000.0)).watts() - 22.97).abs() < 0.1);
        // 2000 RPM ≈ 209.4 rad/s → ≈ 1.47 W.
        assert!((f.power(AngularVelocity::from_rpm(2000.0)).watts() - 1.47).abs() < 0.01);
        assert_eq!(f.power(AngularVelocity::ZERO), Power::ZERO);
    }

    #[test]
    fn conductance_at_known_speeds() {
        let f = FanModel::dac14();
        // ω_max: 0.97·ln(523.6) − 0.25 ≈ 5.82 W/K.
        let g_max = f.conductance(AngularVelocity::from_rpm(5000.0));
        assert!((g_max.w_per_k() - 5.82).abs() < 0.01);
        // 2000 RPM: 0.97·ln(209.4) − 0.25 ≈ 4.93 W/K.
        let g_2k = f.conductance(AngularVelocity::from_rpm(2000.0));
        assert!((g_2k.w_per_k() - 4.93).abs() < 0.01);
    }

    #[test]
    fn still_air_clamp() {
        let f = FanModel::dac14();
        assert_eq!(f.conductance(AngularVelocity::ZERO).w_per_k(), 0.525);
        let below = f.clamp_speed() * 0.5;
        assert_eq!(f.conductance(below).w_per_k(), 0.525);
        let above = f.clamp_speed() * 2.0;
        assert!(f.conductance(above).w_per_k() > 0.525);
    }

    #[test]
    fn conductance_monotone() {
        let f = FanModel::dac14();
        let mut last = 0.0;
        for rpm in (0..=5000).step_by(100) {
            let g = f
                .conductance(AngularVelocity::from_rpm(rpm as f64))
                .w_per_k();
            assert!(g >= last);
            last = g;
        }
    }

    #[test]
    fn clamp_speed_formula() {
        let f = FanModel::dac14();
        let w = f.clamp_speed();
        let g = f.p * (f.q * w.rad_per_s()).ln() + f.r;
        assert!((g - f.g_hs_still).abs() < 1e-9);
    }
}
