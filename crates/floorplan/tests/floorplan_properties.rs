//! Property tests: random guillotine floorplans always validate, and grid
//! rasterization conserves power at any resolution.

use oftec_floorplan::{Floorplan, FunctionalUnit, GridDims, GridMap, Rect};
use oftec_units::Length;
use proptest::prelude::*;

/// Builds a random guillotine partition of the unit die: repeatedly split
/// the widest remaining rectangle at a random ratio. Always a valid tiling.
fn guillotine(splits: Vec<f64>) -> Floorplan {
    let mut rects = vec![(0.0, 0.0, 1.0e-2, 1.0e-2)];
    for (i, &ratio) in splits.iter().enumerate() {
        // Pick the largest rect to split.
        let (idx, _) = rects
            .iter()
            .enumerate()
            .max_by(|a, b| {
                let area = |r: &(f64, f64, f64, f64)| r.2 * r.3;
                area(a.1).partial_cmp(&area(b.1)).unwrap()
            })
            .unwrap();
        let (x, y, w, h) = rects.swap_remove(idx);
        if (i % 2 == 0 && w >= h) || (i % 2 != 0 && w > h) {
            let cut = w * ratio;
            rects.push((x, y, cut, h));
            rects.push((x + cut, y, w - cut, h));
        } else {
            let cut = h * ratio;
            rects.push((x, y, w, cut));
            rects.push((x, y + cut, w, h - cut));
        }
    }
    let units = rects
        .into_iter()
        .enumerate()
        .map(|(i, (x, y, w, h))| {
            FunctionalUnit::new(format!("u{i}"), Rect::from_meters(x, y, w, h))
        })
        .collect();
    Floorplan::new(
        "guillotine",
        Length::from_meters(1.0e-2),
        Length::from_meters(1.0e-2),
        units,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_guillotine_tilings_validate(
        splits in proptest::collection::vec(0.15..0.85f64, 1..12),
    ) {
        let fp = guillotine(splits);
        prop_assert!(fp.validate().is_ok(), "{:?}", fp.validate());
        prop_assert!((fp.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distribution_conserves_power_any_grid(
        splits in proptest::collection::vec(0.15..0.85f64, 1..10),
        rows in 1usize..24,
        cols in 1usize..24,
        scale in 0.1..100.0f64,
    ) {
        let fp = guillotine(splits);
        let map = GridMap::new(&fp, GridDims::new(rows, cols));
        let powers: Vec<f64> = (0..fp.units().len())
            .map(|i| scale * (1.0 + (i as f64 * 0.7).sin().abs()))
            .collect();
        let cells = map.distribute(&powers);
        let t_in: f64 = powers.iter().sum();
        let t_out: f64 = cells.iter().sum();
        prop_assert!((t_in - t_out).abs() < 1e-9 * t_in);
        // No cell can receive negative power.
        prop_assert!(cells.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn cell_coverage_sums_to_one(
        splits in proptest::collection::vec(0.2..0.8f64, 1..8),
        rows in 1usize..16,
        cols in 1usize..16,
    ) {
        let fp = guillotine(splits);
        let map = GridMap::new(&fp, GridDims::new(rows, cols));
        for cell in 0..map.dims().cells() {
            let total: f64 = map.cell_coverage(cell).iter().map(|c| c.cell_fraction).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "cell {} sums to {}", cell, total);
        }
    }

    #[test]
    fn unit_mean_bounded_by_unit_max(
        splits in proptest::collection::vec(0.2..0.8f64, 1..8),
        seed_vals in proptest::collection::vec(0.0..10.0f64, 64),
    ) {
        let fp = guillotine(splits);
        let map = GridMap::new(&fp, GridDims::new(8, 8));
        let vals: Vec<f64> = (0..64).map(|i| seed_vals[i]).collect();
        let means = map.unit_mean(&vals);
        let maxes = map.unit_max(&vals);
        for (m, x) in means.iter().zip(&maxes) {
            prop_assert!(m <= &(x + 1e-9));
        }
    }
}
