//! Die floorplans for thermal simulation.
//!
//! A [`Floorplan`] is a set of named rectangular functional units tiling a
//! die. The OFTEC evaluation targets the Alpha 21264 (15.9 × 15.9 mm die,
//! Table 1 of the paper); [`alpha21264`] provides a 15-unit floorplan in the
//! spirit of HotSpot's `ev6.flp`.
//!
//! [`GridMap`] rasterizes a floorplan onto a regular thermal grid, producing
//! the cell↔unit area-overlap weights the simulator uses to spread unit
//! power into cells and to reduce cell temperatures back to per-unit
//! figures.
//!
//! # Examples
//!
//! ```
//! use oftec_floorplan::alpha21264;
//!
//! let fp = alpha21264();
//! fp.validate().expect("tiles the die exactly");
//! assert_eq!(fp.units().len(), 15);
//! let icache = fp.unit_by_name("Icache").unwrap();
//! assert!(icache.rect().area().square_millimeters() > 20.0);
//! ```

mod alpha;
mod floorplan;
mod generator;
mod gridmap;
mod parser;
mod rect;

pub use alpha::alpha21264;
pub use floorplan::{Floorplan, FloorplanError, FunctionalUnit};
pub use generator::{grid_floorplan, multicore_floorplan};
pub use gridmap::{CellCoverage, GridDims, GridMap};
pub use parser::{parse_flp, write_flp, FlpParseError};
pub use rect::Rect;
