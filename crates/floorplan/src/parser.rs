//! Reader/writer for the HotSpot `.flp` text format.
//!
//! Each non-comment line is `<name> <width> <height> <left-x> <bottom-y>`
//! with lengths in meters, matching HotSpot's floorplan files so existing
//! floorplans can be dropped in.

use crate::{Floorplan, FunctionalUnit, Rect};
use oftec_units::Length;

/// Errors from [`parse_flp`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlpParseError {
    /// A line did not have exactly five whitespace-separated fields; holds
    /// the 1-based line number.
    MalformedLine(usize),
    /// A numeric field failed to parse; holds the 1-based line number and
    /// the offending token.
    BadNumber(usize, String),
    /// The file contained no units.
    NoUnits,
}

impl core::fmt::Display for FlpParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::MalformedLine(n) => write!(f, "line {n}: expected `name w h x y`"),
            Self::BadNumber(n, tok) => write!(f, "line {n}: cannot parse number `{tok}`"),
            Self::NoUnits => write!(f, "floorplan file contains no units"),
        }
    }
}

impl std::error::Error for FlpParseError {}

/// Parses HotSpot `.flp` text into a [`Floorplan`].
///
/// The die outline is taken as the bounding box of all units. Lines that
/// are empty or start with `#` are skipped.
///
/// # Errors
///
/// Returns an [`FlpParseError`] describing the first malformed line, or
/// [`FlpParseError::NoUnits`] for an empty file. The result is *not*
/// validated — call [`Floorplan::validate`] on it if the file is untrusted.
///
/// # Examples
///
/// ```
/// let text = "# toy plan\ncore 1e-3 1e-3 0 0\ncache 1e-3 1e-3 1e-3 0\n";
/// let fp = oftec_floorplan::parse_flp("toy", text)?;
/// assert_eq!(fp.units().len(), 2);
/// assert!(fp.validate().is_ok());
/// # Ok::<(), oftec_floorplan::FlpParseError>(())
/// ```
pub fn parse_flp(name: &str, text: &str) -> Result<Floorplan, FlpParseError> {
    let mut units = Vec::new();
    let mut max_x = 0.0_f64;
    let mut max_y = 0.0_f64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(FlpParseError::MalformedLine(lineno + 1));
        }
        let parse = |tok: &str| -> Result<f64, FlpParseError> {
            tok.parse::<f64>()
                .map_err(|_| FlpParseError::BadNumber(lineno + 1, tok.to_owned()))
        };
        let w = parse(fields[1])?;
        let h = parse(fields[2])?;
        let x = parse(fields[3])?;
        let y = parse(fields[4])?;
        max_x = max_x.max(x + w);
        max_y = max_y.max(y + h);
        units.push(FunctionalUnit::new(
            fields[0],
            Rect::from_meters(x, y, w, h),
        ));
    }
    if units.is_empty() {
        return Err(FlpParseError::NoUnits);
    }
    Ok(Floorplan::new(
        name,
        Length::from_meters(max_x),
        Length::from_meters(max_y),
        units,
    ))
}

/// Serializes a [`Floorplan`] to HotSpot `.flp` text (round-trips through
/// [`parse_flp`]).
pub fn write_flp(fp: &Floorplan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} ({} x {} mm)\n# name\twidth\theight\tleft-x\tbottom-y (meters)\n",
        fp.name(),
        fp.width().millimeters(),
        fp.height().millimeters()
    ));
    for u in fp.units() {
        let r = u.rect();
        out.push_str(&format!(
            "{}\t{:e}\t{:e}\t{:e}\t{:e}\n",
            u.name(),
            r.width().meters(),
            r.height().meters(),
            r.x().meters(),
            r.y().meters()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha21264;

    #[test]
    fn parses_simple_file() {
        let text = "a 2e-3 1e-3 0 0\nb 2e-3 1e-3 0 1e-3\n";
        let fp = parse_flp("t", text).unwrap();
        assert_eq!(fp.units().len(), 2);
        assert!((fp.width().millimeters() - 2.0).abs() < 1e-9);
        assert!((fp.height().millimeters() - 2.0).abs() < 1e-9);
        fp.validate().unwrap();
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# comment\n\n  \na 1e-3 1e-3 0 0\n";
        assert_eq!(parse_flp("t", text).unwrap().units().len(), 1);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let text = "a 1e-3 1e-3 0 0\nbroken 1 2 3\n";
        assert_eq!(
            parse_flp("t", text).unwrap_err(),
            FlpParseError::MalformedLine(2)
        );
    }

    #[test]
    fn bad_number_reported() {
        let text = "a 1e-3 oops 0 0\n";
        assert_eq!(
            parse_flp("t", text).unwrap_err(),
            FlpParseError::BadNumber(1, "oops".into())
        );
    }

    #[test]
    fn empty_file_rejected() {
        assert_eq!(
            parse_flp("t", "# nothing\n").unwrap_err(),
            FlpParseError::NoUnits
        );
    }

    #[test]
    fn alpha_round_trips() {
        let fp = alpha21264();
        let text = write_flp(&fp);
        let back = parse_flp("alpha21264", &text).unwrap();
        assert_eq!(back.units().len(), fp.units().len());
        back.validate().unwrap();
        for (a, b) in fp.units().iter().zip(back.units()) {
            assert_eq!(a.name(), b.name());
            assert!(
                (a.rect().area().square_meters() - b.rect().area().square_meters()).abs() < 1e-18
            );
        }
    }
}
