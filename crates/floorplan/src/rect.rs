//! Axis-aligned rectangles in die coordinates.

use oftec_units::{Area, Length};

/// An axis-aligned rectangle, positioned by its lower-left corner.
///
/// Coordinates are stored in meters; the origin is the die's lower-left
/// corner with x growing right and y growing up (HotSpot convention).
///
/// # Examples
///
/// ```
/// use oftec_floorplan::Rect;
/// use oftec_units::Length;
///
/// let r = Rect::new(
///     Length::ZERO,
///     Length::ZERO,
///     Length::from_mm(2.0),
///     Length::from_mm(3.0),
/// );
/// assert!((r.area().square_millimeters() - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rect {
    x: f64,
    y: f64,
    width: f64,
    height: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if the width or height is negative or non-finite.
    pub fn new(x: Length, y: Length, width: Length, height: Length) -> Self {
        let r = Self {
            x: x.meters(),
            y: y.meters(),
            width: width.meters(),
            height: height.meters(),
        };
        assert!(
            r.width >= 0.0 && r.height >= 0.0 && r.x.is_finite() && r.y.is_finite(),
            "rectangle must have finite position and non-negative size"
        );
        r
    }

    /// Creates a rectangle directly from meters (internal fast path).
    pub fn from_meters(x: f64, y: f64, width: f64, height: f64) -> Self {
        Self::new(
            Length::from_meters(x),
            Length::from_meters(y),
            Length::from_meters(width),
            Length::from_meters(height),
        )
    }

    /// Left edge.
    #[inline]
    pub fn x(&self) -> Length {
        Length::from_meters(self.x)
    }

    /// Bottom edge.
    #[inline]
    pub fn y(&self) -> Length {
        Length::from_meters(self.y)
    }

    /// Width.
    #[inline]
    pub fn width(&self) -> Length {
        Length::from_meters(self.width)
    }

    /// Height.
    #[inline]
    pub fn height(&self) -> Length {
        Length::from_meters(self.height)
    }

    /// Right edge.
    #[inline]
    pub fn right(&self) -> Length {
        Length::from_meters(self.x + self.width)
    }

    /// Top edge.
    #[inline]
    pub fn top(&self) -> Length {
        Length::from_meters(self.y + self.height)
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> Area {
        Area::from_square_meters(self.width * self.height)
    }

    /// Center point `(x, y)`.
    pub fn center(&self) -> (Length, Length) {
        (
            Length::from_meters(self.x + 0.5 * self.width),
            Length::from_meters(self.y + 0.5 * self.height),
        )
    }

    /// Area of the intersection with `other` (zero if disjoint).
    pub fn overlap_area(&self, other: &Rect) -> Area {
        let w = (self.x + self.width).min(other.x + other.width) - self.x.max(other.x);
        let h = (self.y + self.height).min(other.y + other.height) - self.y.max(other.y);
        if w > 0.0 && h > 0.0 {
            Area::from_square_meters(w * h)
        } else {
            Area::ZERO
        }
    }

    /// Returns `true` if the interiors intersect (shared edges don't count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.overlap_area(other).square_meters() > 0.0
    }

    /// Returns `true` if `other` lies entirely inside (or on the boundary
    /// of) this rectangle, within tolerance `tol` in meters.
    pub fn contains(&self, other: &Rect, tol: f64) -> bool {
        other.x >= self.x - tol
            && other.y >= self.y - tol
            && other.x + other.width <= self.x + self.width + tol
            && other.y + other.height <= self.y + self.height + tol
    }

    /// Returns `true` if the point `(px, py)` is inside (or on the boundary
    /// of) this rectangle.
    pub fn contains_point(&self, px: Length, py: Length) -> bool {
        let (px, py) = (px.meters(), py.meters());
        px >= self.x && px <= self.x + self.width && py >= self.y && py <= self.y + self.height
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{:.3}, {:.3}] mm + {:.3}×{:.3} mm",
            self.x * 1e3,
            self.y * 1e3,
            self.width * 1e3,
            self.height * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(v: f64) -> Length {
        Length::from_mm(v)
    }

    #[test]
    fn geometry_accessors() {
        let r = Rect::new(mm(1.0), mm(2.0), mm(3.0), mm(4.0));
        assert!((r.right().millimeters() - 4.0).abs() < 1e-12);
        assert!((r.top().millimeters() - 6.0).abs() < 1e-12);
        let (cx, cy) = r.center();
        assert!((cx.millimeters() - 2.5).abs() < 1e-12);
        assert!((cy.millimeters() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_identical_is_full_area() {
        let r = Rect::new(mm(0.0), mm(0.0), mm(2.0), mm(2.0));
        assert!((r.overlap_area(&r).square_millimeters() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_partial_and_disjoint() {
        let a = Rect::new(mm(0.0), mm(0.0), mm(2.0), mm(2.0));
        let b = Rect::new(mm(1.0), mm(1.0), mm(2.0), mm(2.0));
        assert!((a.overlap_area(&b).square_millimeters() - 1.0).abs() < 1e-9);
        let c = Rect::new(mm(5.0), mm(5.0), mm(1.0), mm(1.0));
        assert_eq!(a.overlap_area(&c), Area::ZERO);
        assert!(!a.intersects(&c));
        assert!(a.intersects(&b));
    }

    #[test]
    fn shared_edge_does_not_intersect() {
        let a = Rect::new(mm(0.0), mm(0.0), mm(1.0), mm(1.0));
        let b = Rect::new(mm(1.0), mm(0.0), mm(1.0), mm(1.0));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn containment() {
        let die = Rect::new(mm(0.0), mm(0.0), mm(10.0), mm(10.0));
        let unit = Rect::new(mm(2.0), mm(2.0), mm(3.0), mm(3.0));
        assert!(die.contains(&unit, 0.0));
        assert!(!unit.contains(&die, 0.0));
        let sticking_out = Rect::new(mm(8.0), mm(8.0), mm(3.0), mm(3.0));
        assert!(!die.contains(&sticking_out, 1e-9));
        assert!(die.contains_point(mm(10.0), mm(10.0)));
        assert!(!die.contains_point(mm(10.1), mm(5.0)));
    }

    #[test]
    #[should_panic(expected = "non-negative size")]
    fn negative_size_panics() {
        let _ = Rect::new(mm(0.0), mm(0.0), mm(-1.0), mm(1.0));
    }
}
