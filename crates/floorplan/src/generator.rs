//! Parametric floorplan generators for studies beyond the bundled
//! Alpha 21264 (grid-convergence sweeps, synthetic multicore scaling).

use crate::{Floorplan, FunctionalUnit, Rect};
use oftec_units::Length;

/// A uniform `rows × cols` tiling of the die, with units named
/// `t<row>_<col>`. Useful as a neutral substrate for discretization and
/// solver studies.
///
/// # Panics
///
/// Panics if any dimension is zero.
///
/// # Examples
///
/// ```
/// use oftec_floorplan::grid_floorplan;
/// use oftec_units::Length;
///
/// let fp = grid_floorplan("tiles", Length::from_mm(10.0), Length::from_mm(10.0), 4, 4);
/// assert_eq!(fp.units().len(), 16);
/// assert!(fp.validate().is_ok());
/// ```
pub fn grid_floorplan(
    name: &str,
    width: Length,
    height: Length,
    rows: usize,
    cols: usize,
) -> Floorplan {
    assert!(rows > 0 && cols > 0, "grid floorplan needs cells");
    assert!(
        width.meters() > 0.0 && height.meters() > 0.0,
        "die must have positive size"
    );
    let cw = width.meters() / cols as f64;
    let ch = height.meters() / rows as f64;
    let mut units = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            units.push(FunctionalUnit::new(
                format!("t{r}_{c}"),
                Rect::from_meters(c as f64 * cw, r as f64 * ch, cw, ch),
            ));
        }
    }
    Floorplan::new(name, width, height, units)
}

/// A synthetic symmetric multicore: `n × n` tiles, each split into a core
/// (named `Core<k>`) taking `core_fraction` of the tile's width and an L2
/// slice (named `L2_<k>`) taking the rest. Cores are the hot-spot
/// candidates; L2 slices play the caches' cold-area role.
///
/// # Panics
///
/// Panics if `n == 0` or `core_fraction` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use oftec_floorplan::multicore_floorplan;
/// use oftec_units::Length;
///
/// let fp = multicore_floorplan(Length::from_mm(16.0), 2, 0.6);
/// assert_eq!(fp.units().len(), 8); // 4 cores + 4 L2 slices
/// assert!(fp.validate().is_ok());
/// assert!(fp.unit_by_name("Core0").is_some());
/// assert!(fp.unit_by_name("L2_3").is_some());
/// ```
pub fn multicore_floorplan(die_edge: Length, n: usize, core_fraction: f64) -> Floorplan {
    assert!(n > 0, "need at least one core");
    assert!(
        (0.0..1.0).contains(&core_fraction) && core_fraction > 0.0,
        "core fraction must be in (0, 1)"
    );
    let edge = die_edge.meters();
    let tile = edge / n as f64;
    let core_w = tile * core_fraction;
    let mut units = Vec::with_capacity(2 * n * n);
    for r in 0..n {
        for c in 0..n {
            let k = r * n + c;
            let x0 = c as f64 * tile;
            let y0 = r as f64 * tile;
            units.push(FunctionalUnit::new(
                format!("Core{k}"),
                Rect::from_meters(x0, y0, core_w, tile),
            ));
            units.push(FunctionalUnit::new(
                format!("L2_{k}"),
                Rect::from_meters(x0 + core_w, y0, tile - core_w, tile),
            ));
        }
    }
    Floorplan::new(format!("multicore{n}x{n}"), die_edge, die_edge, units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_tiles_exactly() {
        let fp = grid_floorplan("g", Length::from_mm(15.9), Length::from_mm(15.9), 5, 7);
        fp.validate().unwrap();
        assert_eq!(fp.units().len(), 35);
        assert!((fp.coverage() - 1.0).abs() < 1e-9);
        assert!(fp.unit_by_name("t4_6").is_some());
        assert!(fp.unit_by_name("t5_0").is_none());
    }

    #[test]
    fn multicore_tiles_exactly() {
        for n in [1, 2, 3, 4] {
            let fp = multicore_floorplan(Length::from_mm(20.0), n, 0.55);
            fp.validate().unwrap();
            assert_eq!(fp.units().len(), 2 * n * n);
        }
    }

    #[test]
    fn core_fraction_controls_areas() {
        let fp = multicore_floorplan(Length::from_mm(10.0), 2, 0.7);
        let core = fp.unit_by_name("Core0").unwrap().rect().area();
        let l2 = fp.unit_by_name("L2_0").unwrap().rect().area();
        let frac = core.square_meters() / (core.square_meters() + l2.square_meters());
        assert!((frac - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "core fraction")]
    fn bad_fraction_panics() {
        let _ = multicore_floorplan(Length::from_mm(10.0), 2, 1.2);
    }
}
