//! Rasterization of a floorplan onto a regular thermal grid.

use crate::{Floorplan, Rect};
use oftec_units::Length;

/// Grid resolution: `rows × cols` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GridDims {
    /// Number of cell rows (y direction).
    pub rows: usize,
    /// Number of cell columns (x direction).
    pub cols: usize,
}

impl GridDims {
    /// Creates grid dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        Self { rows, cols }
    }

    /// Total cell count.
    #[inline]
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Flattens `(row, col)` to a cell index (row-major).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        row * self.cols + col
    }

    /// Inverse of [`GridDims::index`].
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn coords(&self, index: usize) -> (usize, usize) {
        assert!(index < self.cells(), "cell index out of range");
        (index / self.cols, index % self.cols)
    }
}

/// One unit's share of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCoverage {
    /// Index of the covering unit in the floorplan's unit list.
    pub unit: usize,
    /// Fraction of the *cell's* area covered by the unit (0..=1).
    pub cell_fraction: f64,
    /// Fraction of the *unit's* area falling in this cell (0..=1).
    pub unit_fraction: f64,
}

/// Precomputed area-overlap weights between a floorplan's units and a
/// regular grid over the same die.
///
/// Used in both directions:
/// - unit → cells: spread a per-unit power vector into per-cell powers
///   ([`GridMap::distribute`]);
/// - cells → unit: reduce per-cell temperatures to per-unit maxima or
///   area-weighted means ([`GridMap::unit_max`], [`GridMap::unit_mean`]).
///
/// # Examples
///
/// ```
/// use oftec_floorplan::{alpha21264, GridDims, GridMap};
///
/// let fp = alpha21264();
/// let map = GridMap::new(&fp, GridDims::new(16, 16));
/// let unit_powers = vec![1.0; fp.units().len()];
/// let cell_powers = map.distribute(&unit_powers);
/// let total: f64 = cell_powers.iter().sum();
/// assert!((total - 15.0).abs() < 1e-9); // power is conserved
/// ```
#[derive(Debug, Clone)]
pub struct GridMap {
    dims: GridDims,
    cell_width: f64,
    cell_height: f64,
    /// Per cell: covering units with fractions.
    cell_cover: Vec<Vec<CellCoverage>>,
    /// Per unit: (cell index, unit_fraction).
    unit_cells: Vec<Vec<(usize, f64)>>,
}

impl GridMap {
    /// Rasterizes `floorplan` onto a `dims` grid spanning the full die.
    pub fn new(floorplan: &Floorplan, dims: GridDims) -> Self {
        let w = floorplan.width().meters();
        let h = floorplan.height().meters();
        let cell_width = w / dims.cols as f64;
        let cell_height = h / dims.rows as f64;
        let n_units = floorplan.units().len();

        let mut cell_cover = vec![Vec::new(); dims.cells()];
        let mut unit_cells = vec![Vec::new(); n_units];
        let cell_area = cell_width * cell_height;

        for (ui, u) in floorplan.units().iter().enumerate() {
            let r = u.rect();
            let unit_area = r.area().square_meters();
            if unit_area == 0.0 {
                continue;
            }
            // Only visit cells the unit's bounding box can touch.
            let c_lo = (r.x().meters() / cell_width).floor().max(0.0) as usize;
            let c_hi = ((r.right().meters() / cell_width).ceil() as usize).min(dims.cols);
            let r_lo = (r.y().meters() / cell_height).floor().max(0.0) as usize;
            let r_hi = ((r.top().meters() / cell_height).ceil() as usize).min(dims.rows);
            for row in r_lo..r_hi {
                for col in c_lo..c_hi {
                    let cell = Rect::from_meters(
                        col as f64 * cell_width,
                        row as f64 * cell_height,
                        cell_width,
                        cell_height,
                    );
                    let ov = cell.overlap_area(r).square_meters();
                    if ov <= 0.0 {
                        continue;
                    }
                    let idx = dims.index(row, col);
                    cell_cover[idx].push(CellCoverage {
                        unit: ui,
                        cell_fraction: ov / cell_area,
                        unit_fraction: ov / unit_area,
                    });
                    unit_cells[ui].push((idx, ov / unit_area));
                }
            }
        }
        Self {
            dims,
            cell_width,
            cell_height,
            cell_cover,
            unit_cells,
        }
    }

    /// The grid dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Size of one cell.
    pub fn cell_size(&self) -> (Length, Length) {
        (
            Length::from_meters(self.cell_width),
            Length::from_meters(self.cell_height),
        )
    }

    /// Coverage records for one cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_coverage(&self, cell: usize) -> &[CellCoverage] {
        &self.cell_cover[cell]
    }

    /// The cells (with unit-area fractions) occupied by one unit.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn unit_cells(&self, unit: usize) -> &[(usize, f64)] {
        &self.unit_cells[unit]
    }

    /// Spreads a per-unit power vector into per-cell powers proportionally
    /// to area overlap; total power is conserved.
    ///
    /// # Panics
    ///
    /// Panics if `unit_values.len()` differs from the unit count.
    pub fn distribute(&self, unit_values: &[f64]) -> Vec<f64> {
        assert_eq!(
            unit_values.len(),
            self.unit_cells.len(),
            "one value per unit required"
        );
        let mut out = vec![0.0; self.dims.cells()];
        for (ui, cells) in self.unit_cells.iter().enumerate() {
            let p = unit_values[ui];
            for &(cell, frac) in cells {
                out[cell] += p * frac;
            }
        }
        out
    }

    /// Reduces per-cell values to each unit's maximum (over cells where the
    /// unit covers a non-negligible share).
    ///
    /// # Panics
    ///
    /// Panics if `cell_values.len()` differs from the cell count.
    pub fn unit_max(&self, cell_values: &[f64]) -> Vec<f64> {
        assert_eq!(
            cell_values.len(),
            self.dims.cells(),
            "one value per cell required"
        );
        self.unit_cells
            .iter()
            .map(|cells| {
                cells
                    .iter()
                    .map(|&(cell, _)| cell_values[cell])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// Reduces per-cell values to each unit's area-weighted mean.
    ///
    /// # Panics
    ///
    /// Panics if `cell_values.len()` differs from the cell count.
    pub fn unit_mean(&self, cell_values: &[f64]) -> Vec<f64> {
        assert_eq!(
            cell_values.len(),
            self.dims.cells(),
            "one value per cell required"
        );
        self.unit_cells
            .iter()
            .map(|cells| {
                cells
                    .iter()
                    .map(|&(cell, frac)| cell_values[cell] * frac)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alpha21264, Floorplan, FunctionalUnit};

    fn mm(v: f64) -> Length {
        Length::from_mm(v)
    }

    fn half_half() -> Floorplan {
        Floorplan::new(
            "hh",
            mm(2.0),
            mm(2.0),
            vec![
                FunctionalUnit::new("left", Rect::new(mm(0.0), mm(0.0), mm(1.0), mm(2.0))),
                FunctionalUnit::new("right", Rect::new(mm(1.0), mm(0.0), mm(1.0), mm(2.0))),
            ],
        )
    }

    #[test]
    fn dims_indexing_round_trip() {
        let d = GridDims::new(3, 5);
        assert_eq!(d.cells(), 15);
        for i in 0..15 {
            let (r, c) = d.coords(i);
            assert_eq!(d.index(r, c), i);
        }
    }

    #[test]
    fn aligned_grid_gives_exact_fractions() {
        let map = GridMap::new(&half_half(), GridDims::new(2, 2));
        // Each unit covers exactly two cells, each holding half its area.
        for ui in 0..2 {
            let cells = map.unit_cells(ui);
            assert_eq!(cells.len(), 2);
            for &(_, frac) in cells {
                assert!((frac - 0.5).abs() < 1e-12);
            }
        }
        // Each cell is fully covered by exactly one unit.
        for cell in 0..4 {
            let cov = map.cell_coverage(cell);
            assert_eq!(cov.len(), 1);
            assert!((cov[0].cell_fraction - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn misaligned_grid_splits_cells() {
        // 1×1 grid: single cell covered half by each unit.
        let map = GridMap::new(&half_half(), GridDims::new(1, 1));
        let cov = map.cell_coverage(0);
        assert_eq!(cov.len(), 2);
        for c in cov {
            assert!((c.cell_fraction - 0.5).abs() < 1e-12);
            assert!((c.unit_fraction - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn distribute_conserves_power() {
        let fp = alpha21264();
        for dims in [
            GridDims::new(8, 8),
            GridDims::new(13, 17),
            GridDims::new(32, 32),
        ] {
            let map = GridMap::new(&fp, dims);
            let unit_powers: Vec<f64> = (0..fp.units().len()).map(|i| 1.0 + i as f64).collect();
            let cells = map.distribute(&unit_powers);
            let total_in: f64 = unit_powers.iter().sum();
            let total_out: f64 = cells.iter().sum();
            assert!(
                (total_in - total_out).abs() < 1e-9 * total_in,
                "power not conserved on {dims:?}"
            );
        }
    }

    #[test]
    fn every_alpha_cell_fully_covered() {
        let map = GridMap::new(&alpha21264(), GridDims::new(20, 20));
        for cell in 0..map.dims().cells() {
            let total: f64 = map
                .cell_coverage(cell)
                .iter()
                .map(|c| c.cell_fraction)
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "cell {cell} covered {total}");
        }
    }

    #[test]
    fn unit_max_and_mean() {
        let map = GridMap::new(&half_half(), GridDims::new(2, 2));
        // Cell values: row-major, rows bottom-up: cells 0,2 are left; 1,3 right.
        let vals = [10.0, 100.0, 30.0, 50.0];
        let maxes = map.unit_max(&vals);
        assert_eq!(maxes, vec![30.0, 100.0]);
        let means = map.unit_mean(&vals);
        assert!((means[0] - 20.0).abs() < 1e-12);
        assert!((means[1] - 75.0).abs() < 1e-12);
    }

    #[test]
    fn cell_size() {
        let map = GridMap::new(&half_half(), GridDims::new(4, 2));
        let (w, h) = map.cell_size();
        assert!((w.millimeters() - 1.0).abs() < 1e-12);
        assert!((h.millimeters() - 0.5).abs() < 1e-12);
    }
}
