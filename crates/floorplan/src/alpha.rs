//! An Alpha 21264-class floorplan.
//!
//! The paper's experiments target the Alpha 21264 with the 15.9 × 15.9 mm
//! die of its Table 1. The exact unit geometry is not given there, so this
//! floorplan follows the unit list of HotSpot's classic `ev6.flp`
//! (the same reference the paper cites for hot-spot behaviour), retiled to
//! cover the Table 1 die exactly: big first-level caches that never become
//! hot spots, and integer/floating-point execution clusters that do.

use crate::{Floorplan, FunctionalUnit, Rect};
use oftec_units::Length;

/// Die edge from Table 1 of the paper, in millimeters.
pub(crate) const DIE_EDGE_MM: f64 = 15.9;

/// Builds the Alpha 21264-class floorplan used throughout the reproduction.
///
/// Fifteen units tile the 15.9 × 15.9 mm die with no gaps or overlaps:
/// `Icache`/`Dcache` (the cold ~38% of the die left uncovered by TECs in
/// the paper's deployment), the integer cluster (`IntReg`, `IntMap`,
/// `IntQ`, `IntExec`), the floating-point cluster (`FPReg`, `FPMap`, `FPQ`,
/// `FPAdd`, `FPMul`), the memory pipeline (`LdStQ`, `ITB`, `DTB`), and the
/// branch predictor (`Bpred`).
///
/// # Examples
///
/// ```
/// use oftec_floorplan::alpha21264;
///
/// let fp = alpha21264();
/// assert!(fp.validate().is_ok());
/// assert!(fp.unit_by_name("IntExec").is_some());
/// ```
pub fn alpha21264() -> Floorplan {
    let mm = |v: f64| Length::from_mm(v);
    let unit = |name: &str, x: f64, y: f64, w: f64, h: f64| {
        FunctionalUnit::new(name, Rect::new(mm(x), mm(y), mm(w), mm(h)))
    };
    let e = DIE_EDGE_MM;

    // Bottom band: first-level caches (y ∈ [0, 6.0)).
    // Middle band: memory pipe + integer front-end (y ∈ [6.0, 9.0)).
    // Upper band:  execution units (y ∈ [9.0, 12.5)).
    // Top band:    FP front-end, TLBs, branch predictor (y ∈ [12.5, 15.9)).
    let units = vec![
        unit("Dcache", 0.0, 0.0, e / 2.0, 6.0),
        unit("Icache", e / 2.0, 0.0, e / 2.0, 6.0),
        unit("LdStQ", 0.0, 6.0, 4.0, 3.0),
        unit("IntMap", 4.0, 6.0, 4.0, 3.0),
        unit("IntQ", 8.0, 6.0, 3.0, 3.0),
        unit("IntReg", 11.0, 6.0, e - 11.0, 3.0),
        unit("IntExec", 0.0, 9.0, 6.0, 3.5),
        unit("FPAdd", 6.0, 9.0, 3.5, 3.5),
        unit("FPMul", 9.5, 9.0, 3.5, 3.5),
        unit("FPReg", 13.0, 9.0, e - 13.0, 3.5),
        unit("FPMap", 0.0, 12.5, 3.0, e - 12.5),
        unit("FPQ", 3.0, 12.5, 3.0, e - 12.5),
        unit("ITB", 6.0, 12.5, 2.5, e - 12.5),
        unit("DTB", 8.5, 12.5, 2.5, e - 12.5),
        unit("Bpred", 11.0, 12.5, e - 11.0, e - 12.5),
    ];
    Floorplan::new("alpha21264", mm(e), mm(e), units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates() {
        alpha21264().validate().unwrap();
    }

    #[test]
    fn has_fifteen_units() {
        assert_eq!(alpha21264().units().len(), 15);
    }

    #[test]
    fn die_matches_table1() {
        let fp = alpha21264();
        assert!((fp.width().millimeters() - 15.9).abs() < 1e-9);
        assert!((fp.height().millimeters() - 15.9).abs() < 1e-9);
    }

    #[test]
    fn caches_cover_roughly_the_bottom_third() {
        let fp = alpha21264();
        let cache_area: f64 = ["Icache", "Dcache"]
            .iter()
            .map(|n| fp.unit_by_name(n).unwrap().rect().area().square_meters())
            .sum();
        let frac = cache_area / fp.die_area().square_meters();
        assert!((0.3..0.45).contains(&frac), "cache fraction {frac}");
    }

    #[test]
    fn expected_unit_names_present() {
        let fp = alpha21264();
        for name in [
            "Icache", "Dcache", "IntReg", "IntMap", "IntQ", "IntExec", "FPReg", "FPMap", "FPQ",
            "FPAdd", "FPMul", "LdStQ", "ITB", "DTB", "Bpred",
        ] {
            assert!(fp.unit_by_name(name).is_some(), "missing {name}");
        }
    }
}
