//! Floorplans: named functional units tiling a die.

use crate::Rect;
use oftec_units::{Area, Length};

/// A named rectangular functional unit on the die.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FunctionalUnit {
    name: String,
    rect: Rect,
}

impl FunctionalUnit {
    /// Creates a unit from a name and its rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or contains whitespace (which would
    /// break the `.flp` text format).
    pub fn new(name: impl Into<String>, rect: Rect) -> Self {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.chars().any(char::is_whitespace),
            "unit names must be non-empty and whitespace-free"
        );
        Self { name, rect }
    }

    /// The unit's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit's rectangle.
    #[inline]
    pub fn rect(&self) -> &Rect {
        &self.rect
    }
}

/// Validation failures for [`Floorplan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FloorplanError {
    /// Two units share a name.
    DuplicateName(String),
    /// A unit extends beyond the die outline.
    OutOfBounds(String),
    /// Two units overlap; holds both names.
    Overlap(String, String),
    /// The union of units does not cover the die; holds the uncovered
    /// fraction (0..1).
    IncompleteCoverage(f64),
    /// The floorplan has no units.
    Empty,
}

impl core::fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::DuplicateName(n) => write!(f, "duplicate unit name: {n}"),
            Self::OutOfBounds(n) => write!(f, "unit extends beyond the die: {n}"),
            Self::Overlap(a, b) => write!(f, "units overlap: {a} and {b}"),
            Self::IncompleteCoverage(frac) => write!(
                f,
                "floorplan leaves {:.2}% of the die uncovered",
                frac * 100.0
            ),
            Self::Empty => write!(f, "floorplan has no units"),
        }
    }
}

impl std::error::Error for FloorplanError {}

/// A die outline plus the functional units tiling it.
///
/// # Examples
///
/// ```
/// use oftec_floorplan::{Floorplan, FunctionalUnit, Rect};
/// use oftec_units::Length;
///
/// let mm = Length::from_mm;
/// let fp = Floorplan::new(
///     "demo",
///     mm(2.0),
///     mm(1.0),
///     vec![
///         FunctionalUnit::new("left", Rect::new(mm(0.0), mm(0.0), mm(1.0), mm(1.0))),
///         FunctionalUnit::new("right", Rect::new(mm(1.0), mm(0.0), mm(1.0), mm(1.0))),
///     ],
/// );
/// fp.validate()?;
/// assert_eq!(fp.unit_index("right"), Some(1));
/// # Ok::<(), oftec_floorplan::FloorplanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Floorplan {
    name: String,
    width: Length,
    height: Length,
    units: Vec<FunctionalUnit>,
}

/// Geometric tolerance (meters) for validation: 1 nm absorbs floating-point
/// noise in hand-built floorplans without masking real errors.
const GEOM_TOL: f64 = 1e-9;

impl Floorplan {
    /// Creates a floorplan from the die size and unit list.
    pub fn new(
        name: impl Into<String>,
        width: Length,
        height: Length,
        units: Vec<FunctionalUnit>,
    ) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            units,
        }
    }

    /// The floorplan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die width.
    pub fn width(&self) -> Length {
        self.width
    }

    /// Die height.
    pub fn height(&self) -> Length {
        self.height
    }

    /// The die outline as a rectangle at the origin.
    pub fn die_rect(&self) -> Rect {
        Rect::new(Length::ZERO, Length::ZERO, self.width, self.height)
    }

    /// Die area.
    pub fn die_area(&self) -> Area {
        self.width * self.height
    }

    /// The functional units, in insertion order.
    pub fn units(&self) -> &[FunctionalUnit] {
        &self.units
    }

    /// Finds a unit by name.
    pub fn unit_by_name(&self, name: &str) -> Option<&FunctionalUnit> {
        self.units.iter().find(|u| u.name() == name)
    }

    /// Finds the index of a unit by name.
    pub fn unit_index(&self, name: &str) -> Option<usize> {
        self.units.iter().position(|u| u.name() == name)
    }

    /// Fraction of the die covered by the union of units (assumes the
    /// floorplan passed overlap validation, in which case summing areas is
    /// exact).
    pub fn coverage(&self) -> f64 {
        let total: f64 = self
            .units
            .iter()
            .map(|u| u.rect().area().square_meters())
            .sum();
        total / self.die_area().square_meters()
    }

    /// Checks structural invariants: non-empty, unique names, every unit in
    /// bounds, pairwise disjoint interiors, and (near-)full die coverage.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`FloorplanError`].
    pub fn validate(&self) -> Result<(), FloorplanError> {
        if self.units.is_empty() {
            return Err(FloorplanError::Empty);
        }
        for (i, u) in self.units.iter().enumerate() {
            for v in &self.units[..i] {
                if v.name() == u.name() {
                    return Err(FloorplanError::DuplicateName(u.name().to_owned()));
                }
            }
        }
        let die = self.die_rect();
        for u in &self.units {
            if !die.contains(u.rect(), GEOM_TOL) {
                return Err(FloorplanError::OutOfBounds(u.name().to_owned()));
            }
        }
        for (i, u) in self.units.iter().enumerate() {
            for v in &self.units[(i + 1)..] {
                // Tolerate sliver overlaps below tolerance × die edge.
                let tol_area = GEOM_TOL * self.width.meters().max(self.height.meters());
                if u.rect().overlap_area(v.rect()).square_meters() > tol_area {
                    return Err(FloorplanError::Overlap(
                        u.name().to_owned(),
                        v.name().to_owned(),
                    ));
                }
            }
        }
        let uncovered = 1.0 - self.coverage();
        if uncovered.abs() > 1e-6 {
            return Err(FloorplanError::IncompleteCoverage(uncovered));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(v: f64) -> Length {
        Length::from_mm(v)
    }

    fn unit(name: &str, x: f64, y: f64, w: f64, h: f64) -> FunctionalUnit {
        FunctionalUnit::new(name, Rect::new(mm(x), mm(y), mm(w), mm(h)))
    }

    fn two_by_one() -> Floorplan {
        Floorplan::new(
            "2x1",
            mm(2.0),
            mm(1.0),
            vec![unit("a", 0.0, 0.0, 1.0, 1.0), unit("b", 1.0, 0.0, 1.0, 1.0)],
        )
    }

    #[test]
    fn valid_plan_passes() {
        two_by_one().validate().unwrap();
        assert!((two_by_one().coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        let fp = Floorplan::new("empty", mm(1.0), mm(1.0), vec![]);
        assert_eq!(fp.validate(), Err(FloorplanError::Empty));
    }

    #[test]
    fn duplicate_names_rejected() {
        let fp = Floorplan::new(
            "dup",
            mm(2.0),
            mm(1.0),
            vec![unit("a", 0.0, 0.0, 1.0, 1.0), unit("a", 1.0, 0.0, 1.0, 1.0)],
        );
        assert_eq!(
            fp.validate(),
            Err(FloorplanError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let fp = Floorplan::new("oob", mm(1.0), mm(1.0), vec![unit("a", 0.5, 0.0, 1.0, 1.0)]);
        assert_eq!(fp.validate(), Err(FloorplanError::OutOfBounds("a".into())));
    }

    #[test]
    fn overlap_rejected() {
        let fp = Floorplan::new(
            "ovl",
            mm(2.0),
            mm(1.0),
            vec![unit("a", 0.0, 0.0, 1.2, 1.0), unit("b", 1.0, 0.0, 1.0, 1.0)],
        );
        assert_eq!(
            fp.validate(),
            Err(FloorplanError::Overlap("a".into(), "b".into()))
        );
    }

    #[test]
    fn incomplete_coverage_rejected() {
        let fp = Floorplan::new("gap", mm(2.0), mm(1.0), vec![unit("a", 0.0, 0.0, 1.0, 1.0)]);
        match fp.validate() {
            Err(FloorplanError::IncompleteCoverage(frac)) => {
                assert!((frac - 0.5).abs() < 1e-9);
            }
            other => panic!("expected coverage error, got {other:?}"),
        }
    }

    #[test]
    fn lookup_by_name_and_index() {
        let fp = two_by_one();
        assert_eq!(fp.unit_index("b"), Some(1));
        assert_eq!(fp.unit_by_name("b").unwrap().name(), "b");
        assert_eq!(fp.unit_index("zzz"), None);
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn whitespace_name_panics() {
        let _ = unit("bad name", 0.0, 0.0, 1.0, 1.0);
    }

    #[test]
    fn error_display() {
        let e = FloorplanError::Overlap("x".into(), "y".into());
        assert_eq!(e.to_string(), "units overlap: x and y");
    }
}
