//! Property tests of the thermoelectric device equations.

use oftec_tec::{TecArray, TecDevice, TecDeviceParams};
use oftec_units::{
    Area, Current, ElectricalResistance, Length, SeebeckCoefficient, Temperature,
    ThermalConductance,
};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = TecDeviceParams> {
    (1e-3..3e-2f64, 5e-3..0.2f64, 0.2..3.0f64).prop_map(|(alpha, r, k)| TecDeviceParams {
        seebeck: SeebeckCoefficient::from_volts_per_kelvin(alpha),
        electrical_resistance: ElectricalResistance::from_ohms(r),
        thermal_conductance: ThermalConductance::from_w_per_k(k),
        max_current: Current::from_amperes(5.0),
        footprint: Area::from_square_mm(4.0),
        thickness: Length::from_um(10.0),
        thomson: SeebeckCoefficient::ZERO,
    })
}

fn temps() -> impl Strategy<Value = (Temperature, Temperature)> {
    (300.0..380.0f64, -30.0..30.0f64).prop_map(|(tc, dt)| {
        (
            Temperature::from_kelvin(tc + dt.max(0.0) + dt.abs()),
            Temperature::from_kelvin(tc),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn energy_conservation_everywhere(
        p in params(),
        (th, tc) in temps(),
        i in 0.0..5.0f64,
    ) {
        prop_assume!((1e-5..1e-1).contains(&p.figure_of_merit()));
        let d = TecDevice::new(p);
        let i = Current::from_amperes(i);
        let balance = d.heat_released(th, tc, i) - d.heat_absorbed(th, tc, i);
        let power = d.power(th, tc, i);
        prop_assert!(
            (balance.watts() - power.watts()).abs() < 1e-9 * power.watts().abs().max(1.0)
        );
    }

    #[test]
    fn cooling_is_concave_in_current(p in params(), (th, tc) in temps(), i in 0.5..4.0f64) {
        prop_assume!((1e-5..1e-1).contains(&p.figure_of_merit()));
        let d = TecDevice::new(p);
        let q = |amps: f64| d.heat_absorbed(th, tc, Current::from_amperes(amps)).watts();
        let h = 0.25;
        // Second difference: q(i+h) + q(i−h) − 2q(i) = −R·h² exactly.
        let second = q(i + h) + q(i - h) - 2.0 * q(i);
        let expect = -p.electrical_resistance.ohms() * h * h;
        prop_assert!((second - expect).abs() < 1e-9);
    }

    #[test]
    fn cooling_decreases_with_delta_t(p in params(), i in 0.1..5.0f64, dt in 0.1..40.0f64) {
        prop_assume!((1e-5..1e-1).contains(&p.figure_of_merit()));
        let d = TecDevice::new(p);
        let tc = Temperature::from_kelvin(350.0);
        let i = Current::from_amperes(i);
        let q_small = d.heat_absorbed(tc, tc, i);
        let q_large = d.heat_absorbed(
            Temperature::from_kelvin(350.0 + dt),
            tc,
            i,
        );
        prop_assert!(q_large < q_small);
    }

    #[test]
    fn optimal_current_is_stationary(p in params(), (th, tc) in temps()) {
        prop_assume!((1e-5..1e-1).contains(&p.figure_of_merit()));
        let d = TecDevice::new(p);
        let i_opt = d.optimal_current(tc);
        let h = 1e-4;
        let q = |amps: f64| d.heat_absorbed(th, tc, Current::from_amperes(amps)).watts();
        let slope = (q(i_opt.amperes() + h) - q(i_opt.amperes() - h)) / (2.0 * h);
        prop_assert!(slope.abs() < 1e-6, "dq/dI at I_opt = {slope}");
    }

    #[test]
    fn array_is_exactly_linear(p in params(), n in 1usize..200, i in 0.0..5.0f64) {
        prop_assume!((1e-5..1e-1).contains(&p.figure_of_merit()));
        let arr = TecArray::new(p, n);
        let one = TecArray::new(p, 1);
        let th = Temperature::from_kelvin(360.0);
        let tc = Temperature::from_kelvin(352.0);
        let i = Current::from_amperes(i);
        prop_assert!(
            (arr.power(th, tc, i).watts() - n as f64 * one.power(th, tc, i).watts()).abs()
                < 1e-9 * n as f64
        );
    }

    #[test]
    fn cop_bounded_by_carnot(p in params(), i in 0.2..5.0f64, dt in 1.0..40.0f64) {
        prop_assume!((1e-5..1e-1).contains(&p.figure_of_merit()));
        let d = TecDevice::new(p);
        let tc = Temperature::from_kelvin(340.0);
        let th = Temperature::from_kelvin(340.0 + dt);
        if let Some(cop) = d.cop(th, tc, Current::from_amperes(i)) {
            let carnot = tc.kelvin() / dt;
            prop_assert!(
                cop <= carnot + 1e-9,
                "COP {cop} exceeds Carnot {carnot} at ΔT {dt}"
            );
        }
    }
}
