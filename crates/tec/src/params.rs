//! Physical parameters of one TEC unit.

use oftec_units::{
    Area, Current, ElectricalResistance, Length, SeebeckCoefficient, Temperature,
    ThermalConductance,
};

/// Aggregate physical parameters of one thin-film TEC unit (a mini-module
/// of N-P couples wired in series and sandwiched between the die's TIM and
/// the heat spreader, Figure 2 of the paper).
///
/// `seebeck`, `electrical_resistance`, and `thermal_conductance` are
/// *module-level* aggregates (couple value × couple count), matching how
/// Eqs. (1)–(3) are written per device.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TecDeviceParams {
    /// Module Seebeck coefficient α (V/K).
    pub seebeck: SeebeckCoefficient,
    /// Module electrical resistance R_TEC (Ω).
    pub electrical_resistance: ElectricalResistance,
    /// Module thermal conductance K_TEC (W/K) — the parasitic back-
    /// conduction path through the pellets.
    pub thermal_conductance: ThermalConductance,
    /// Safe driving-current limit I_TEC,max; beyond it the device is
    /// damaged (paper constraint (17) uses 5 A).
    pub max_current: Current,
    /// Footprint of one unit on the die.
    pub footprint: Area,
    /// Film thickness (die-normal direction).
    pub thickness: Length,
    /// Module Thomson coefficient τ (V/K). The paper's Eqs. (1)–(2)
    /// neglect the Thomson effect "because of its negligible effect";
    /// setting this nonzero lets the device model quantify that claim
    /// (see [`crate::TecDevice`]). Zero by default.
    #[serde(default)]
    pub thomson: SeebeckCoefficient,
}

impl TecDeviceParams {
    /// Thin-film superlattice parameters in the class of the devices the
    /// paper builds on (Chowdhury et al., Nature Nanotech. 2009; the
    /// paper's reference \[3\], also used by its reference \[8\]).
    ///
    /// A 2 × 2 mm, ~10 µm-thick mini-module of ~17 couples:
    /// - α = 10 mV/K module Seebeck,
    /// - R = 25 mΩ module resistance,
    /// - K = 1.0 W/K module back-conduction. With the 4 mm² footprint and
    ///   10 µm thickness this is an effective 2.5 W/(m·K) through-plane
    ///   film conductivity (pellets plus metal interconnect), above the
    ///   1.75 W/(m·K) thermal paste of Table 1 — the paper's stated reason
    ///   for boosting the baselines' TIM1 for fairness,
    /// - figure of merit Z = α²/(R·K) = 4 × 10⁻³ K⁻¹ (ZT ≈ 1.2–1.5 in the
    ///   300–390 K window, the upper superlattice range reported by the
    ///   paper's reference \[3\]),
    /// - I_max = 5 A (the paper's constraint (17)).
    pub fn superlattice_thin_film() -> Self {
        Self {
            seebeck: SeebeckCoefficient::from_volts_per_kelvin(10e-3),
            electrical_resistance: ElectricalResistance::from_ohms(0.025),
            thermal_conductance: ThermalConductance::from_w_per_k(1.0),
            max_current: Current::from_amperes(5.0),
            footprint: Area::from_square_mm(4.0),
            thickness: Length::from_um(10.0),
            thomson: SeebeckCoefficient::ZERO,
        }
    }

    /// The same device with a representative Thomson coefficient
    /// `τ = T·dα/dT ≈ 0.1·α` — used by the ablation that checks the
    /// paper's "Thomson effect is negligible" claim.
    pub fn superlattice_with_thomson() -> Self {
        let base = Self::superlattice_thin_film();
        Self {
            thomson: base.seebeck * 0.1,
            ..base
        }
    }

    /// Thermoelectric figure of merit `Z = α² / (R·K)` in K⁻¹.
    pub fn figure_of_merit(&self) -> f64 {
        let a = self.seebeck.volts_per_kelvin();
        a * a / (self.electrical_resistance.ohms() * self.thermal_conductance.w_per_k())
    }

    /// Dimensionless `ZT` at temperature `t`.
    pub fn zt(&self, t: Temperature) -> f64 {
        self.figure_of_merit() * t.kelvin()
    }

    /// Effective through-plane thermal conductivity of the film implied by
    /// `K`, footprint, and thickness, in W/(m·K) — comparable against TIM
    /// conductivities (Table 1 uses 1.75 for thermal paste).
    pub fn effective_conductivity(&self) -> f64 {
        self.thermal_conductance.w_per_k() * self.thickness.meters()
            / self.footprint.square_meters()
    }

    /// Validates physical plausibility: positive parameters and a figure
    /// of merit in the broad thermoelectric range.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if a parameter is non-positive or
    /// `Z` is outside `(1e-5, 1e-1)` K⁻¹.
    pub fn assert_physical(&self) {
        assert!(
            self.seebeck.volts_per_kelvin() > 0.0,
            "Seebeck coefficient must be positive"
        );
        assert!(
            self.electrical_resistance.ohms() > 0.0,
            "electrical resistance must be positive"
        );
        assert!(
            self.thermal_conductance.w_per_k() > 0.0,
            "thermal conductance must be positive"
        );
        assert!(
            self.max_current.amperes() > 0.0,
            "current limit must be positive"
        );
        assert!(
            self.footprint.square_meters() > 0.0 && self.thickness.meters() > 0.0,
            "geometry must be positive"
        );
        let z = self.figure_of_merit();
        assert!(
            (1e-5..1e-1).contains(&z),
            "figure of merit {z} K⁻¹ is outside the thermoelectric range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_physical() {
        TecDeviceParams::superlattice_thin_film().assert_physical();
    }

    #[test]
    fn preset_figure_of_merit_in_superlattice_range() {
        let p = TecDeviceParams::superlattice_thin_film();
        let z = p.figure_of_merit();
        assert!((5e-4..5e-3).contains(&z), "Z = {z}");
        let zt = p.zt(Temperature::from_kelvin(350.0));
        assert!((0.3..2.0).contains(&zt), "ZT = {zt}");
    }

    #[test]
    fn film_is_more_conductive_than_thermal_paste() {
        let p = TecDeviceParams::superlattice_thin_film();
        // Table 1 TIM conductivity is 1.75 W/(m·K); the TEC pellets beat it
        // per unit area, which is the basis of the paper's baseline
        // fairness correction.
        let tim_per_area = 1.75 / 20e-6; // W/(m²·K)
        let tec_per_area = p.thermal_conductance.w_per_k() / p.footprint.square_meters();
        assert!(tec_per_area > tim_per_area);
    }

    #[test]
    fn max_current_matches_paper() {
        assert_eq!(
            TecDeviceParams::superlattice_thin_film()
                .max_current
                .amperes(),
            5.0
        );
    }

    #[test]
    #[should_panic(expected = "figure of merit")]
    fn implausible_params_rejected() {
        let mut p = TecDeviceParams::superlattice_thin_film();
        p.seebeck = SeebeckCoefficient::from_volts_per_kelvin(10.0);
        p.assert_physical();
    }
}
