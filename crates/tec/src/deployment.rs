//! TEC placement over a die — §6.1 of the paper.
//!
//! "The entire surface of the processor is tiled with TECs except the
//! instruction and data caches which are remained uncovered since they do
//! not show any hot spots." Deployment is expressed on the thermal grid:
//! each grid cell of the TEC layer is either TEC-covered (active pumping,
//! pellet conduction) or passive filler.

use crate::TecDeviceParams;
use oftec_floorplan::{Floorplan, GridDims, GridMap};

/// Fraction of a cell's area that must belong to excluded (cache) units
/// before the cell is left uncovered. Cells are mostly inside one unit at
/// practical resolutions, so the exact threshold is not sensitive.
const EXCLUSION_THRESHOLD: f64 = 0.5;

/// A TEC deployment: which cells of the (die-aligned) TEC layer carry TEC
/// devices, and how many device-equivalents each cell holds.
///
/// # Examples
///
/// ```
/// use oftec_floorplan::{alpha21264, GridDims};
/// use oftec_tec::{TecDeployment, TecDeviceParams};
///
/// let fp = alpha21264();
/// let dep = TecDeployment::tile_except(
///     &fp,
///     GridDims::new(16, 16),
///     TecDeviceParams::superlattice_thin_film(),
///     &["Icache", "Dcache"],
/// );
/// // Caches occupy ~38% of the die, so ~62% of cells carry TECs.
/// let frac = dep.covered_cells() as f64 / dep.dims().cells() as f64;
/// assert!((0.5..0.75).contains(&frac));
/// ```
#[derive(Debug, Clone)]
pub struct TecDeployment {
    params: TecDeviceParams,
    dims: GridDims,
    covered: Vec<bool>,
    /// Device-equivalents per covered cell (cell area / device footprint).
    devices_per_cell: f64,
}

impl TecDeployment {
    /// Tiles every cell of the die with TECs except cells dominated by the
    /// named excluded units (the paper excludes `Icache`/`Dcache`).
    ///
    /// Unknown names in `excluded_units` are ignored (nothing to exclude).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are unphysical.
    pub fn tile_except(
        floorplan: &Floorplan,
        dims: GridDims,
        params: TecDeviceParams,
        excluded_units: &[&str],
    ) -> Self {
        params.assert_physical();
        let excluded_idx: Vec<usize> = excluded_units
            .iter()
            .filter_map(|n| floorplan.unit_index(n))
            .collect();
        let map = GridMap::new(floorplan, dims);
        let covered: Vec<bool> = (0..dims.cells())
            .map(|cell| {
                let excluded_frac: f64 = map
                    .cell_coverage(cell)
                    .iter()
                    .filter(|c| excluded_idx.contains(&c.unit))
                    .map(|c| c.cell_fraction)
                    .sum();
                excluded_frac < EXCLUSION_THRESHOLD
            })
            .collect();
        let cell_area = floorplan.die_area().square_meters() / dims.cells() as f64;
        let devices_per_cell = cell_area / params.footprint.square_meters();
        Self {
            params,
            dims,
            covered,
            devices_per_cell,
        }
    }

    /// Covers every cell (no exclusions) — for experiments on excessive
    /// deployment.
    pub fn tile_all(floorplan: &Floorplan, dims: GridDims, params: TecDeviceParams) -> Self {
        Self::tile_except(floorplan, dims, params, &[])
    }

    /// The device parameters.
    #[inline]
    pub fn params(&self) -> &TecDeviceParams {
        &self.params
    }

    /// The deployment grid.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Whether cell `i` carries TEC devices.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn is_covered(&self, i: usize) -> bool {
        self.covered[i]
    }

    /// Per-cell coverage flags.
    pub fn coverage(&self) -> &[bool] {
        &self.covered
    }

    /// Number of covered cells.
    pub fn covered_cells(&self) -> usize {
        self.covered.iter().filter(|c| **c).count()
    }

    /// Device-equivalents in one covered cell (cell area / footprint);
    /// module aggregates α, R, K scale by this factor per cell.
    #[inline]
    pub fn devices_per_cell(&self) -> f64 {
        self.devices_per_cell
    }

    /// Total device count `N` across the die (covered cells ×
    /// devices-per-cell), the `N` of Eqs. (1)–(3).
    pub fn device_count(&self) -> f64 {
        self.covered_cells() as f64 * self.devices_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_floorplan::alpha21264;

    fn deployment(dims: GridDims) -> TecDeployment {
        TecDeployment::tile_except(
            &alpha21264(),
            dims,
            TecDeviceParams::superlattice_thin_film(),
            &["Icache", "Dcache"],
        )
    }

    #[test]
    fn caches_are_uncovered() {
        let fp = alpha21264();
        let dims = GridDims::new(16, 16);
        let dep = deployment(dims);
        let map = GridMap::new(&fp, dims);
        let icache = fp.unit_index("Icache").unwrap();
        let dcache = fp.unit_index("Dcache").unwrap();
        for cell in 0..dims.cells() {
            let cache_frac: f64 = map
                .cell_coverage(cell)
                .iter()
                .filter(|c| c.unit == icache || c.unit == dcache)
                .map(|c| c.cell_fraction)
                .sum();
            if cache_frac > 0.9 {
                assert!(!dep.is_covered(cell), "cache cell {cell} covered");
            }
            if cache_frac < 0.1 {
                assert!(dep.is_covered(cell), "core cell {cell} uncovered");
            }
        }
    }

    #[test]
    fn device_count_scales_with_covered_area() {
        let dep = deployment(GridDims::new(20, 20));
        let fp = alpha21264();
        let cache_area: f64 = ["Icache", "Dcache"]
            .iter()
            .map(|n| fp.unit_by_name(n).unwrap().rect().area().square_meters())
            .sum();
        let covered_area = fp.die_area().square_meters() - cache_area;
        let expected = covered_area / 4e-6; // 4 mm² footprint
        let actual = dep.device_count();
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "expected ≈{expected}, got {actual}"
        );
    }

    #[test]
    fn tile_all_covers_everything() {
        let fp = alpha21264();
        let dep = TecDeployment::tile_all(
            &fp,
            GridDims::new(8, 8),
            TecDeviceParams::superlattice_thin_film(),
        );
        assert_eq!(dep.covered_cells(), 64);
    }

    #[test]
    fn unknown_excluded_names_ignored() {
        let fp = alpha21264();
        let dep = TecDeployment::tile_except(
            &fp,
            GridDims::new(8, 8),
            TecDeviceParams::superlattice_thin_film(),
            &["NoSuchUnit"],
        );
        assert_eq!(dep.covered_cells(), 64);
    }

    #[test]
    fn resolution_independence_of_device_count() {
        let coarse = deployment(GridDims::new(10, 10)).device_count();
        let fine = deployment(GridDims::new(40, 40)).device_count();
        assert!(
            (coarse - fine).abs() / fine < 0.1,
            "coarse {coarse} vs fine {fine}"
        );
    }
}
