//! Series-wired TEC arrays — the `N` of Eqs. (1)–(3).

use crate::{TecDevice, TecDeviceParams};
use oftec_units::{Current, Power, Temperature};

/// `N` identical TEC units wired electrically in series (thermally in
/// parallel), all carrying the same driving current — the deployment the
/// paper uses ("the deployed TECs are connected electrically in series and
/// driven by the same current value", §6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TecArray {
    device: TecDevice,
    count: usize,
}

impl TecArray {
    /// Creates an array of `count` devices.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the parameters are unphysical.
    pub fn new(params: TecDeviceParams, count: usize) -> Self {
        assert!(count > 0, "array needs at least one device");
        Self {
            device: TecDevice::new(params),
            count,
        }
    }

    /// The underlying device.
    #[inline]
    pub fn device(&self) -> &TecDevice {
        &self.device
    }

    /// Number of devices `N`.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total heat absorbed from the cold side (Eq. (1)), with every device
    /// seeing the same temperatures.
    pub fn heat_absorbed(&self, t_hot: Temperature, t_cold: Temperature, i: Current) -> Power {
        self.device.heat_absorbed(t_hot, t_cold, i) * self.count as f64
    }

    /// Total heat released into the hot side (Eq. (2)).
    pub fn heat_released(&self, t_hot: Temperature, t_cold: Temperature, i: Current) -> Power {
        self.device.heat_released(t_hot, t_cold, i) * self.count as f64
    }

    /// Total electrical power (Eq. (3)): `N·(α·ΔT·I + R·I²)`.
    pub fn power(&self, t_hot: Temperature, t_cold: Temperature, i: Current) -> Power {
        self.device.power(t_hot, t_cold, i) * self.count as f64
    }

    /// Supply voltage across the series string:
    /// `V = N·(α·ΔT + R·I)` (Seebeck back-EMF plus resistive drop).
    pub fn supply_voltage(
        &self,
        t_hot: Temperature,
        t_cold: Temperature,
        i: Current,
    ) -> oftec_units::Voltage {
        let p = self.device.params();
        let back_emf = p.seebeck.back_emf(t_hot - t_cold);
        let drop = i * p.electrical_resistance;
        (back_emf + drop) * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(n: usize) -> TecArray {
        TecArray::new(TecDeviceParams::superlattice_thin_film(), n)
    }

    fn k(v: f64) -> Temperature {
        Temperature::from_kelvin(v)
    }

    #[test]
    fn scales_linearly_with_count() {
        let one = array(1);
        let forty = array(40);
        let (th, tc, i) = (k(360.0), k(352.0), Current::from_amperes(2.0));
        assert!(
            (forty.power(th, tc, i).watts() - 40.0 * one.power(th, tc, i).watts()).abs() < 1e-9
        );
        assert!(
            (forty.heat_absorbed(th, tc, i).watts() - 40.0 * one.heat_absorbed(th, tc, i).watts())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn energy_conservation_for_array() {
        let arr = array(39);
        let (th, tc, i) = (k(358.0), k(349.0), Current::from_amperes(2.83));
        let balance = arr.heat_released(th, tc, i) - arr.heat_absorbed(th, tc, i);
        assert!((balance.watts() - arr.power(th, tc, i).watts()).abs() < 1e-9);
    }

    #[test]
    fn power_at_table2_operating_points_is_plausible() {
        // The paper's Fig. 6(f) reports total cooling powers in the
        // single-digit-to-20 W range at the Table 2 currents. A ~40-unit
        // array at I* = 2.83 A must land in that range, not at hundreds of
        // watts.
        let arr = array(39);
        let p = arr.power(k(356.0), k(351.0), Current::from_amperes(2.83));
        assert!(
            (5.0..30.0).contains(&p.watts()),
            "array power {p} out of the paper's range"
        );
    }

    #[test]
    fn supply_voltage() {
        let arr = array(10);
        let v = arr.supply_voltage(k(355.0), k(350.0), Current::from_amperes(2.0));
        // 10 × (10e-3·5 + 0.025·2) = 10 × 0.1.
        assert!((v.volts() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_count_panics() {
        let _ = array(0);
    }
}
