//! Thermoelectric cooler (TEC) device physics and die deployment.
//!
//! Implements Section 2 of the paper: Peltier pumping, internal heat
//! conduction, and Joule heating of thin-film superlattice TECs
//! (Eqs. (1)–(3)), plus the deployment policy of §6.1 — tile the die with
//! TEC units everywhere except the (cold) cache blocks, wire them
//! electrically in series, and drive them with one shared current.
//!
//! # Examples
//!
//! ```
//! use oftec_tec::{TecDevice, TecDeviceParams};
//! use oftec_units::{Current, Temperature};
//!
//! let dev = TecDevice::new(TecDeviceParams::superlattice_thin_film());
//! let tc = Temperature::from_celsius(80.0);
//! let th = Temperature::from_celsius(85.0);
//! let i = Current::from_amperes(2.0);
//! // Energy conservation: q̇_h − q̇_c = P_TEC (Eq. (3)).
//! let balance = dev.heat_released(th, tc, i) - dev.heat_absorbed(th, tc, i);
//! assert!((balance - dev.power(th, tc, i)).watts().abs() < 1e-9);
//! ```

mod array;
mod deployment;
mod device;
mod params;

pub use array::TecArray;
pub use deployment::TecDeployment;
pub use device::TecDevice;
pub use params::TecDeviceParams;
