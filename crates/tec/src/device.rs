//! Single-device thermoelectric equations — Eqs. (1)–(3) of the paper.

use crate::TecDeviceParams;
use oftec_units::{Current, Power, Temperature, TemperatureDelta};

/// One TEC unit evaluating the steady-state thermoelectric equations.
///
/// Sign conventions follow the paper: `heat_absorbed` is `q̇_c`, the heat
/// removed per second from the cold (die) side; `heat_released` is `q̇_h`,
/// the heat dumped into the hot (spreader) side. Both can go negative when
/// back-conduction or Joule heating dominates — precisely the "too much
/// current" regime OFTEC's optimizer must avoid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TecDevice {
    params: TecDeviceParams,
}

impl TecDevice {
    /// Wraps device parameters (validated with
    /// [`TecDeviceParams::assert_physical`]).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are unphysical.
    pub fn new(params: TecDeviceParams) -> Self {
        params.assert_physical();
        Self { params }
    }

    /// The device parameters.
    #[inline]
    pub fn params(&self) -> &TecDeviceParams {
        &self.params
    }

    /// Half of the Thomson heat `τ·I·ΔT` (zero unless the parameters set
    /// a Thomson coefficient — the paper's equations omit it).
    fn thomson_half(&self, dt_kelvin: f64, i: Current) -> Power {
        Power::from_watts(0.5 * self.params.thomson.volts_per_kelvin() * i.amperes() * dt_kelvin)
    }

    /// Heat absorbed per second from the cold side (Eq. (1) with N = 1):
    /// `q̇_c = α·T_c·I − K·ΔT − ½·R·I² (+ ½·τ·I·ΔT)`.
    ///
    /// The parenthesized Thomson term is zero with the default parameters,
    /// matching the paper's Eq. (1) exactly.
    pub fn heat_absorbed(&self, t_hot: Temperature, t_cold: Temperature, i: Current) -> Power {
        let dt = t_hot - t_cold;
        let peltier = self.params.seebeck.peltier_power(t_cold, i);
        let conduction = self.params.thermal_conductance.heat_flow(dt);
        let joule = i.joule_power(self.params.electrical_resistance);
        peltier - conduction - joule * 0.5 + self.thomson_half(dt.kelvin(), i)
    }

    /// Heat released per second into the hot side (Eq. (2) with N = 1):
    /// `q̇_h = α·T_h·I − K·ΔT + ½·R·I² (− ½·τ·I·ΔT)`.
    pub fn heat_released(&self, t_hot: Temperature, t_cold: Temperature, i: Current) -> Power {
        let dt = t_hot - t_cold;
        let peltier = self.params.seebeck.peltier_power(t_hot, i);
        let conduction = self.params.thermal_conductance.heat_flow(dt);
        let joule = i.joule_power(self.params.electrical_resistance);
        peltier - conduction + joule * 0.5 - self.thomson_half(dt.kelvin(), i)
    }

    /// Electrical power drawn (Eq. (3) with N = 1):
    /// `P = α·ΔT·I + R·I² (− τ·I·ΔT)` — always `q̇_h − q̇_c`.
    pub fn power(&self, t_hot: Temperature, t_cold: Temperature, i: Current) -> Power {
        let dt = t_hot - t_cold;
        Power::from_watts(
            (self.params.seebeck.volts_per_kelvin() - self.params.thomson.volts_per_kelvin())
                * dt.kelvin()
                * i.amperes(),
        ) + i.joule_power(self.params.electrical_resistance)
    }

    /// Coefficient of performance `q̇_c / P`.
    ///
    /// Returns `None` when the electrical power is zero or negative
    /// (at `I = 0`, or when the device acts as a generator under a
    /// negative ΔT), where COP is undefined/meaningless for cooling.
    pub fn cop(&self, t_hot: Temperature, t_cold: Temperature, i: Current) -> Option<f64> {
        let p = self.power(t_hot, t_cold, i).watts();
        if p <= 0.0 {
            None
        } else {
            Some(self.heat_absorbed(t_hot, t_cold, i).watts() / p)
        }
    }

    /// The current maximizing `q̇_c` at cold-side temperature `t_cold`:
    /// `I_opt = α·T_c / R` (where `dq̇_c/dI = 0`).
    pub fn optimal_current(&self, t_cold: Temperature) -> Current {
        Current::from_amperes(
            self.params.seebeck.volts_per_kelvin() * t_cold.kelvin()
                / self.params.electrical_resistance.ohms(),
        )
    }

    /// Maximum pumpable heat at ΔT = 0: `q̇_c,max = α²·T_c² / (2R)`.
    pub fn max_heat_pumped(&self, t_cold: Temperature) -> Power {
        let at = self.params.seebeck.volts_per_kelvin() * t_cold.kelvin();
        Power::from_watts(at * at / (2.0 * self.params.electrical_resistance.ohms()))
    }

    /// Maximum sustainable temperature difference at `q̇_c = 0` and
    /// optimal current: `ΔT_max = Z·T_c² / 2`.
    pub fn max_delta_t(&self, t_cold: Temperature) -> TemperatureDelta {
        let z = self.params.figure_of_merit();
        TemperatureDelta::from_kelvin(0.5 * z * t_cold.kelvin() * t_cold.kelvin())
    }

    /// The current maximizing the coefficient of performance at the given
    /// junction temperatures (the classic result behind the COP-optimal
    /// control of the paper's reference \[8\]):
    /// `I_COP = α·ΔT / (R·(√(1 + Z·T̄) − 1))` with `T̄ = (T_h + T_c)/2`.
    ///
    /// Returns `None` when `ΔT ≤ 0` (no pumping needed; COP is unbounded
    /// as `I → 0`).
    pub fn cop_optimal_current(&self, t_hot: Temperature, t_cold: Temperature) -> Option<Current> {
        let dt = (t_hot - t_cold).kelvin();
        if dt <= 0.0 {
            return None;
        }
        let t_mean = 0.5 * (t_hot.kelvin() + t_cold.kelvin());
        let z = self.params.figure_of_merit();
        let denom = (1.0 + z * t_mean).sqrt() - 1.0;
        Some(Current::from_amperes(
            self.params.seebeck.volts_per_kelvin() * dt
                / (self.params.electrical_resistance.ohms() * denom),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> TecDevice {
        TecDevice::new(TecDeviceParams::superlattice_thin_film())
    }

    fn k(v: f64) -> Temperature {
        Temperature::from_kelvin(v)
    }

    fn a(v: f64) -> Current {
        Current::from_amperes(v)
    }

    #[test]
    fn energy_conservation() {
        let d = device();
        for (th, tc, i) in [
            (360.0, 350.0, 1.0),
            (350.0, 355.0, 2.5),
            (330.0, 330.0, 5.0),
            (380.0, 340.0, 0.0),
        ] {
            let qh = d.heat_released(k(th), k(tc), a(i));
            let qc = d.heat_absorbed(k(th), k(tc), a(i));
            let p = d.power(k(th), k(tc), a(i));
            assert!(
                ((qh - qc).watts() - p.watts()).abs() < 1e-12,
                "balance violated at ({th}, {tc}, {i})"
            );
        }
    }

    #[test]
    fn zero_current_is_pure_conduction() {
        let d = device();
        let qc = d.heat_absorbed(k(360.0), k(350.0), a(0.0));
        // No Peltier, no Joule: q̇_c = −K·ΔT = −1.0 W/K × 10 K.
        assert!((qc.watts() + 1.0 * 10.0).abs() < 1e-12);
        assert_eq!(d.power(k(360.0), k(350.0), a(0.0)), Power::ZERO);
    }

    #[test]
    fn cooling_rises_then_falls_with_current() {
        let d = device();
        let tc = k(353.0);
        let th = k(358.0);
        let i_opt = d.optimal_current(tc);
        let q_opt = d.heat_absorbed(th, tc, i_opt);
        // Below and above the optimum, cooling is strictly lower.
        for frac in [0.25, 0.5, 1.5, 2.0] {
            let q = d.heat_absorbed(th, tc, i_opt * frac);
            assert!(q < q_opt, "q({frac}·I_opt) not below optimum");
        }
    }

    #[test]
    fn optimal_current_formula() {
        let d = device();
        let tc = k(350.0);
        let i = d.optimal_current(tc);
        assert!((i.amperes() - 10e-3 * 350.0 / 0.025).abs() < 1e-9);
        // q̇_c at I_opt with ΔT = 0 equals the closed form.
        let q = d.heat_absorbed(tc, tc, i);
        assert!((q.watts() - d.max_heat_pumped(tc).watts()).abs() < 1e-9);
    }

    #[test]
    fn max_delta_t_stops_cooling() {
        let d = device();
        let tc = k(340.0);
        let dt_max = d.max_delta_t(tc);
        let th = tc + dt_max;
        let q = d.heat_absorbed(th, tc, d.optimal_current(tc));
        assert!(q.watts().abs() < 1e-6, "q̇_c at ΔT_max is {q}");
    }

    #[test]
    fn cop_decreases_with_delta_t() {
        let d = device();
        let tc = k(350.0);
        let i = a(2.0);
        let cop_small = d
            .cop(tc + TemperatureDelta::from_kelvin(2.0), tc, i)
            .unwrap();
        let cop_large = d
            .cop(tc + TemperatureDelta::from_kelvin(15.0), tc, i)
            .unwrap();
        assert!(cop_small > cop_large);
    }

    #[test]
    fn cop_none_when_not_consuming() {
        let d = device();
        assert!(d.cop(k(350.0), k(350.0), a(0.0)).is_none());
        // Negative ΔT large enough to make P ≤ 0 (generator regime).
        let p = d.power(k(300.0), k(400.0), a(0.1));
        assert!(p.watts() < 0.0);
        assert!(d.cop(k(300.0), k(400.0), a(0.1)).is_none());
    }

    #[test]
    fn cop_optimal_current_is_a_local_maximum() {
        let d = device();
        let (th, tc) = (k(356.0), k(348.0));
        let i_cop = d.cop_optimal_current(th, tc).unwrap();
        let cop = |amps: f64| d.cop(th, tc, a(amps)).unwrap();
        let best = cop(i_cop.amperes());
        for delta in [-0.05, 0.05] {
            let nearby = cop(i_cop.amperes() * (1.0 + delta));
            assert!(
                nearby <= best + 1e-9,
                "COP({delta:+}) = {nearby} exceeds optimum {best}"
            );
        }
        // COP-optimal current is well below the max-cooling current.
        assert!(i_cop < d.optimal_current(tc));
        // Degenerate ΔT ≤ 0: no finite optimum.
        assert!(d.cop_optimal_current(tc, th).is_none());
    }

    #[test]
    fn thomson_effect_is_negligible() {
        // The paper drops the Thomson term from Eqs. (1)–(2) "because of
        // its negligible effect". With a representative τ = 0.1·α, the
        // cold-side pumping at a realistic operating point changes by
        // well under 1%.
        let plain = TecDevice::new(TecDeviceParams::superlattice_thin_film());
        let thomson = TecDevice::new(TecDeviceParams::superlattice_with_thomson());
        let (th, tc, i) = (k(360.0), k(352.0), a(2.0));
        let q0 = plain.heat_absorbed(th, tc, i).watts();
        let q1 = thomson.heat_absorbed(th, tc, i).watts();
        let rel = (q1 - q0).abs() / q0.abs();
        assert!(rel < 0.01, "Thomson changed q̇_c by {:.3}%", 100.0 * rel);
        // Energy conservation still holds with the Thomson term.
        let balance = thomson.heat_released(th, tc, i) - thomson.heat_absorbed(th, tc, i);
        assert!((balance.watts() - thomson.power(th, tc, i).watts()).abs() < 1e-12);
        // And the Thomson correction has the expected sign: it *helps*
        // cooling on the cold side when ΔT > 0.
        assert!(q1 > q0);
    }

    #[test]
    fn joule_heating_splits_evenly() {
        let d = device();
        let tc = k(350.0);
        // At ΔT = 0 and equal temps: q̇_h − α·T·I = +½RI², α·T·I − q̇_c = ½RI².
        let i = a(3.0);
        let peltier = 10e-3 * 350.0 * 3.0;
        let qh = d.heat_released(tc, tc, i).watts();
        let qc = d.heat_absorbed(tc, tc, i).watts();
        let joule = 0.025 * 9.0;
        assert!((qh - peltier - 0.5 * joule).abs() < 1e-12);
        assert!((peltier - qc - 0.5 * joule).abs() < 1e-12);
    }
}
